#!/usr/bin/env python
"""Approximate line coverage of ``src/repro`` without third-party tooling.

The CI ``coverage`` job runs the tier-1 suite under ``pytest-cov`` and
enforces ``--cov-fail-under`` (see ``.github/workflows/ci.yml``).  Offline
checkouts of this repository often cannot ``pip install pytest-cov``, so
this tool provides a dependency-free approximation to sanity-check the
floor locally: it runs pytest in-process under a ``sys.settrace`` hook that
records executed lines of ``src/repro`` and compares them against the line
table of every code object compiled from the sources.

The tracer disables itself per frame once a code object is fully covered,
which keeps the slowdown low enough to run the whole suite.  Numbers differ
from coverage.py by a point or two (docstrings, conditional arcs), which is
why the CI floor is set a safety margin below the measurement.

Usage::

    python tools/measure_coverage.py                    # full tier-1 suite
    python tools/measure_coverage.py tests -x -q        # any pytest args
    python tools/measure_coverage.py --fail-under 85    # enforce a floor
"""

from __future__ import annotations

import os
import sys
import threading
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src"
PACKAGE_ROOT = SRC_ROOT / "repro"
SRC_PREFIX = str(PACKAGE_ROOT) + os.sep

sys.path.insert(0, str(SRC_ROOT))

_executed: dict = {}   # filename -> set of executed line numbers
_remaining: dict = {}  # code object -> lines not yet seen
_done: set = set()     # code objects with every line seen


def _code_lines(code) -> set:
    lines = set()
    for _, _, lineno in code.co_lines():
        if lineno is not None:
            lines.add(lineno)
    return lines


def _local_trace(frame, event, arg):
    if event == "line":
        code = frame.f_code
        remaining = _remaining.get(code)
        if remaining is None:
            remaining = _remaining[code] = _code_lines(code)
            _executed.setdefault(code.co_filename, set())
        lineno = frame.f_lineno
        _executed[code.co_filename].add(lineno)
        remaining.discard(lineno)
        if not remaining:
            _done.add(code)
            return None
    return _local_trace


def _global_trace(frame, event, arg):
    code = frame.f_code
    if code in _done or not code.co_filename.startswith(SRC_PREFIX):
        return None
    return _local_trace


def _all_lines_of_file(path: Path) -> set:
    """Every line of ``path`` that carries bytecode, via recursive compile."""
    try:
        tree = compile(path.read_text(encoding="utf-8"), str(path), "exec")
    except SyntaxError:
        return set()
    lines: set = set()
    stack = [tree]
    while stack:
        code = stack.pop()
        lines |= _code_lines(code)
        for const in code.co_consts:
            if hasattr(const, "co_lines"):
                stack.append(const)
    return lines


def main(argv) -> int:
    import pytest

    pytest_args = list(argv)
    fail_under = None
    if "--fail-under" in pytest_args:
        at = pytest_args.index("--fail-under")
        try:
            fail_under = float(pytest_args[at + 1])
        except (IndexError, ValueError):
            print("--fail-under requires a numeric percentage", file=sys.stderr)
            return 2
        del pytest_args[at : at + 2]
    pytest_args = pytest_args or ["-x", "-q"]

    threading.settrace(_global_trace)
    sys.settrace(_global_trace)
    try:
        exit_code = pytest.main(pytest_args)
    finally:
        sys.settrace(None)
        threading.settrace(None)

    total_lines = 0
    total_hit = 0
    rows = []
    for path in sorted(PACKAGE_ROOT.rglob("*.py")):
        lines = _all_lines_of_file(path)
        if not lines:
            continue
        hit = len(lines & _executed.get(str(path), set()))
        rows.append((str(path.relative_to(SRC_ROOT)), hit, len(lines)))
        total_lines += len(lines)
        total_hit += hit

    print("\napproximate line coverage of src/repro (settrace-based):")
    for name, hit, count in rows:
        print(f"  {name:52s} {hit:5d}/{count:<5d} {100.0 * hit / count:6.1f}%")
    overall = 100.0 * total_hit / total_lines if total_lines else 0.0
    print(f"TOTAL {total_hit}/{total_lines} = {overall:.1f}%")
    print("(pytest-cov in CI measures statements; expect a small delta)")
    if int(exit_code) == 0 and fail_under is not None and overall < fail_under:
        print(
            f"FAIL: coverage {overall:.1f}% is below the floor {fail_under:g}%",
            file=sys.stderr,
        )
        return 2
    return int(exit_code)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
