#!/usr/bin/env python
"""Validate benchmark reports (``BENCH_*.json``) and gate perf regressions.

Two modes, composable:

**Schema validation** (always on): a malformed report — wrong schema
version, missing keys, bad types, or any result row with
``"agreement": false`` — fails the check, so the uploaded perf artifact is
always machine-readable and trustworthy.

**Baseline comparison** (``--compare``): every validated report is matched
against a committed baseline (a file, or a directory holding
``BENCH_<suite>.json`` files such as ``benchmarks/baselines/``) and the
check fails when a metric regresses beyond ``--tolerance``:

* ``agreement`` is compared at zero tolerance — a row whose baseline
  agreed may never disagree;
* ``speedup_vs_serial`` may not drop below ``baseline * (1 - tolerance)``
  — speedup ratios are machine-portable where raw wall-clock seconds are
  not, so seconds are recorded but never gated;
* result rows present in the baseline must still exist (keyed by
  ``(name, backend, workers)``); new rows in the current report are fine.

Suites may be gated tighter than the default with
``--suite-tolerance SUITE=TOL`` (repeatable) — the batched runtime suite
reports steady-state warm-pool numbers that are far less noisy than the
original cold-pool timings, so CI holds it to a tighter band.  Rows whose
``phase`` is ``"warmup"`` (cold pool / cold cache) always use the looser
default ``--tolerance``: first-touch costs are the one thing that *is*
machine-noise-bound.

Usage::

    python tools/check_bench.py BENCH_runtime.json [more.json ...]
    python tools/check_bench.py                # every BENCH_*.json in cwd
    python tools/check_bench.py BENCH_runtime.json BENCH_queries.json \
        --compare benchmarks/baselines --tolerance 0.5 \
        --suite-tolerance runtime=0.3

Exit status is 0 when every file validates (and, with ``--compare``, shows
no regression), 1 otherwise.  Wall-clock *floors* are deliberately not
enforced here; those assertions live in ``benchmarks/test_perf_*.py``
behind the ``REPRO_PERF_FLOOR`` relaxation.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench import (  # noqa: E402  (path bootstrap above)
    BENCH_SCHEMA,
    REQUIRED_RESULT_KEYS,
    REQUIRED_TOP_KEYS,
)
from repro.runtime import BACKEND_NAMES  # noqa: E402

_TOP_TYPES = {
    "schema": str,
    "suite": str,
    "created_at": str,
    "python": str,
    "platform": str,
    "cpu_count": int,
    "scale": str,
    "workers": int,
    "workload": dict,
    "results": list,
}

#: Suites whose workload must include a process-backend run.  The query
#: suite is single-process by design (the index wins algorithmically, not
#: by sharding), so it only needs the serial rows.  The service suite
#: measures the HTTP front door, whose backend is server configuration.
_PROCESS_BACKED_SUITES = {"runtime", "scenarios"}

#: Suites produced by the batched ``annotate_many`` pipeline.  Their rows
#: must carry a ``phase`` marker, their process rows must record the
#: post-coalescing ``bucket_sizes`` layout, and their workload must state
#: how many distinct sequences survived duplicate coalescing.
_BATCHED_SUITES = {"runtime", "scenarios"}

#: Valid values of a result row's ``phase`` marker.
_PHASES = {"warmup", "steady"}

#: Columns every service-suite loadtest entry must carry (the run_table.csv
#: shape of ``repro.net.loadgen``).
_LOADTEST_KEYS = (
    "requests",
    "failures",
    "throughput_rps",
    "p50_latency_ms",
    "p95_latency_ms",
    "p99_latency_ms",
    "failure_rate",
)


def _validate_service_section(report: dict, origin: str) -> list:
    """Service-suite extras: per-scenario details + a failure-free loadtest."""
    problems = []
    details = report.get("service")
    if not isinstance(details, list) or not details:
        return [f"{origin}: service suite requires a non-empty 'service' section"]
    for index, detail in enumerate(details):
        where = f"{origin}: service[{index}]"
        if not isinstance(detail, dict):
            problems.append(f"{where} must be an object")
            continue
        for key in ("name", "fingerprint", "loadtest"):
            if key not in detail:
                problems.append(f"{where} missing key {key!r}")
        loadtest = detail.get("loadtest")
        if not isinstance(loadtest, dict):
            problems.append(f"{where}: loadtest must be an object")
            continue
        for key in _LOADTEST_KEYS:
            if key not in loadtest:
                problems.append(f"{where}: loadtest missing column {key!r}")
        # The open-loop run is gated at zero tolerance: a served request
        # failing under nominal load is a correctness bug, not noise.
        if loadtest.get("failures", 0) != 0 or loadtest.get("failure_rate", 0) != 0:
            problems.append(
                f"{where}: loadtest recorded failed requests "
                f"(failures={loadtest.get('failures')!r}, "
                f"failure_rate={loadtest.get('failure_rate')!r}) — "
                "the open-loop run must be failure-free"
            )
    return problems


def _validate_precision_section(report: dict, origin: str) -> list:
    """Queries-suite extra (optional): annotation-vs-truth answer quality.

    Each cell holds parallel per-query-shape observation lists; scores are
    ratios, so anything outside [0, 1] means the producer is broken.
    """
    problems = []
    section = report.get("precision")
    if section is None:
        return problems
    if not isinstance(section, list) or not section:
        return [f"{origin}: precision section must be a non-empty list"]
    for index, cell in enumerate(section):
        where = f"{origin}: precision[{index}]"
        if not isinstance(cell, dict):
            problems.append(f"{where} must be an object")
            continue
        for key in ("scenario", "query", "k", "precision", "recall"):
            if key not in cell:
                problems.append(f"{where} missing key {key!r}")
        if cell.get("query") not in ("tkprq", "tkfrpq"):
            problems.append(
                f"{where}: query must be 'tkprq' or 'tkfrpq', "
                f"got {cell.get('query')!r}"
            )
        k = cell.get("k")
        if not isinstance(k, int) or isinstance(k, bool) or k < 1:
            problems.append(f"{where}: k must be a positive int")
        lengths = set()
        for measure in ("precision", "recall"):
            observations = cell.get(measure)
            if not isinstance(observations, list) or not observations:
                problems.append(
                    f"{where}: {measure} must be a non-empty list of scores"
                )
                continue
            lengths.add(len(observations))
            if not all(
                isinstance(score, (int, float))
                and not isinstance(score, bool)
                and 0.0 <= score <= 1.0
                for score in observations
            ):
                problems.append(
                    f"{where}: every {measure} observation must be a "
                    "number in [0, 1]"
                )
        if len(lengths) > 1:
            problems.append(
                f"{where}: precision and recall must have one observation "
                "per query shape (parallel lists of equal length)"
            )
    return problems


def _validate_store_section(report: dict, origin: str) -> list:
    """Store-suite extras: shard layout + the durability invariants.

    Recovery must be *exact* (the reopened store equals the pre-close one,
    entry for entry) and a flushed store must have zero pending WAL
    records — both are correctness properties of the WAL, not
    performance numbers, so they gate at zero tolerance.
    """
    problems = []
    section = report.get("store")
    if not isinstance(section, dict):
        return [f"{origin}: store suite requires a 'store' section object"]
    for key in ("shards", "shard_counts", "recovery", "pending_after_flush"):
        if key not in section:
            problems.append(f"{origin}: store section missing key {key!r}")
    shards = section.get("shards")
    if not isinstance(shards, int) or isinstance(shards, bool) or shards < 1:
        problems.append(f"{origin}: store.shards must be a positive int")
    counts = section.get("shard_counts")
    if (
        not isinstance(counts, list)
        or not counts
        or not all(
            isinstance(count, int) and not isinstance(count, bool) and count >= 1
            for count in counts
        )
    ):
        problems.append(
            f"{origin}: store.shard_counts must be a non-empty list of "
            f"positive ints, got {counts!r}"
        )
    if section.get("scatter_agreement") is not True:
        problems.append(
            f"{origin}: store.scatter_agreement must be true — a sharded "
            "top-k differing from the single-store answer is a merge bug"
        )
    recovery = section.get("recovery")
    if not isinstance(recovery, dict):
        problems.append(f"{origin}: store.recovery must be an object")
    else:
        if recovery.get("exact") is not True:
            problems.append(
                f"{origin}: store.recovery.exact must be true — WAL+snapshot "
                "recovery must reproduce the pre-close store exactly"
            )
        replayed = recovery.get("replayed_records")
        if not isinstance(replayed, int) or isinstance(replayed, bool) or replayed < 0:
            problems.append(
                f"{origin}: store.recovery.replayed_records must be a "
                "non-negative int"
            )
    if section.get("pending_after_flush") != 0:
        problems.append(
            f"{origin}: store.pending_after_flush must be 0 — flush() is a "
            "durability barrier and may not leave queued WAL records"
        )
    return problems


def validate_report(report: object, origin: str) -> list:
    """Return a list of problem strings for one parsed report (empty = valid)."""
    problems = []
    if not isinstance(report, dict):
        return [f"{origin}: top level must be a JSON object"]
    for key in REQUIRED_TOP_KEYS:
        if key not in report:
            problems.append(f"{origin}: missing top-level key {key!r}")
        elif not isinstance(report[key], _TOP_TYPES[key]):
            problems.append(
                f"{origin}: key {key!r} must be {_TOP_TYPES[key].__name__}, "
                f"got {type(report[key]).__name__}"
            )
    if problems:
        return problems

    if report["schema"] != BENCH_SCHEMA:
        problems.append(
            f"{origin}: unknown schema {report['schema']!r} "
            f"(this validator understands {BENCH_SCHEMA!r})"
        )
    suite = report["suite"]
    batched_suite = suite in _BATCHED_SUITES
    workload = report["workload"]
    for key in ("sequences", "records"):
        value = workload.get(key)
        if not isinstance(value, int) or value < 1:
            problems.append(f"{origin}: workload.{key} must be a positive int")
    if batched_suite or "unique_sequences" in workload:
        unique = workload.get("unique_sequences")
        if not isinstance(unique, int) or unique < 1:
            problems.append(
                f"{origin}: workload.unique_sequences must be a positive int"
            )
        elif isinstance(workload.get("sequences"), int) \
                and unique > workload["sequences"]:
            problems.append(
                f"{origin}: workload.unique_sequences ({unique}) exceeds "
                f"workload.sequences ({workload['sequences']})"
            )
    if report["workers"] < 1:
        problems.append(f"{origin}: workers must be at least 1")
    if not report["results"]:
        problems.append(f"{origin}: results must not be empty")

    backends_seen = set()
    process_phases = set()
    for index, entry in enumerate(report["results"]):
        where = f"{origin}: results[{index}]"
        if not isinstance(entry, dict):
            problems.append(f"{where} must be an object")
            continue
        for key in REQUIRED_RESULT_KEYS:
            if key not in entry:
                problems.append(f"{where} missing key {key!r}")
        if not isinstance(entry.get("name"), str) or not entry.get("name"):
            problems.append(f"{where}: name must be a non-empty string")
        if entry.get("backend") not in BACKEND_NAMES:
            problems.append(
                f"{where}: backend must be one of {BACKEND_NAMES}, "
                f"got {entry.get('backend')!r}"
            )
        if not isinstance(entry.get("workers"), int) or entry.get("workers", 0) < 1:
            problems.append(f"{where}: workers must be a positive int")
        for key in ("seconds", "speedup_vs_serial"):
            value = entry.get(key)
            if not isinstance(value, (int, float)) or isinstance(value, bool) \
                    or value <= 0:
                problems.append(f"{where}: {key} must be a positive number")
        if entry.get("agreement") is not True:
            problems.append(
                f"{where}: agreement must be true — an accelerated path "
                "disagreeing with the reference answers is a correctness bug"
            )
        if batched_suite and "phase" not in entry:
            problems.append(f"{where} missing key 'phase'")
        if "phase" in entry and entry["phase"] not in _PHASES:
            problems.append(
                f"{where}: phase must be one of {sorted(_PHASES)}, "
                f"got {entry['phase']!r}"
            )
        needs_buckets = batched_suite and entry.get("backend") == "process"
        if needs_buckets and "bucket_sizes" not in entry:
            problems.append(
                f"{where}: process rows of the {suite} suite must record "
                "their post-coalescing bucket_sizes layout"
            )
        if "bucket_sizes" in entry:
            buckets = entry["bucket_sizes"]
            if (
                not isinstance(buckets, list)
                or not buckets
                or not all(
                    isinstance(size, int) and not isinstance(size, bool) and size >= 1
                    for size in buckets
                )
            ):
                problems.append(
                    f"{where}: bucket_sizes must be a non-empty list of "
                    f"positive ints, got {buckets!r}"
                )
        if entry.get("backend") == "process":
            process_phases.add(entry.get("phase"))
        backends_seen.add(entry.get("backend"))

    if "serial" not in backends_seen:
        problems.append(f"{origin}: no serial baseline entry in results")
    if suite in _PROCESS_BACKED_SUITES and "process" not in backends_seen:
        problems.append(f"{origin}: no process-backend entry in results")
    if suite == "runtime" and "process" in backends_seen \
            and not _PHASES <= process_phases:
        problems.append(
            f"{origin}: the runtime suite must record both a 'warmup' "
            "(cold pool) and a 'steady' (warm pool) process row, "
            f"found phases {sorted(p for p in process_phases if p)}"
        )
    if suite == "queries":
        problems.extend(_validate_precision_section(report, origin))
    if suite == "service":
        problems.extend(_validate_service_section(report, origin))
    if suite == "store":
        problems.extend(_validate_store_section(report, origin))
    return problems


# ------------------------------------------------------------- comparison
def _result_key(entry: dict) -> Tuple[str, str, int]:
    return (entry.get("name"), entry.get("backend"), entry.get("workers"))


def compare_reports(
    current: dict,
    baseline: dict,
    tolerance: float,
    origin: str,
    *,
    warmup_tolerance: Optional[float] = None,
) -> list:
    """Return regression problems of ``current`` against ``baseline``.

    ``tolerance`` gates steady-state rows; rows marked ``phase: "warmup"``
    use ``warmup_tolerance`` (never tighter than ``tolerance``) because
    cold-start costs are dominated by machine noise.
    """
    problems = []
    if current.get("suite") != baseline.get("suite"):
        return [
            f"{origin}: suite {current.get('suite')!r} does not match "
            f"baseline suite {baseline.get('suite')!r}"
        ]
    if warmup_tolerance is None:
        warmup_tolerance = tolerance
    warmup_tolerance = max(tolerance, warmup_tolerance)
    current_rows: Dict[Tuple, dict] = {
        _result_key(entry): entry for entry in current.get("results", [])
    }
    for entry in baseline.get("results", []):
        key = _result_key(entry)
        where = f"{origin}: {key[0]} [{key[1]} x{key[2]}]"
        row = current_rows.get(key)
        if row is None:
            problems.append(f"{where} present in baseline but missing here")
            continue
        # Agreement regresses at zero tolerance.
        if entry.get("agreement") is True and row.get("agreement") is not True:
            problems.append(f"{where}: agreement regressed (true -> false)")
        base_speedup = entry.get("speedup_vs_serial")
        speedup = row.get("speedup_vs_serial")
        if isinstance(base_speedup, (int, float)) and isinstance(
            speedup, (int, float)
        ):
            row_tolerance = (
                warmup_tolerance
                if (row.get("phase") == "warmup" or entry.get("phase") == "warmup")
                else tolerance
            )
            floor = base_speedup * (1.0 - row_tolerance)
            if speedup < floor:
                problems.append(
                    f"{where}: speedup_vs_serial {speedup:.2f}x regressed "
                    f"below {floor:.2f}x (baseline {base_speedup:.2f}x, "
                    f"tolerance {row_tolerance:.0%})"
                )
    return problems


def resolve_baseline(compare: Path, report: dict, origin: str) -> Tuple[Optional[dict], list]:
    """Find the baseline report for ``report`` under ``--compare``."""
    path = compare
    if compare.is_dir():
        path = compare / f"BENCH_{report.get('suite')}.json"
    if not path.exists():
        return None, [f"{origin}: no baseline found at {path}"]
    try:
        return json.loads(path.read_text(encoding="utf-8")), []
    except (OSError, json.JSONDecodeError) as error:
        return None, [f"{origin}: unreadable baseline {path} ({error})"]


def check_file(path: Path) -> Tuple[Optional[dict], list]:
    """Parse and validate one report file; return ``(report, problems)``."""
    try:
        report = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        return None, [f"{path}: unreadable or invalid JSON ({error})"]
    return report, validate_report(report, str(path))


def main(argv: list) -> int:
    parser = argparse.ArgumentParser(
        prog="python tools/check_bench.py",
        description="Validate BENCH_*.json reports; optionally gate "
        "regressions against committed baselines.",
    )
    parser.add_argument(
        "files",
        nargs="*",
        type=Path,
        help="report files (default: every BENCH_*.json in cwd)",
    )
    parser.add_argument(
        "--compare",
        type=Path,
        default=None,
        metavar="BASELINE",
        help="baseline file, or directory of BENCH_<suite>.json baselines",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional speedup regression vs the baseline "
        "(default: 0.25; agreement is always compared at zero tolerance)",
    )
    parser.add_argument(
        "--suite-tolerance",
        action="append",
        default=None,
        metavar="SUITE=TOL",
        help="override the tolerance for one suite (repeatable, e.g. "
        "runtime=0.3); warmup-phase rows always use the looser --tolerance",
    )
    args = parser.parse_args(argv)
    if not 0.0 <= args.tolerance < 1.0:
        parser.error(f"--tolerance must be in [0, 1), got {args.tolerance}")
    suite_tolerances: Dict[str, float] = {}
    for spec in args.suite_tolerance or ():
        suite, _, raw = spec.partition("=")
        try:
            value = float(raw)
        except ValueError:
            value = -1.0
        if not suite or not 0.0 <= value < 1.0:
            parser.error(
                f"--suite-tolerance must look like SUITE=TOL with TOL in "
                f"[0, 1), got {spec!r}"
            )
        suite_tolerances[suite] = value

    paths: List[Path] = list(args.files)
    if not paths:
        paths = sorted(Path.cwd().glob("BENCH_*.json"))
    if not paths:
        print("FAIL no BENCH_*.json files found (and none given)", file=sys.stderr)
        return 1
    failures = 0
    for path in paths:
        if not path.exists():
            print(f"FAIL missing report file: {path}", file=sys.stderr)
            failures += 1
            continue
        report, problems = check_file(path)
        if not problems and args.compare is not None:
            baseline, baseline_problems = resolve_baseline(
                args.compare, report, str(path)
            )
            problems.extend(baseline_problems)
            if baseline is not None:
                problems.extend(
                    compare_reports(
                        report,
                        baseline,
                        suite_tolerances.get(report.get("suite"), args.tolerance),
                        str(path),
                        warmup_tolerance=args.tolerance,
                    )
                )
        if problems:
            failures += 1
            for problem in problems:
                print(f"FAIL {problem}", file=sys.stderr)
        else:
            gate = " vs baseline ok" if args.compare is not None else ""
            print(
                f"ok   {path} ({report['suite']}, scale={report['scale']}, "
                f"{len(report['results'])} result rows{gate})"
            )
    if failures:
        print(f"bench-check: {failures} invalid file(s)", file=sys.stderr)
        return 1
    print(f"bench-check: {len(paths)} file(s) schema-valid"
          + (" and within tolerance" if args.compare is not None else ""))
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
