#!/usr/bin/env python
"""Validate benchmark reports (``BENCH_*.json``) against the bench schema.

The CI ``bench`` job runs ``python -m repro.bench --tiny`` and then this
validator; a malformed report — wrong schema version, missing keys, bad
types, or any backend disagreeing with the serial labels — fails the job,
so the uploaded perf artifact is always machine-readable and trustworthy.

Usage::

    python tools/check_bench.py BENCH_runtime.json [more.json ...]
    python tools/check_bench.py            # validates every BENCH_*.json in cwd

Exit status is 0 when every file validates, 1 otherwise.  Wall-clock
*floors* are deliberately not enforced here (shared runners are noisy and
single-core machines cannot show a process speedup); those assertions live
in ``benchmarks/test_perf_runtime.py`` behind a core-count gate.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench import (  # noqa: E402  (path bootstrap above)
    BENCH_SCHEMA,
    REQUIRED_RESULT_KEYS,
    REQUIRED_TOP_KEYS,
)
from repro.runtime import BACKEND_NAMES  # noqa: E402

_TOP_TYPES = {
    "schema": str,
    "suite": str,
    "created_at": str,
    "python": str,
    "platform": str,
    "cpu_count": int,
    "scale": str,
    "workers": int,
    "workload": dict,
    "results": list,
}


def validate_report(report: object, origin: str) -> list:
    """Return a list of problem strings for one parsed report (empty = valid)."""
    problems = []
    if not isinstance(report, dict):
        return [f"{origin}: top level must be a JSON object"]
    for key in REQUIRED_TOP_KEYS:
        if key not in report:
            problems.append(f"{origin}: missing top-level key {key!r}")
        elif not isinstance(report[key], _TOP_TYPES[key]):
            problems.append(
                f"{origin}: key {key!r} must be {_TOP_TYPES[key].__name__}, "
                f"got {type(report[key]).__name__}"
            )
    if problems:
        return problems

    if report["schema"] != BENCH_SCHEMA:
        problems.append(
            f"{origin}: unknown schema {report['schema']!r} "
            f"(this validator understands {BENCH_SCHEMA!r})"
        )
    workload = report["workload"]
    for key in ("sequences", "records"):
        value = workload.get(key)
        if not isinstance(value, int) or value < 1:
            problems.append(f"{origin}: workload.{key} must be a positive int")
    if report["workers"] < 1:
        problems.append(f"{origin}: workers must be at least 1")
    if not report["results"]:
        problems.append(f"{origin}: results must not be empty")

    backends_seen = set()
    for index, entry in enumerate(report["results"]):
        where = f"{origin}: results[{index}]"
        if not isinstance(entry, dict):
            problems.append(f"{where} must be an object")
            continue
        for key in REQUIRED_RESULT_KEYS:
            if key not in entry:
                problems.append(f"{where} missing key {key!r}")
        if not isinstance(entry.get("name"), str) or not entry.get("name"):
            problems.append(f"{where}: name must be a non-empty string")
        if entry.get("backend") not in BACKEND_NAMES:
            problems.append(
                f"{where}: backend must be one of {BACKEND_NAMES}, "
                f"got {entry.get('backend')!r}"
            )
        if not isinstance(entry.get("workers"), int) or entry.get("workers", 0) < 1:
            problems.append(f"{where}: workers must be a positive int")
        for key in ("seconds", "speedup_vs_serial"):
            value = entry.get(key)
            if not isinstance(value, (int, float)) or isinstance(value, bool) \
                    or value <= 0:
                problems.append(f"{where}: {key} must be a positive number")
        if entry.get("agreement") is not True:
            problems.append(
                f"{where}: agreement must be true — a parallel backend "
                "disagreeing with the serial labels is a correctness bug"
            )
        backends_seen.add(entry.get("backend"))

    if "serial" not in backends_seen:
        problems.append(f"{origin}: no serial baseline entry in results")
    if "process" not in backends_seen:
        problems.append(f"{origin}: no process-backend entry in results")
    return problems


def check_file(path: Path) -> list:
    """Parse and validate one report file; return its problem list."""
    try:
        report = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        return [f"{path}: unreadable or invalid JSON ({error})"]
    return validate_report(report, str(path))


def main(argv: list) -> int:
    paths = [Path(arg) for arg in argv]
    if not paths:
        paths = sorted(Path.cwd().glob("BENCH_*.json"))
    if not paths:
        print("FAIL no BENCH_*.json files found (and none given)", file=sys.stderr)
        return 1
    failures = 0
    for path in paths:
        if not path.exists():
            print(f"FAIL missing report file: {path}", file=sys.stderr)
            failures += 1
            continue
        problems = check_file(path)
        if problems:
            failures += 1
            for problem in problems:
                print(f"FAIL {problem}", file=sys.stderr)
        else:
            report = json.loads(path.read_text(encoding="utf-8"))
            print(
                f"ok   {path} ({report['suite']}, scale={report['scale']}, "
                f"{len(report['results'])} result rows)"
            )
    if failures:
        print(f"bench-check: {failures} invalid file(s)", file=sys.stderr)
        return 1
    print(f"bench-check: {len(paths)} file(s) schema-valid")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
