#!/usr/bin/env python
"""Fail if generated artifacts (bytecode, caches) are committed to git.

PR 1 accidentally committed ``__pycache__/*.pyc`` files; this guard keeps
them out for good.  It lists the files git tracks and rejects anything
matching the forbidden patterns below.  Run from anywhere inside the repo;
used by CI and available locally as ``make hygiene-check``.
"""

from __future__ import annotations

import re
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Path patterns that must never be committed.
FORBIDDEN = (
    re.compile(r"(^|/)__pycache__(/|$)"),
    re.compile(r"\.py[cod]$"),
    re.compile(r"(^|/)\.pytest_cache(/|$)"),
    re.compile(r"(^|/)\.hypothesis(/|$)"),
    re.compile(r"(^|/)\.benchmarks(/|$)"),
    re.compile(r"(^|/)\.mypy_cache(/|$)"),
    re.compile(r"(^|/)\.DS_Store$"),
    re.compile(r"\.egg-info(/|$)"),
)


def tracked_files() -> list:
    """Every path git tracks, relative to the repository root."""
    output = subprocess.check_output(
        ["git", "ls-files"], cwd=REPO_ROOT, text=True
    )
    return [line for line in output.splitlines() if line]


def violations(paths) -> list:
    """The subset of ``paths`` matching a forbidden pattern."""
    return [
        path
        for path in paths
        if any(pattern.search(path) for pattern in FORBIDDEN)
    ]


def main() -> int:
    bad = violations(tracked_files())
    if bad:
        print(
            f"FAIL {len(bad)} generated artifact(s) are committed "
            "(bytecode/cache files must never be checked in):",
            file=sys.stderr,
        )
        for path in bad:
            print(f"  {path}", file=sys.stderr)
        print(
            "Remove them with: git rm -r --cached <path>  (they are "
            "covered by .gitignore)",
            file=sys.stderr,
        )
        return 1
    print(f"hygiene-check: {len(tracked_files())} tracked files clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
