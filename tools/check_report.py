#!/usr/bin/env python
"""Validate a generated report directory (``docs/report/``).

The report pipeline writes three artifact kinds — Vega-Lite specs, tidy
CSVs, and ``REPORT.md`` — that reference each other by relative path.
This checker fails the build when any cross-reference is broken:

* every spec must be valid JSON with a Vega-Lite ``$schema``, and its
  ``data.url`` must resolve to an existing CSV next to the specs;
* every field a spec encodes, filters on, or declares in ``format.parse``
  must exist as a CSV column (or be produced by one of the spec's own
  transforms), so a renamed table column cannot silently blank a figure;
* the ``usermeta.rows`` / ``usermeta.columns`` stamp the generator wrote
  into each spec must match the CSV on disk exactly — a spec regenerated
  against different data, or a hand-edited CSV, is caught byte-for-byte;
* every data CSV must parse, be rectangular, and hold at least one row;
* ``REPORT.md`` must exist and link every spec and every CSV (no orphan
  artifacts, no dangling links).

Usage::

    python tools/check_report.py [REPORT_DIR]   # default: docs/report

Exit status is 0 when the report directory is internally consistent,
1 otherwise.
"""

from __future__ import annotations

import csv
import json
import re
import sys
from pathlib import Path
from typing import List, Set, Tuple

_DATUM_TOKEN = re.compile(r"datum\.([A-Za-z_][A-Za-z0-9_]*)")


def _spec_fields(node: object) -> Set[str]:
    """Every column name a spec fragment references (recursively)."""
    fields: Set[str] = set()
    if isinstance(node, dict):
        for key, value in node.items():
            if key == "field" and isinstance(value, str):
                fields.add(value)
            elif key in ("filter", "calculate") and isinstance(value, str):
                fields.update(_DATUM_TOKEN.findall(value))
            elif key == "parse" and isinstance(value, dict):
                fields.update(name for name in value if isinstance(name, str))
            else:
                fields.update(_spec_fields(value))
    elif isinstance(node, list):
        for item in node:
            fields.update(_spec_fields(item))
    return fields


def _transform_outputs(node: object) -> Set[str]:
    """Every field name a spec's transforms create (``as`` outputs)."""
    outputs: Set[str] = set()
    if isinstance(node, dict):
        for key, value in node.items():
            if key == "as":
                if isinstance(value, str):
                    outputs.add(value)
                elif isinstance(value, list):
                    outputs.update(item for item in value if isinstance(item, str))
            else:
                outputs.update(_transform_outputs(value))
    elif isinstance(node, list):
        for item in node:
            outputs.update(_transform_outputs(item))
    return outputs


def _read_csv(path: Path) -> Tuple[List[str], List[List[str]], List[str]]:
    """``(header, rows, problems)`` of one data CSV."""
    problems: List[str] = []
    try:
        with path.open(encoding="utf-8", newline="") as handle:
            parsed = list(csv.reader(handle))
    except (OSError, csv.Error) as error:
        return [], [], [f"{path}: unreadable CSV ({error})"]
    if not parsed or not parsed[0]:
        return [], [], [f"{path}: empty CSV (no header)"]
    header, rows = parsed[0], parsed[1:]
    if not rows:
        problems.append(f"{path}: no data rows (header only)")
    for index, row in enumerate(rows):
        if len(row) != len(header):
            problems.append(
                f"{path}: row {index + 1} has {len(row)} cells, "
                f"header has {len(header)}"
            )
            break
    return header, rows, problems


def check_spec(spec_path: Path, report_dir: Path) -> List[str]:
    """All integrity problems of one spec and the CSV it points at."""
    problems: List[str] = []
    try:
        spec = json.loads(spec_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        return [f"{spec_path}: unreadable or invalid JSON ({error})"]
    if not isinstance(spec, dict):
        return [f"{spec_path}: top level must be a JSON object"]
    schema = spec.get("$schema", "")
    if "vega-lite" not in str(schema):
        problems.append(f"{spec_path}: $schema is not a Vega-Lite schema URL")

    url = spec.get("data", {}).get("url") if isinstance(spec.get("data"), dict) else None
    if not isinstance(url, str) or not url:
        problems.append(f"{spec_path}: data.url missing")
        return problems
    data_path = (spec_path.parent / url).resolve()
    try:
        data_path.relative_to(report_dir.resolve())
    except ValueError:
        problems.append(
            f"{spec_path}: data.url {url!r} escapes the report directory"
        )
        return problems
    if not data_path.is_file():
        problems.append(f"{spec_path}: data file {url!r} does not exist")
        return problems

    header, rows, csv_problems = _read_csv(data_path)
    problems.extend(csv_problems)
    if not header:
        return problems

    columns = set(header) | _transform_outputs(spec.get("transform", [])) | {
        output
        for node in (spec.get("layer", []), spec.get("spec", {}))
        for output in _transform_outputs(node)
    }
    unknown = sorted(_spec_fields(spec) - columns)
    if unknown:
        problems.append(
            f"{spec_path}: encodes field(s) {unknown} not present in "
            f"{data_path.name} columns {header}"
        )

    usermeta = spec.get("usermeta", {})
    if not isinstance(usermeta, dict):
        problems.append(f"{spec_path}: usermeta must be an object")
    else:
        stamped_rows = usermeta.get("rows")
        if stamped_rows != len(rows):
            problems.append(
                f"{spec_path}: usermeta.rows is {stamped_rows!r} but "
                f"{data_path.name} holds {len(rows)} data row(s) — spec and "
                "data were not generated together"
            )
        stamped_columns = usermeta.get("columns")
        if stamped_columns != header:
            problems.append(
                f"{spec_path}: usermeta.columns {stamped_columns!r} does not "
                f"match the {data_path.name} header {header}"
            )
    return problems


def check_report_dir(report_dir: Path) -> List[str]:
    """All integrity problems of one generated report directory."""
    problems: List[str] = []
    markdown_path = report_dir / "REPORT.md"
    specs_dir = report_dir / "specs"
    data_dir = report_dir / "data"
    if not markdown_path.is_file():
        problems.append(f"{markdown_path}: missing (run python -m repro.report)")
    if not specs_dir.is_dir():
        problems.append(f"{specs_dir}: missing specs directory")
    if not data_dir.is_dir():
        problems.append(f"{data_dir}: missing data directory")
    if problems:
        return problems

    spec_paths = sorted(specs_dir.glob("*.vl.json"))
    data_paths = sorted(data_dir.glob("*.csv"))
    if not spec_paths:
        problems.append(f"{specs_dir}: holds no *.vl.json specs")
    if not data_paths:
        problems.append(f"{data_dir}: holds no *.csv tables")

    for spec_path in spec_paths:
        problems.extend(check_spec(spec_path, report_dir))
    for data_path in data_paths:
        _, _, csv_problems = _read_csv(data_path)
        problems.extend(csv_problems)

    markdown = markdown_path.read_text(encoding="utf-8")
    for path in spec_paths:
        if f"specs/{path.name}" not in markdown:
            problems.append(f"{markdown_path}: does not reference {path.name}")
    for path in data_paths:
        if f"data/{path.name}" not in markdown:
            problems.append(f"{markdown_path}: does not reference {path.name}")
    for stem in re.findall(r"\]\((specs/[^)]+|data/[^)]+)\)", markdown):
        if not (report_dir / stem).is_file():
            problems.append(f"{markdown_path}: dangling link to {stem}")
    return problems


def main(argv: List[str]) -> int:
    report_dir = Path(argv[0]) if argv else Path("docs/report")
    if not report_dir.is_dir():
        print(f"FAIL {report_dir}: not a directory", file=sys.stderr)
        return 1
    problems = check_report_dir(report_dir)
    if problems:
        for problem in problems:
            print(f"FAIL {problem}", file=sys.stderr)
        print(f"report-check: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    specs = len(list((report_dir / "specs").glob("*.vl.json")))
    tables = len(list((report_dir / "data").glob("*.csv")))
    print(
        f"report-check: {report_dir} ok ({specs} spec(s), {tables} table(s), "
        "all cross-references intact)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
