#!/usr/bin/env python
"""Regenerate — or verify — the golden scenario fingerprint file.

The golden-trace suite (``tests/test_scenario_golden.py``) pins the content
fingerprint of every registered scenario.  After an *intentional* change to
the builders, the simulators, the error model or the preprocessing, run

    python tools/update_golden.py

to rewrite ``tests/data/golden_scenarios.json``, then review the diff:
entries that moved are exactly the scenarios your change affected.  Entries
that moved unexpectedly are a regression, not a reason to commit the new
file.

``--check`` verifies instead of writing: it rematerialises every scenario
and exits non-zero if the committed file is missing an entry, carries a
stale fingerprint, or lists a scenario that no longer exists.  The hygiene
tests run the comparison logic in-process so a forgotten regeneration fails
tier-1, and CI can run ``python tools/update_golden.py --check`` directly.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

GOLDEN_PATH = REPO_ROOT / "tests" / "data" / "golden_scenarios.json"


def current_goldens() -> Dict[str, Dict[str, object]]:
    """Materialise every registered scenario and return its golden entry."""
    from repro.scenarios import scenario_specs

    goldens: Dict[str, Dict[str, object]] = {}
    for spec in scenario_specs():
        scenario = spec.materialize()
        goldens[spec.name] = {
            "seed": scenario.seed,
            "fingerprint": scenario.fingerprint,
            "sequences": len(scenario.dataset),
            "records": scenario.dataset.total_records,
        }
    return goldens


def compare(
    committed: Dict[str, Dict[str, object]],
    current: Dict[str, Dict[str, object]],
) -> List[str]:
    """Human-readable differences between the committed and current goldens."""
    problems: List[str] = []
    for name in sorted(set(committed) - set(current)):
        problems.append(f"{name}: committed but no longer registered")
    for name in sorted(set(current) - set(committed)):
        problems.append(f"{name}: registered but missing from the golden file")
    for name in sorted(set(current) & set(committed)):
        for key in ("seed", "fingerprint", "sequences", "records"):
            if committed[name].get(key) != current[name][key]:
                problems.append(
                    f"{name}: {key} drifted "
                    f"(committed {committed[name].get(key)!r}, "
                    f"current {current[name][key]!r})"
                )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate or verify tests/data/golden_scenarios.json."
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="verify the committed file instead of rewriting it",
    )
    parser.add_argument(
        "--path",
        type=Path,
        default=GOLDEN_PATH,
        help=f"golden file location (default: {GOLDEN_PATH})",
    )
    args = parser.parse_args(argv)

    current = current_goldens()
    if args.check:
        if not args.path.exists():
            print(f"error: {args.path} does not exist", file=sys.stderr)
            return 1
        committed = json.loads(args.path.read_text())
        problems = compare(committed, current)
        for problem in problems:
            print(f"STALE  {problem}")
        if problems:
            print(
                f"{args.path} is stale; regenerate with "
                "`python tools/update_golden.py` and review the diff",
                file=sys.stderr,
            )
            return 1
        print(f"{args.path} is up to date ({len(current)} scenarios)")
        return 0

    previous: Dict[str, Dict[str, object]] = (
        json.loads(args.path.read_text()) if args.path.exists() else {}
    )
    args.path.parent.mkdir(parents=True, exist_ok=True)
    args.path.write_text(json.dumps(current, indent=2, sort_keys=True) + "\n")
    changed = [p for p in compare(previous, current)]
    for line in changed:
        print(f"CHANGED  {line}")
    print(f"wrote {args.path} ({len(current)} scenarios, {len(changed)} changes)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
