#!/usr/bin/env python
"""Execute the ``python`` code blocks of markdown documentation.

Documentation code that does not run is worse than no documentation.  This
tool extracts every fenced ````` ```python ````` block from the given
markdown files and executes each file's blocks sequentially in one shared
namespace (so a quickstart can build on an earlier block).  Any exception
fails the check with the offending file and block number.

Used by ``make docs-check`` and the CI workflow.  ``src`` is put on
``sys.path`` automatically so an uninstalled checkout works.
"""

from __future__ import annotations

import re
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

BLOCK_PATTERN = re.compile(r"```python\n(.*?)```", re.DOTALL)


def python_blocks(markdown: str) -> list:
    """Return the contents of every ```python fenced block, in order."""
    return [match.group(1) for match in BLOCK_PATTERN.finditer(markdown)]


def check_file(path: Path) -> int:
    """Execute all python blocks of one markdown file; return the count."""
    blocks = python_blocks(path.read_text(encoding="utf-8"))
    namespace: dict = {"__name__": f"docs_check_{path.stem}"}
    for number, block in enumerate(blocks, start=1):
        started = time.perf_counter()
        try:
            exec(compile(block, f"{path}#block{number}", "exec"), namespace)
        except Exception:
            print(f"FAIL {path} block {number}:\n{block}", file=sys.stderr)
            raise
        elapsed = time.perf_counter() - started
        print(f"ok   {path} block {number} ({elapsed:.1f}s)")
    return len(blocks)


def main(argv: list) -> int:
    paths = [Path(arg) for arg in argv] or [
        REPO_ROOT / "README.md",
        REPO_ROOT / "docs" / "ARCHITECTURE.md",
    ]
    total = 0
    for path in paths:
        if not path.exists():
            print(f"FAIL missing documentation file: {path}", file=sys.stderr)
            return 1
        total += check_file(path)
    if total == 0:
        print("FAIL no python code blocks found", file=sys.stderr)
        return 1
    print(f"docs-check: {total} block(s) across {len(paths)} file(s) executed cleanly")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
