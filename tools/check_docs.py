#!/usr/bin/env python
"""Execute the ``python`` code blocks of markdown documentation.

Documentation code that does not run is worse than no documentation.  This
tool extracts every fenced ````` ```python ````` block from the given
markdown files and executes each file's blocks sequentially in one shared
namespace (so a quickstart can build on an earlier block).  Any exception
fails the check with the offending file and block number.

With ``--handbook`` it additionally cross-checks the benchmark handbook
(``docs/BENCHMARKS.md``) against the committed baselines: every schema
field path the handbook's tables document must exist in the corresponding
``benchmarks/baselines/BENCH_<suite>.json`` (and vice versa — an
undocumented field fails too), and the documented ``run_table.csv``
columns must match ``repro.net.loadgen.LoadRunReport`` exactly.  The
handbook cannot drift from the artifacts it describes.

Used by ``make docs-check`` and the CI workflow.  ``src`` is put on
``sys.path`` automatically so an uninstalled checkout works.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
import time
from dataclasses import fields as dataclass_fields
from pathlib import Path
from typing import Dict, List, Set

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

BLOCK_PATTERN = re.compile(r"```python\n(.*?)```", re.DOTALL)

#: First-cell tokens of handbook table rows: a backticked dotted path,
#: optionally with ``[]`` (list-of-objects) and a trailing ``.*`` wildcard
#: for sections whose keys are data-dependent (e.g. endpoint counters).
_PATH_TOKEN = re.compile(r"^\|\s*`([a-z_][a-z0-9_.\[\]*-]*)`\s*\|")

_HEADING = re.compile(r"^##\s+(.*)$")


def python_blocks(markdown: str) -> list:
    """Return the contents of every ```python fenced block, in order."""
    return [match.group(1) for match in BLOCK_PATTERN.finditer(markdown)]


def check_file(path: Path) -> int:
    """Execute all python blocks of one markdown file; return the count."""
    blocks = python_blocks(path.read_text(encoding="utf-8"))
    namespace: dict = {"__name__": f"docs_check_{path.stem}"}
    for number, block in enumerate(blocks, start=1):
        started = time.perf_counter()
        try:
            exec(compile(block, f"{path}#block{number}", "exec"), namespace)
        except Exception:
            print(f"FAIL {path} block {number}:\n{block}", file=sys.stderr)
            raise
        elapsed = time.perf_counter() - started
        print(f"ok   {path} block {number} ({elapsed:.1f}s)")
    return len(blocks)


# ------------------------------------------------------- handbook check
def handbook_sections(markdown: str) -> Dict[str, Set[str]]:
    """Field paths documented per ``##`` section of the handbook."""
    sections: Dict[str, Set[str]] = {}
    current = ""
    for line in markdown.splitlines():
        heading = _HEADING.match(line)
        if heading:
            current = heading.group(1).strip()
            continue
        token = _PATH_TOKEN.match(line.strip())
        if token and current:
            sections.setdefault(current, set()).add(token.group(1))
    return sections


def flatten_report(value: object, prefix: str = "") -> Set[str]:
    """Every leaf field path of one parsed report.

    Dict keys join with ``.``; a list of objects contributes ``path[]``
    per-element paths; a list of scalars (or an empty list) is itself a
    leaf.
    """
    paths: Set[str] = set()
    if isinstance(value, dict):
        for key, item in value.items():
            paths |= flatten_report(item, f"{prefix}.{key}" if prefix else str(key))
    elif isinstance(value, list) and value and all(
        isinstance(item, dict) for item in value
    ):
        for item in value:
            paths |= flatten_report(item, prefix + "[]")
    else:
        paths.add(prefix)
    return paths


def _match_paths(
    documented: Set[str], actual: Set[str], where: str
) -> List[str]:
    """Two-way diff of documented vs actual paths (``.*`` = wildcard)."""
    problems = []
    exact = {path for path in documented if not path.endswith(".*")}
    wildcards = {path[:-1] for path in documented if path.endswith(".*")}
    for path in sorted(actual - exact):
        if not any(path.startswith(prefix) for prefix in wildcards):
            problems.append(f"{where}: field {path!r} is not documented")
    for path in sorted(exact - actual):
        problems.append(f"{where}: documents {path!r} which does not exist")
    for prefix in sorted(wildcards):
        if not any(path.startswith(prefix) for path in actual):
            problems.append(
                f"{where}: documents wildcard {prefix + '*'!r} matching nothing"
            )
    return problems


def check_handbook(handbook: Path, baselines: Path) -> List[str]:
    """Cross-check the handbook against the committed baselines."""
    from repro.net.loadgen import LoadRunReport

    if not handbook.exists():
        return [f"missing handbook: {handbook}"]
    sections = handbook_sections(handbook.read_text(encoding="utf-8"))

    def section_paths(marker: str) -> Set[str]:
        collected: Set[str] = set()
        for heading, paths in sections.items():
            if marker in heading:
                collected |= paths
        return collected

    problems: List[str] = []
    envelope = section_paths("envelope")
    if not envelope:
        problems.append(f"{handbook}: no 'envelope' section with field tables")

    baseline_files = sorted(baselines.glob("BENCH_*.json"))
    if not baseline_files:
        problems.append(f"no committed baselines under {baselines}")
    for path in baseline_files:
        report = json.loads(path.read_text(encoding="utf-8"))
        suite = report.get("suite", "")
        suite_paths = section_paths(f"BENCH_{suite}.json")
        if not suite_paths:
            problems.append(
                f"{handbook}: no section documenting `BENCH_{suite}.json`"
            )
            continue
        problems.extend(
            _match_paths(
                envelope | suite_paths,
                flatten_report(report),
                f"{handbook} vs {path.name}",
            )
        )

    documented_columns = section_paths("run_table.csv")
    actual_columns = {field.name for field in dataclass_fields(LoadRunReport)} | {
        "failure_rate"
    }
    problems.extend(
        _match_paths(
            documented_columns,
            actual_columns,
            f"{handbook} vs repro.net.loadgen.LoadRunReport",
        )
    )
    return problems


def main(argv: list) -> int:
    parser = argparse.ArgumentParser(
        prog="python tools/check_docs.py",
        description="Execute markdown python blocks; optionally cross-check "
        "the benchmark handbook against committed baselines.",
    )
    parser.add_argument("files", nargs="*", type=Path, help="markdown files")
    parser.add_argument(
        "--handbook",
        nargs="?",
        type=Path,
        const=REPO_ROOT / "docs" / "BENCHMARKS.md",
        default=None,
        help="cross-check this handbook (default docs/BENCHMARKS.md) "
        "against --baselines",
    )
    parser.add_argument(
        "--baselines",
        type=Path,
        default=REPO_ROOT / "benchmarks" / "baselines",
        help="committed baseline directory (default benchmarks/baselines)",
    )
    args = parser.parse_args(argv)

    paths = list(args.files)
    if not paths and args.handbook is None:
        paths = [REPO_ROOT / "README.md", REPO_ROOT / "docs" / "ARCHITECTURE.md"]

    total = 0
    for path in paths:
        if not path.exists():
            print(f"FAIL missing documentation file: {path}", file=sys.stderr)
            return 1
        total += check_file(path)
    if paths and total == 0:
        print("FAIL no python code blocks found", file=sys.stderr)
        return 1

    if args.handbook is not None:
        problems = check_handbook(args.handbook, args.baselines)
        if problems:
            for problem in problems:
                print(f"FAIL {problem}", file=sys.stderr)
            print(f"docs-check: {len(problems)} handbook problem(s)",
                  file=sys.stderr)
            return 1
        print(f"docs-check: handbook {args.handbook} matches the committed "
              "baselines and the run-table contract")

    if paths:
        print(f"docs-check: {total} block(s) across {len(paths)} file(s) "
              "executed cleanly")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
