#!/usr/bin/env python
"""CI smoke test: SIGKILL a publishing store process, recover, diff.

Stages the crash the durability layer exists for, with a real process and
a real ``SIGKILL`` (no atexit handlers, no flushed buffers, no ``close()``):

1. spawn a child that opens a durable :class:`ShardedSemanticsStore`
   (sync WAL mode) and publishes a deterministic stream, acknowledging
   each object id on stdout only after ``publish`` returned — i.e. after
   the WAL record is durable;
2. after enough acknowledgements, ``SIGKILL`` the child mid-stream;
3. reopen the store in this process (snapshot load + WAL-tail replay,
   torn final record tolerated) and diff: every acknowledged object must
   be present with exactly the entries the deterministic stream assigns
   it, and nothing recovered may be junk.

Exits non-zero with a diagnostic when any acknowledged object is missing
or differs — the failure mode WALs exist to make impossible.

Usage::

    python tools/crash_recovery_smoke.py [--acks 60] [--shards 3]
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.mobility.records import EVENT_PASS, EVENT_STAY, MSemantics  # noqa: E402
from repro.store import DurabilityConfig, ShardedSemanticsStore  # noqa: E402

#: Compaction interval of the child's store — small, so the kill window
#: usually lands near or inside a snapshot+compaction cycle.
SNAPSHOT_EVERY = 16


def stream_entry(position: int) -> MSemantics:
    """The deterministic record of object ``position`` — parent and child
    both derive it from the position alone, so the diff needs no channel
    besides the acknowledged ids."""
    return MSemantics(
        region_id=position % 11,
        start_time=float(position),
        end_time=float(position) + 1.0 + (position % 3),
        event=EVENT_STAY if position % 4 else EVENT_PASS,
    )


def run_child(root: str, shards: int) -> int:
    store = ShardedSemanticsStore(
        shards,
        durability=DurabilityConfig(
            root=root, mode="sync", snapshot_every=SNAPSHOT_EVERY
        ),
    )
    for position in range(1_000_000):  # parent kills us long before this
        store.publish(f"obj-{position}", [stream_entry(position)])
        print(position, flush=True)
    return 0


def run_parent(acks: int, shards: int) -> int:
    with tempfile.TemporaryDirectory(prefix="crash-smoke-") as tmp:
        root = str(Path(tmp) / "store")
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
        )
        child = subprocess.Popen(
            [sys.executable, __file__, "--child", root, "--shards", str(shards)],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            text=True,
        )
        acknowledged = []
        try:
            for line in child.stdout:
                acknowledged.append(int(line))
                if len(acknowledged) >= acks:
                    break
        finally:
            child.kill()
            child.wait()
        if len(acknowledged) < acks:
            print(child.stderr.read(), file=sys.stderr)
            print(
                f"FAIL: child died after {len(acknowledged)}/{acks} acks",
                file=sys.stderr,
            )
            return 1

        store = ShardedSemanticsStore.open(root)
        recovered = store.as_dict()
        recovery = store.last_recovery or {}
        store.close()

        missing = [p for p in acknowledged if f"obj-{p}" not in recovered]
        wrong = [
            p
            for p in acknowledged
            if f"obj-{p}" in recovered
            and recovered[f"obj-{p}"] != [stream_entry(p)]
        ]
        junk = [
            object_id
            for object_id in recovered
            if not object_id.startswith("obj-")
            or recovered[object_id] != [stream_entry(int(object_id[4:]))]
        ]
        status = "ok" if not (missing or wrong or junk) else "FAIL"
        print(
            f"{status}: killed after {len(acknowledged)} acknowledged publishes; "
            f"recovered {len(recovered)} objects over {shards} shard(s) "
            f"(replayed {recovery.get('replayed_records', 0)} WAL records, "
            f"truncated {recovery.get('truncated_bytes', 0)} torn bytes)"
        )
        if missing:
            print(f"FAIL: {len(missing)} acknowledged objects lost: "
                  f"{missing[:10]}", file=sys.stderr)
        if wrong:
            print(f"FAIL: {len(wrong)} objects recovered with wrong entries: "
                  f"{wrong[:10]}", file=sys.stderr)
        if junk:
            print(f"FAIL: junk objects in recovery: {junk[:10]}", file=sys.stderr)
        return 0 if status == "ok" else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--acks", type=int, default=60,
        help="acknowledged publishes to wait for before the SIGKILL",
    )
    parser.add_argument(
        "--shards", type=int, default=3, help="shard count of the durable store"
    )
    parser.add_argument("--child", metavar="ROOT", help=argparse.SUPPRESS)
    args = parser.parse_args(argv)
    if args.child:
        return run_child(args.child, args.shards)
    return run_parent(args.acks, args.shards)


if __name__ == "__main__":
    raise SystemExit(main())
