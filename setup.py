"""Legacy setup shim.

The environment used for the reproduction is fully offline and has no
``wheel`` package, so every pip editable route (PEP 660 or
``--no-use-pep517``) fails there; ``python setup.py develop`` still works
and is the documented offline fallback.  All project metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
