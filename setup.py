"""Legacy setup shim.

The environment used for the reproduction is fully offline and has no
``wheel`` package, so PEP 660 editable installs fail.  This shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` fall back to the
classic setuptools develop mode.  All project metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
