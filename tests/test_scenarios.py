"""The declarative scenario subsystem: specs, registry, profiles, wiring.

Covers spec validation, registry behaviour, the venue archetypes and
mobility profiles, dropout bursts and the adversarial device regimes
(multipath bias, clock skew/jitter, duplicate retransmissions), streaming
materialisation, seed determinism, and every integration surface of the
scenario layer: experiment runners, the evaluation harness,
``repro.bench --scenario``, the streaming replay and the CLI.
"""

import pytest

from repro.bench.runner import main as bench_main
from repro.bench.runner import run_scenario_benchmarks
from repro.evaluation.experiments import (
    ExperimentScale,
    build_real_style_dataset,
    mall_scenario_spec,
    resolve_dataset,
    run_accuracy_comparison,
)
from repro.evaluation.harness import MethodEvaluator
from repro.core.variants import make_annotator
from repro.indoor.builders import (
    build_airport_terminal,
    build_concourse_hub,
    build_hospital,
    build_office_tower,
    build_stadium,
)
from repro.indoor.topology import AccessibilityGraph
from repro.mobility.positioning import PositioningErrorModel
from repro.mobility.preprocessing import normalize_report_stream
from repro.mobility.simulator import (
    CommuterSimulator,
    CrowdSurgeSimulator,
    PeakHoursSimulator,
    WaypointSimulator,
)
from repro.scenarios import (
    DeviceSpec,
    MobilitySpec,
    ScenarioSpec,
    VenueSpec,
    get_scenario,
    materialize,
    register_scenario,
    scenario_names,
    unregister_scenario,
)
from repro.scenarios.__main__ import main as scenarios_main
from repro.service import replay_scenario


# ---------------------------------------------------------------- specs
class TestSpecs:
    def test_unknown_archetype_rejected(self):
        with pytest.raises(ValueError, match="archetype"):
            VenueSpec("atlantis-dome")

    def test_unknown_mobility_profile_rejected(self):
        with pytest.raises(ValueError, match="profile"):
            MobilitySpec("teleport")

    def test_device_spec_validation(self):
        with pytest.raises(ValueError, match="max_period"):
            DeviceSpec(max_period=0.0)
        with pytest.raises(ValueError, match="probability"):
            DeviceSpec(dropout_probability=1.5)

    def test_scenario_spec_validation(self):
        venue = VenueSpec("mall", params={"floors": 1, "shops_per_side": 3})
        with pytest.raises(ValueError, match="name"):
            ScenarioSpec(name="", venue=venue)
        with pytest.raises(ValueError, match="object"):
            ScenarioSpec(name="x", venue=venue, objects=0)

    def test_params_mapping_is_normalised(self):
        a = VenueSpec("mall", params={"floors": 1, "shops_per_side": 3})
        b = VenueSpec("mall", params={"shops_per_side": 3, "floors": 1})
        assert a == b
        assert a.build().summary() == b.build().summary()


# -------------------------------------------------------------- registry
class TestRegistry:
    def test_catalogue_is_registered(self):
        names = scenario_names()
        assert "mall-tiny" in names
        assert "transit-morning-peak" in names

    def test_unknown_name_lists_catalogue(self):
        with pytest.raises(KeyError, match="registered"):
            get_scenario("atlantis")

    def test_duplicate_registration_needs_replace(self):
        spec = get_scenario("mall-tiny")
        with pytest.raises(ValueError, match="already registered"):
            register_scenario(spec)
        register_scenario(spec, replace=True)  # same spec back — harmless

    def test_register_and_unregister_custom_scenario(self):
        spec = ScenarioSpec(
            name="unit-test-lab",
            venue=VenueSpec("mall", params={"floors": 1, "shops_per_side": 3}),
            objects=2,
            duration=300.0,
            min_duration=60.0,
        )
        try:
            register_scenario(spec)
            assert get_scenario("unit-test-lab") is spec
        finally:
            unregister_scenario("unit-test-lab")
        assert "unit-test-lab" not in scenario_names()


# ----------------------------------------------------------- determinism
class TestDeterminism:
    def test_same_seed_bitwise_same(self):
        first = materialize("transit-commuters")
        second = materialize("transit-commuters")
        assert first.fingerprint == second.fingerprint
        for a, b in zip(first.dataset.sequences, second.dataset.sequences):
            assert a.region_labels == b.region_labels
            assert [r.timestamp for r in a.sequence] == [r.timestamp for r in b.sequence]

    def test_different_seed_differs(self):
        base = materialize("mall-tiny")
        other = materialize("mall-tiny", seed=base.seed + 1)
        assert other.fingerprint != base.fingerprint

    def test_with_seed_copies_spec(self):
        spec = get_scenario("mall-tiny")
        moved = spec.with_seed(99)
        assert moved.seed == 99 and spec.seed == 3
        assert moved.materialize().fingerprint == spec.materialize(99).fingerprint


# ---------------------------------------------------------- new archetype
class TestConcourseHub:
    def test_structure_is_sparse_in_doors(self):
        space = build_concourse_hub(halls=3, bays_per_hall=4)
        summary = space.summary()
        # 3 halls + 12 bays partitions; 2 hall-hall doors + 12 bay doors.
        assert summary["partitions"] == 15
        assert summary["doors"] == 14
        assert summary["regions"] == 15  # every hall and bay is a region
        categories = {region.category for region in space.regions}
        assert categories == {"concourse", "gate", "ward"}

    def test_multi_floor_staircases(self):
        space = build_concourse_hub(floors=2, halls=2, bays_per_hall=3)
        assert space.summary()["staircases"] == 2
        assert space.floors == [0, 1]

    def test_invalid_arguments(self):
        with pytest.raises(ValueError, match="floor"):
            build_concourse_hub(floors=0)
        with pytest.raises(ValueError, match="fit"):
            build_concourse_hub(bays_per_hall=10, bay_width=6.0, hall_width=30.0)


# ------------------------------------------------- new venue archetypes
class TestAirportTerminal:
    def test_security_is_the_single_landside_airside_choke(self):
        import networkx as nx

        space = build_airport_terminal(concourses=2, gates_per_side=2)
        categories = {region.category for region in space.regions}
        assert categories == {"landside", "security", "gate", "retail"}
        # 2 concourses × (1 spine + 1 pier + 4 gates + 1 retail) + hall + security.
        assert space.summary()["partitions"] == 16
        assert AccessibilityGraph(space).is_connected()
        # Removing the security partition disconnects landside from every gate.
        adjacency = nx.Graph()
        adjacency.add_nodes_from(p.partition_id for p in space.partitions)
        adjacency.add_edges_from(door.partition_ids for door in space.doors)
        security = next(r for r in space.regions if r.category == "security")
        hall = next(r for r in space.regions if r.category == "landside")
        adjacency.remove_nodes_from(security.partition_ids)
        for gate in (r for r in space.regions if r.category == "gate"):
            assert not nx.has_path(
                adjacency, hall.partition_ids[0], gate.partition_ids[0]
            )

    def test_gate_naming_scheme(self):
        space = build_airport_terminal(concourses=2, gates_per_side=2)
        gate_names = {r.name for r in space.regions if r.category == "gate"}
        assert "C0-G00W" in gate_names and "C1-G01E" in gate_names
        assert len(gate_names) == 8

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError, match="concourse"):
            build_airport_terminal(concourses=0)
        with pytest.raises(ValueError, match="retail"):
            build_airport_terminal(retail_width=20.0)


class TestHospital:
    def test_interlinked_wards_create_cycles(self):
        linked = build_hospital(floors=1, wards_per_side=3, interlinked=True)
        chained = build_hospital(floors=1, wards_per_side=3, interlinked=False)
        # Same partitions, strictly more doors when wards interconnect.
        assert linked.summary()["partitions"] == chained.summary()["partitions"]
        assert linked.summary()["doors"] > chained.summary()["doors"]
        assert AccessibilityGraph(linked).is_connected()
        assert AccessibilityGraph(chained).is_connected()

    def test_categories_and_floors(self):
        space = build_hospital(floors=2, wards_per_side=3)
        categories = {region.category for region in space.regions}
        assert {"ward", "treatment", "imaging"} <= categories
        assert space.summary()["staircases"] == 2
        assert space.floors == [0, 1]

    def test_invalid_arguments(self):
        with pytest.raises(ValueError, match="floor"):
            build_hospital(floors=0)
        with pytest.raises(ValueError, match="ward"):
            build_hospital(wards_per_side=1)


class TestStadium:
    def test_concourse_ring_closes(self):
        space = build_stadium(floors=1, sections_per_side=2)
        graph = AccessibilityGraph(space)
        assert graph.is_connected()
        # A closed ring has at least as many ring doors as ring partitions
        # (a cycle), unlike the tree-shaped mall/office corridors.
        ring_ids = {
            p.partition_id for p in space.partitions if p.kind in ("concourse", "plaza")
        }
        ring_doors = [
            door for door in space.doors if set(door.partition_ids) <= ring_ids
        ]
        assert len(ring_doors) >= len(ring_ids)

    def test_stand_categories(self):
        space = build_stadium(floors=2, sections_per_side=2)
        categories = {region.category for region in space.regions}
        assert {"seating", "vip", "concessions"} <= categories
        assert space.summary()["staircases"] == 2
        stand_names = {r.name for r in space.regions if r.category in ("seating", "vip")}
        assert "F0-S01" in stand_names and "F1-S01" in stand_names

    def test_invalid_arguments(self):
        with pytest.raises(ValueError, match="tier"):
            build_stadium(floors=0)
        with pytest.raises(ValueError, match="section"):
            build_stadium(sections_per_side=0)


class TestOfficeTower:
    def test_sky_lobby_express_staircases(self):
        space = build_office_tower(floors=4, suites_per_side=1, sky_lobby_every=2)
        assert space.floors == [0, 1, 2, 3]
        # 3 local flights + 1 express jump between the two sky lobbies.
        assert space.summary()["staircases"] == 4
        express = [s for s in space.staircases if s.location_upper.floor
                   - s.location_lower.floor > 1]
        assert len(express) == 1
        assert express[0].location_lower.floor == 0
        assert express[0].location_upper.floor == 2
        assert AccessibilityGraph(space).is_connected()

    def test_sky_lobbies_are_regions(self):
        space = build_office_tower(floors=4, suites_per_side=1, sky_lobby_every=2)
        lobbies = [r for r in space.regions if r.category == "sky-lobby"]
        assert {r.floor for r in lobbies} == {0, 2}
        suites = [r for r in space.regions if r.category == "office"]
        assert {r.floor for r in suites} == {0, 1, 2, 3}

    def test_invalid_arguments(self):
        with pytest.raises(ValueError, match="two floors"):
            build_office_tower(floors=1)
        with pytest.raises(ValueError, match="core"):
            build_office_tower(suites_per_side=4, core_size=4.0)


# ----------------------------------------------------- mobility profiles
class TestMobilityProfiles:
    @pytest.fixture(scope="class")
    def venue(self):
        return build_concourse_hub(halls=2, bays_per_hall=3)

    def test_commuter_sticks_to_anchors(self, venue):
        simulator = CommuterSimulator(
            venue,
            anchor_count=2,
            anchor_affinity=1.0,
            min_stay=10.0,
            max_stay=40.0,
            seed=5,
        )
        trajectory = simulator.simulate_object("c-0", duration=900.0)
        anchor_ids = set(simulator._anchor_ids)
        stayed_in = {region for region, _, _ in trajectory.stay_visits()}
        # After the random initial region, every stay happens at an anchor.
        assert stayed_in <= anchor_ids | {trajectory.points[0].region_id}

    def test_commuter_is_seed_deterministic(self, venue):
        def run(seed):
            simulator = CommuterSimulator(venue, min_stay=10.0, max_stay=60.0, seed=seed)
            trajectory = simulator.simulate_object("c-0", duration=600.0)
            return [(p.timestamp, p.region_id, p.event) for p in trajectory.points]

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_crowd_peak_window_shortens_stays(self, venue):
        def mean_stay(peak_factor):
            simulator = PeakHoursSimulator(
                venue,
                min_stay=10.0,
                max_stay=300.0,
                peak_start=0.0,
                peak_end=4000.0,
                peak_stay_factor=peak_factor,
                seed=11,
            )
            trajectory = simulator.simulate_object("p-0", duration=3600.0)
            visits = trajectory.stay_visits()
            durations = [end - start for _, start, end in visits[:-1]]  # last may be cut
            return sum(durations) / len(durations)

        assert mean_stay(0.2) < mean_stay(1.0)

    def test_crowd_validation(self, venue):
        with pytest.raises(ValueError, match="peak_stay_factor"):
            PeakHoursSimulator(venue, peak_stay_factor=0.0)
        with pytest.raises(ValueError, match="peak"):
            PeakHoursSimulator(venue, peak_start=100.0, peak_end=50.0)

    def test_commuter_validation(self, venue):
        with pytest.raises(ValueError, match="anchor_count"):
            CommuterSimulator(venue, anchor_count=0)
        with pytest.raises(ValueError, match="anchor_affinity"):
            CommuterSimulator(venue, anchor_affinity=1.5)


class TestCrowdSurgeProfile:
    @pytest.fixture(scope="class")
    def venue(self):
        return build_stadium(floors=1, sections_per_side=2)

    def test_surge_pulls_objects_to_epicentres(self, venue):
        simulator = CrowdSurgeSimulator(
            venue,
            surges=((0.0, 3600.0),),
            surge_affinity=1.0,
            epicentres_per_surge=2,
            min_stay=10.0,
            max_stay=60.0,
            seed=19,
        )
        epicentres = set(simulator._epicentres[0])
        trajectory = simulator.simulate_object("s-0", duration=1800.0)
        stays = [region for region, _, _ in trajectory.stay_visits()]
        # With affinity 1, two epicentres and an always-on surge, every stay
        # after the random starting region bounces between the epicentres.
        assert len(stays) > 2
        assert set(stays[1:]) <= epicentres

    def test_outside_surge_windows_behaves_like_waypoint(self, venue):
        surge = CrowdSurgeSimulator(
            venue,
            surges=((5000.0, 6000.0),),  # never reached in this run
            surge_affinity=1.0,
            min_stay=10.0,
            max_stay=60.0,
            seed=23,
        )
        trajectory = surge.simulate_object("s-0", duration=900.0)
        visited = {region for region, _, _ in trajectory.stay_visits()}
        # Pre-surge behaviour keeps exploring instead of camping on one region.
        assert len(visited) > 1

    def test_surge_validation(self, venue):
        with pytest.raises(ValueError, match="surge"):
            CrowdSurgeSimulator(venue, surges=())
        with pytest.raises(ValueError, match="start < end"):
            CrowdSurgeSimulator(venue, surges=((100.0, 100.0),))
        with pytest.raises(ValueError, match="surge_affinity"):
            CrowdSurgeSimulator(venue, surge_affinity=1.5)

    def test_surge_is_seed_deterministic(self, venue):
        def run(seed):
            simulator = CrowdSurgeSimulator(
                venue, surges=((100.0, 400.0),), min_stay=10.0, max_stay=60.0, seed=seed
            )
            trajectory = simulator.simulate_object("s-0", duration=600.0)
            return [(p.timestamp, p.region_id) for p in trajectory.points]

        assert run(7) == run(7)
        assert run(7) != run(8)


# ------------------------------------------------------- dropout bursts
class TestDropoutBursts:
    def test_dropout_thins_reports(self):
        venue = build_concourse_hub(halls=2, bays_per_hall=3)
        simulator = WaypointSimulator(venue, min_stay=20.0, max_stay=120.0, seed=3)
        trajectory = simulator.simulate_object("d-0", duration=1800.0)
        dense = PositioningErrorModel(max_period=5.0, error=2.0, seed=4)
        sparse = PositioningErrorModel(
            max_period=5.0,
            error=2.0,
            dropout_probability=0.25,
            dropout_duration=(60.0, 180.0),
            seed=4,
        )
        dense_seq = dense.corrupt_trajectory(trajectory, venue)
        sparse_seq = sparse.corrupt_trajectory(trajectory, venue)
        assert len(sparse_seq.sequence) < len(dense_seq.sequence)

    def test_zero_dropout_stream_is_bitwise_unchanged(self):
        """dropout_probability=0 must not consume randomness: old datasets stand."""
        venue = build_concourse_hub(halls=2, bays_per_hall=3)
        simulator = WaypointSimulator(venue, min_stay=20.0, max_stay=120.0, seed=3)
        trajectory = simulator.simulate_object("d-0", duration=600.0)
        plain = PositioningErrorModel(max_period=5.0, error=2.0, seed=4)
        explicit = PositioningErrorModel(
            max_period=5.0, error=2.0, dropout_probability=0.0, seed=4
        )
        a = plain.corrupt_trajectory(trajectory, venue)
        b = explicit.corrupt_trajectory(trajectory, venue)
        assert [(r.timestamp, r.x, r.y) for r in a.sequence] == [
            (r.timestamp, r.x, r.y) for r in b.sequence
        ]

    def test_dropout_validation(self):
        with pytest.raises(ValueError, match="dropout_duration"):
            PositioningErrorModel(dropout_duration=(50.0, 10.0))


# ------------------------------------------------- adversarial regimes
class TestAdversarialRegimes:
    @pytest.fixture(scope="class")
    def trajectory_and_venue(self):
        venue = build_airport_terminal(concourses=1, gates_per_side=2)
        simulator = WaypointSimulator(venue, min_stay=20.0, max_stay=120.0, seed=3)
        return simulator.simulate_object("a-0", duration=900.0), venue

    def test_disabled_regimes_are_bitwise_neutral(self, trajectory_and_venue):
        """All-zero adversarial knobs must not consume randomness."""
        trajectory, venue = trajectory_and_venue
        plain = PositioningErrorModel(max_period=5.0, error=2.0, seed=4)
        explicit = PositioningErrorModel(
            max_period=5.0,
            error=2.0,
            multipath_probability=0.0,
            clock_skew=0.0,
            clock_jitter=0.0,
            duplicate_probability=0.0,
            seed=4,
        )
        a = plain.corrupt_trajectory(trajectory, venue)
        b = explicit.corrupt_trajectory(trajectory, venue)
        assert [(r.timestamp, r.x, r.y, r.floor) for r in a.sequence] == [
            (r.timestamp, r.x, r.y, r.floor) for r in b.sequence
        ]

    def test_multipath_biases_positions(self, trajectory_and_venue):
        trajectory, venue = trajectory_and_venue
        clean = PositioningErrorModel(max_period=5.0, error=2.0, seed=4)
        biased = PositioningErrorModel(
            max_period=5.0, error=2.0, multipath_probability=1.0,
            multipath_scale=6.0, seed=4,
        )
        clean_seq = clean.corrupt_trajectory(trajectory, venue)
        biased_seq = biased.corrupt_trajectory(trajectory, venue)
        # Multipath displacements are at least 2μ, so mean deviation grows.
        def mean_offset(labeled):
            truth = {p.timestamp: p.location for p in trajectory.points}
            offsets = [
                ((r.x - truth[r.timestamp].x) ** 2 + (r.y - truth[r.timestamp].y) ** 2)
                ** 0.5
                for r in labeled.sequence
                if r.timestamp in truth
            ]
            return sum(offsets) / len(offsets)

        assert mean_offset(biased_seq) > mean_offset(clean_seq)

    def test_clock_skew_shifts_reported_timestamps(self, trajectory_and_venue):
        trajectory, venue = trajectory_and_venue
        skewed = PositioningErrorModel(
            max_period=5.0, error=2.0, clock_skew=8.0, seed=4
        )
        raw = skewed.corrupt_trajectory_raw(trajectory, venue)
        truth_times = {p.timestamp for p in trajectory.points}
        shifted = [r.timestamp for r, _, _ in raw if r.timestamp not in truth_times]
        assert shifted  # the per-trajectory offset moved the clock

    def test_duplicates_arrive_late_and_normalize_away(self, trajectory_and_venue):
        trajectory, venue = trajectory_and_venue
        noisy = PositioningErrorModel(
            max_period=5.0, error=2.0, duplicate_probability=0.5,
            duplicate_delay=40.0, seed=4,
        )
        raw = noisy.corrupt_trajectory_raw(trajectory, venue)
        timestamps = [r.timestamp for r, _, _ in raw]
        inversions = sum(1 for a, b in zip(timestamps, timestamps[1:]) if b < a)
        assert inversions > 0, "retransmissions must arrive out of order"
        normalized = normalize_report_stream(raw)
        assert len(normalized) < len(raw)  # exact duplicates dropped
        assert normalized == normalize_report_stream(normalized)
        norm_times = [r.timestamp for r, _, _ in normalized]
        assert norm_times == sorted(norm_times)

    def test_normalization_is_permutation_insensitive(self, trajectory_and_venue):
        import random as _random

        trajectory, venue = trajectory_and_venue
        noisy = PositioningErrorModel(
            max_period=5.0, error=2.0, duplicate_probability=0.3,
            clock_jitter=3.0, seed=4,
        )
        raw = list(noisy.corrupt_trajectory_raw(trajectory, venue))
        shuffled = list(raw)
        _random.Random(0).shuffle(shuffled)
        assert normalize_report_stream(shuffled) == normalize_report_stream(raw)

    def test_adversarial_validation(self):
        with pytest.raises(ValueError, match="multipath"):
            PositioningErrorModel(multipath_probability=1.5)
        with pytest.raises(ValueError, match="multipath_scale"):
            PositioningErrorModel(multipath_probability=0.1, multipath_scale=1.0)
        with pytest.raises(ValueError, match="clock"):
            PositioningErrorModel(clock_skew=-1.0)
        with pytest.raises(ValueError, match="duplicate"):
            PositioningErrorModel(duplicate_probability=-0.1)

    def test_device_spec_flags_adversarial(self):
        assert not DeviceSpec().adversarial
        assert DeviceSpec(multipath_probability=0.1).adversarial
        assert DeviceSpec(clock_jitter=1.0).adversarial
        assert DeviceSpec(duplicate_probability=0.1).adversarial


# ---------------------------------------------- streaming materialisation
class TestStreamingMaterialize:
    @pytest.mark.parametrize(
        "name", ["mall-tiny", "stadium-matchday", "tower-shift-change"]
    )
    def test_materialize_iter_matches_batch_bitwise(self, name, scenario_cache):
        scenario = scenario_cache(name)
        spec = scenario.spec
        streamed = list(spec.materialize_iter(spec.seed, space=scenario.space))
        batch = scenario.dataset.sequences
        assert len(streamed) == len(batch)
        for a, b in zip(batch, streamed):
            assert a.object_id == b.object_id
            assert a.region_labels == b.region_labels
            assert a.event_labels == b.event_labels
            assert [(r.timestamp, r.x, r.y, r.floor) for r in a.sequence] == [
                (r.timestamp, r.x, r.y, r.floor) for r in b.sequence
            ]

    def test_stream_records_flattens_the_same_data(self, scenario_cache):
        scenario = scenario_cache("stadium-matchday")
        records = list(scenario.spec.stream_records(scenario.seed))
        assert len(records) == scenario.dataset.total_records
        object_ids = {record[0] for record in records}
        assert object_ids == {
            labeled.object_id for labeled in scenario.dataset.sequences
        }


# ------------------------------- indexed queries under adversarial input
class TestIndexedQueriesUnderAdversarialPositioning:
    @pytest.fixture(scope="class")
    def semantics(self, scenario_cache):
        from repro.baselines import SMoTAnnotator

        scenario = scenario_cache("tower-shift-change")
        annotator = SMoTAnnotator(scenario.space)
        annotator.fit(scenario.dataset.sequences)
        return annotator.annotate_many(
            [labeled.sequence for labeled in scenario.dataset.sequences]
        )

    @pytest.mark.parametrize("k", [1, 3, 5])
    def test_index_equals_scan(self, semantics, k):
        from repro.index.engine import SemanticsIndex
        from repro.queries.tkfrpq import TkFRPQ
        from repro.queries.tkprq import TkPRQ

        index = SemanticsIndex.from_semantics(semantics)
        times = [ms.start_time for per_object in semantics for ms in per_object]
        lo, hi = min(times), max(times)
        mid = (lo + hi) / 2.0
        for start, end in ((None, None), (lo, mid), (mid, hi)):
            prq = TkPRQ(k, start=start, end=end)
            assert prq.evaluate(index) == prq.evaluate(semantics)
            frpq = TkFRPQ(k, start=start, end=end)
            assert frpq.evaluate(index) == frpq.evaluate(semantics)


# ------------------------------------------------- evaluation integration
class TestEvaluationIntegration:
    def test_resolve_dataset_passthrough_and_by_name(self, small_dataset):
        assert resolve_dataset(small_dataset) is small_dataset
        by_name = resolve_dataset("mall-tiny")
        assert len(by_name) == len(small_dataset)

    def test_runner_accepts_scenario_name(self):
        results = run_accuracy_comparison("mall-tiny", methods=("SMoT",))
        assert results[0].method == "SMoT"
        assert 0.0 <= results[0].scores.region_accuracy <= 1.0

    def test_method_evaluator_evaluate_scenario(self):
        scenario = materialize("mall-tiny")
        method = make_annotator("SMoT", scenario.space)
        by_name = MethodEvaluator().evaluate_scenario(method, "mall-tiny")
        assert by_name.scores.region_accuracy > 0.0
        # Passing the materialised Scenario skips the second materialisation
        # and must score identically.
        by_object = MethodEvaluator().evaluate_scenario(method, scenario)
        assert by_object.scores == by_name.scores
        with pytest.raises(ValueError, match="conflicts"):
            MethodEvaluator().evaluate_scenario(method, scenario, seed=999)

    def test_build_real_style_dataset_goes_through_the_spec(self):
        scale = ExperimentScale.tiny()
        direct = mall_scenario_spec(scale, name="mall").materialize().dataset
        rebased = build_real_style_dataset(scale)
        assert [s.region_labels for s in rebased.sequences] == [
            s.region_labels for s in direct.sequences
        ]


# ------------------------------------------------------ bench integration
class TestBenchIntegration:
    def test_bench_cli_accepts_every_registered_scenario(self, capsys):
        """`python -m repro.bench --scenario X` parses for the whole catalogue."""
        for name in scenario_names():
            with pytest.raises(SystemExit) as excinfo:
                bench_main(["--scenario", name, "--help"])
            assert excinfo.value.code == 0
            capsys.readouterr()

    def test_bench_cli_rejects_unknown_scenario(self, capsys):
        with pytest.raises(SystemExit):
            bench_main(["--scenario", "atlantis", "--out", "/tmp/never.json"])
        capsys.readouterr()

    def test_run_scenario_benchmarks_report_shape(self):
        report = run_scenario_benchmarks(
            ["transit-commuters"], workers=2, replication=1
        )
        assert report["suite"] == "scenarios"
        assert {entry["backend"] for entry in report["results"]} == {"serial", "process"}
        assert all(entry["agreement"] for entry in report["results"])
        detail = report["scenarios"][0]
        assert detail["name"] == "transit-commuters"
        assert detail["fingerprint"] == materialize("transit-commuters").fingerprint

        # The report passes the repo's own schema validator.
        import sys
        from pathlib import Path

        tools_dir = str(Path(__file__).resolve().parents[1] / "tools")
        sys.path.insert(0, tools_dir)
        try:
            from check_bench import validate_report
        finally:
            sys.path.remove(tools_dir)
        assert validate_report(report, "inline") == []


# ------------------------------------- cross-backend conformance (PR 3 ext.)
class TestCrossBackendScenarioDeterminism:
    """Scenario-generated workloads decode bitwise-identically on every backend.

    Extends the execution-runtime conformance suite across the catalogue:
    every new venue archetype — airport choke point, cyclic hospital wards,
    the stadium ring, the vertical tower — and every adversarial device
    regime (multipath, clock skew/jitter, duplicates) feeds record patterns
    the mall fixture never produced, and sharded decoding must still be a
    pure throughput knob over all of them.
    """

    MATRIX = [
        "transit-commuters",    # concourse + dropout (the PR 3 original)
        "airport-redeye",       # airport + multipath bias
        "hospital-rounds",      # hospital + clock skew/jitter
        "stadium-matchday",     # stadium + surge + duplicates
        "tower-shift-change",   # tower + surge + all three regimes at once
    ]

    @pytest.fixture(scope="class", params=MATRIX)
    def scenario_annotator_and_decode(self, request, scenario_cache):
        from repro.core import C2MNAnnotator, C2MNConfig
        from repro.mobility.dataset import train_test_split

        scenario = scenario_cache(request.param)
        train, test = train_test_split(scenario.dataset, train_fraction=0.5, seed=5)
        annotator = C2MNAnnotator(
            scenario.space,
            config=C2MNConfig.fast(max_iterations=2, mcmc_samples=4, lbfgs_iterations=3),
        )
        annotator.fit(train.sequences)
        decode = [labeled.sequence for labeled in test.sequences]
        serial = annotator.predict_labels_many(decode, backend="serial")
        return annotator, decode, serial

    @pytest.mark.parametrize("backend", ["thread", "process"])
    @pytest.mark.parametrize("workers", [2, 3])
    def test_backends_match_serial_bitwise(
        self, scenario_annotator_and_decode, backend, workers
    ):
        annotator, decode, serial = scenario_annotator_and_decode
        sharded = annotator.predict_labels_many(
            decode, workers=workers, backend=backend
        )
        assert sharded == serial


# ---------------------------------------------------- service integration
class TestScenarioReplay:
    def test_windowed_replay_publishes_and_is_deterministic(self, fitted_annotator):
        service, report = replay_scenario(
            "mall-tiny", annotator=fitted_annotator, window=16
        )
        assert report.records > 0
        assert report.published > 0
        assert report.decodes == report.records
        assert len(service.store) == report.objects
        _, again = replay_scenario("mall-tiny", annotator=fitted_annotator, window=16)
        assert again.published == report.published

    def test_exact_replay_matches_batch(self, fitted_annotator):
        _, report = replay_scenario(
            "mall-tiny", annotator=fitted_annotator, exact=True
        )
        assert report.exact
        assert report.batch_agreement is True

    def test_live_queries_after_replay(self, fitted_annotator):
        service, _ = replay_scenario(
            "mall-tiny", annotator=fitted_annotator, window=16
        )
        top = service.popular_regions(3)
        assert len(top) > 0
        assert all(count > 0 for _, count in top)


# ------------------------------------------------------------------- CLI
class TestScenariosCli:
    def test_list(self, capsys):
        assert scenarios_main([]) == 0
        out = capsys.readouterr().out
        for name in scenario_names():
            assert name in out

    def test_materialize(self, capsys):
        assert scenarios_main(["--materialize", "mall-tiny"]) == 0
        out = capsys.readouterr().out
        assert "fingerprint" in out

    def test_materialize_unknown_fails(self, capsys):
        assert scenarios_main(["--materialize", "atlantis"]) == 1
        err = capsys.readouterr().err
        assert "unknown scenario 'atlantis'" in err
        assert "mall-tiny" in err  # the catalogue is listed

    def test_smoke(self, capsys):
        assert scenarios_main(["--smoke"]) == 0
        assert "smoke ok" in capsys.readouterr().out

    def test_write_goldens_roundtrip(self, tmp_path, capsys):
        target = tmp_path / "goldens.json"
        assert scenarios_main(["--write-goldens", str(target)]) == 0
        capsys.readouterr()
        import json

        written = json.loads(target.read_text())
        assert sorted(written) == scenario_names()
