"""Shared fixtures for the test suite.

Expensive objects (floorplans, datasets, trained annotators) are built once
per session and reused; tests must treat them as read-only.
"""

from __future__ import annotations

import pytest

from repro.core import C2MNAnnotator, C2MNConfig
from repro.indoor import build_mall_space, build_office_building
from repro.indoor.distance import IndoorDistanceOracle
from repro.indoor.topology import AccessibilityGraph
from repro.mobility.dataset import generate_dataset, train_test_split


@pytest.fixture(scope="session")
def small_space():
    """A one-floor mall with eight shops — the workhorse venue for unit tests."""
    return build_mall_space(floors=1, shops_per_side=4)


@pytest.fixture(scope="session")
def two_floor_space():
    """A two-floor mall with staircases, for topology and cross-floor tests."""
    return build_mall_space(floors=2, shops_per_side=4)


@pytest.fixture(scope="session")
def office_space():
    """A small Vita-like office building (synthetic-data venue)."""
    return build_office_building(floors=2, rooms_per_side=5, region_fraction=0.7)


@pytest.fixture(scope="session")
def small_graph(small_space):
    return AccessibilityGraph(small_space)


@pytest.fixture(scope="session")
def small_oracle(small_space, small_graph):
    return IndoorDistanceOracle(small_space, small_graph)


@pytest.fixture(scope="session")
def small_dataset(small_space):
    """A small labeled dataset over the one-floor mall."""
    return generate_dataset(
        small_space,
        objects=6,
        duration=1200.0,
        min_duration=200.0,
        max_period=8.0,
        error=4.0,
        seed=3,
        name="test-mall",
    )


@pytest.fixture(scope="session")
def small_split(small_dataset):
    return train_test_split(small_dataset, train_fraction=0.7, seed=5)


@pytest.fixture(scope="session")
def fast_config():
    return C2MNConfig.fast()


@pytest.fixture(scope="session")
def fitted_annotator(small_space, small_split, fast_config):
    """A C2MN annotator trained once on the small dataset's training part."""
    train, _ = small_split
    annotator = C2MNAnnotator(small_space, config=fast_config)
    annotator.fit(train.sequences)
    return annotator


@pytest.fixture(scope="session")
def office_dataset(office_space):
    """A small labeled dataset over the office building (synthetic venue)."""
    return generate_dataset(
        office_space,
        objects=6,
        duration=1200.0,
        min_duration=200.0,
        max_period=8.0,
        error=4.0,
        seed=9,
        name="test-office",
    )
