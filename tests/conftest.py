"""Shared fixtures for the test suite.

Expensive objects (floorplans, datasets, trained annotators) are built once
per session and reused; tests must treat them as read-only.

The venue/dataset fixtures are materialised from the scenario registry
(:mod:`repro.scenarios`) instead of being hand-built here: ``mall-tiny``
and ``office-tiny`` are the registered twins of the historical fixtures
(bitwise-identical data), so tests, benchmarks, docs and the bench CLI all
name the same workloads.
"""

from __future__ import annotations

import pytest

from repro.core import C2MNAnnotator, C2MNConfig
from repro.indoor.distance import IndoorDistanceOracle
from repro.indoor.topology import AccessibilityGraph
from repro.mobility.dataset import train_test_split
from repro.scenarios import VenueSpec, materialize


@pytest.fixture(scope="session")
def scenario_cache():
    """Session-wide scenario materialisation cache.

    Returns ``get(name, seed=None)``; every distinct ``(name, seed)`` pair
    is materialised at most once per test session, however many test
    modules ask for it.  Materialisation is deterministic, so sharing the
    objects is safe as long as tests treat them as read-only — the same
    contract every other session fixture here already carries.
    """
    cache = {}

    def get(name, seed=None):
        key = (name, seed)
        if key not in cache:
            cache[key] = materialize(name, seed)
        return cache[key]

    return get


@pytest.fixture(scope="session")
def mall_tiny_scenario(scenario_cache):
    """The materialised ``mall-tiny`` scenario (venue + dataset + fingerprint)."""
    return scenario_cache("mall-tiny")


@pytest.fixture(scope="session")
def office_tiny_scenario(scenario_cache):
    """The materialised ``office-tiny`` scenario."""
    return scenario_cache("office-tiny")


@pytest.fixture(scope="session")
def small_space(mall_tiny_scenario):
    """A one-floor mall with eight shops — the workhorse venue for unit tests."""
    return mall_tiny_scenario.space


@pytest.fixture(scope="session")
def two_floor_space():
    """A two-floor mall with staircases, for topology and cross-floor tests."""
    return VenueSpec("mall", params={"floors": 2, "shops_per_side": 4}).build()


@pytest.fixture(scope="session")
def office_space(office_tiny_scenario):
    """A small Vita-like office building (synthetic-data venue)."""
    return office_tiny_scenario.space


@pytest.fixture(scope="session")
def small_graph(small_space):
    return AccessibilityGraph(small_space)


@pytest.fixture(scope="session")
def small_oracle(small_space, small_graph):
    return IndoorDistanceOracle(small_space, small_graph)


@pytest.fixture(scope="session")
def small_dataset(mall_tiny_scenario):
    """A small labeled dataset over the one-floor mall."""
    return mall_tiny_scenario.dataset


@pytest.fixture(scope="session")
def small_split(small_dataset):
    return train_test_split(small_dataset, train_fraction=0.7, seed=5)


@pytest.fixture(scope="session")
def fast_config():
    return C2MNConfig.fast()


@pytest.fixture(scope="session")
def fitted_annotator(small_space, small_split, fast_config):
    """A C2MN annotator trained once on the small dataset's training part."""
    train, _ = small_split
    annotator = C2MNAnnotator(small_space, config=fast_config)
    annotator.fit(train.sequences)
    return annotator


@pytest.fixture(scope="session")
def office_dataset(office_tiny_scenario):
    """A small labeled dataset over the office building (synthetic venue)."""
    return office_tiny_scenario.dataset
