"""Crash-recovery tests of the WAL + snapshot durability layer.

Every failure mode the design claims to survive is staged for real here:
a torn final WAL record, a half-written snapshot temp file, a compaction
that crashed between snapshot and WAL truncation (stale records must not
double-apply), and an actual ``SIGKILL`` of a publishing subprocess whose
acknowledged objects must all come back.  Plus the config plumbing around
it: ``meta.json`` layout pinning, ``DurabilityConfig`` validation, and the
``AnnotationService`` save/load round-trip through a durable store.
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.mobility.records import EVENT_PASS, EVENT_STAY, MSemantics
from repro.queries import TkPRQ
from repro.service import AnnotationService
from repro.store import (
    DurabilityConfig,
    PrefixPartitioner,
    ShardedSemanticsStore,
    ShardLog,
)
from repro.store.wal import scan_wal


def _stay(region, start, end):
    return MSemantics(region_id=region, start_time=start, end_time=end, event=EVENT_STAY)


def _workload(count=40):
    return {
        f"obj-{position}": [
            _stay(position % 5, 10.0 * position, 10.0 * position + 4.0),
            MSemantics(
                region_id=(position * 3) % 7,
                start_time=10.0 * position + 5.0,
                end_time=10.0 * position + 6.0,
                event=EVENT_PASS,
            ),
        ]
        for position in range(count)
    }


def _key(store):
    return {
        object_id: [
            (ms.region_id, ms.start_time, ms.end_time, ms.event, ms.record_count)
            for ms in entries
        ]
        for object_id, entries in store.as_dict().items()
    }


def _durable(root, mode, *, shards=3, snapshot_every=0, fsync=True):
    return ShardedSemanticsStore(
        shards,
        durability=DurabilityConfig(
            root=root, mode=mode, snapshot_every=snapshot_every, fsync=fsync
        ),
    )


# --------------------------------------------------------------------------
# DurabilityConfig
# --------------------------------------------------------------------------
class TestDurabilityConfig:
    def test_invalid_mode_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="mode must be one of"):
            DurabilityConfig(root=tmp_path, mode="eventually")

    def test_negative_snapshot_every_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="snapshot_every"):
            DurabilityConfig(root=tmp_path, snapshot_every=-1)

    def test_dict_round_trip_and_root_override(self, tmp_path):
        config = DurabilityConfig(
            root=tmp_path / "a", mode="sync", snapshot_every=7, fsync=False
        )
        assert DurabilityConfig.from_dict(config.to_dict()) == config
        moved = DurabilityConfig.from_dict(config.to_dict(), root=tmp_path / "b")
        assert moved.root == tmp_path / "b"
        assert moved.mode == "sync"


# --------------------------------------------------------------------------
# Round trips
# --------------------------------------------------------------------------
class TestRoundTrip:
    @pytest.mark.parametrize("mode", ["sync", "async"])
    def test_publish_close_reopen_is_exact(self, tmp_path, mode):
        per_object = _workload()
        store = _durable(tmp_path / "root", mode)
        for object_id, entries in per_object.items():
            store.publish(object_id, entries)
        store.clear("obj-3")
        expected = _key(store)
        store.flush()
        if mode == "async":
            assert store.wal_stats()["pending_records"] == 0
        store.close()

        with ShardedSemanticsStore.open(tmp_path / "root") as recovered:
            assert _key(recovered) == expected
            assert "obj-3" not in recovered.objects()
            assert recovered.last_recovery["replayed_records"] > 0
            assert recovered.last_recovery["truncated_bytes"] == 0

    @pytest.mark.parametrize("mode", ["sync", "async"])
    def test_snapshot_compacts_and_recovery_still_exact(self, tmp_path, mode):
        store = _durable(tmp_path / "root", mode)
        for object_id, entries in _workload().items():
            store.publish(object_id, entries)
        expected = _key(store)
        store.snapshot()
        for sid, log in enumerate(store._logs):
            assert log.snapshot_seq > 0, sid
            assert (tmp_path / "root" / f"shard-{sid:02d}" / "wal.jsonl").stat().st_size == 0
        store.close()
        with ShardedSemanticsStore.open(tmp_path / "root") as recovered:
            assert _key(recovered) == expected
            assert recovered.last_recovery["replayed_records"] == 0  # all in snapshots

    def test_auto_snapshot_triggers_at_threshold(self, tmp_path):
        store = _durable(tmp_path / "root", "sync", snapshot_every=5)
        for object_id, entries in _workload(30).items():
            store.publish(object_id, entries)
        assert any(log.snapshot_seq > 0 for log in store._logs)
        expected = _key(store)
        store.close()
        with ShardedSemanticsStore.open(tmp_path / "root") as recovered:
            assert _key(recovered) == expected

    def test_clear_all_is_durable(self, tmp_path):
        store = _durable(tmp_path / "root", "sync")
        for object_id, entries in _workload(10).items():
            store.publish(object_id, entries)
        store.clear()
        store.close()
        with ShardedSemanticsStore.open(tmp_path / "root") as recovered:
            assert len(recovered) == 0

    def test_publish_after_close_raises(self, tmp_path):
        store = _durable(tmp_path / "root", "async")
        store.close()
        with pytest.raises(RuntimeError, match="closed"):
            store.publish("obj", [_stay(1, 0, 1)])
        store.close()  # idempotent

    def test_queries_match_after_recovery(self, tmp_path):
        per_object = _workload()
        store = _durable(tmp_path / "root", "async")
        for object_id, entries in per_object.items():
            store.publish(object_id, entries)
        expected = TkPRQ(5).evaluate(store)
        store.close()
        with ShardedSemanticsStore.open(tmp_path / "root") as recovered:
            assert TkPRQ(5).evaluate(recovered) == expected
            recovered.attach_index()
            assert TkPRQ(5).evaluate(recovered) == expected


# --------------------------------------------------------------------------
# Crash shapes
# --------------------------------------------------------------------------
class TestTornTail:
    def _seed(self, root):
        store = _durable(root, "sync")
        for object_id, entries in _workload().items():
            store.publish(object_id, entries)
        expected = _key(store)
        store.close()
        return expected

    def _busiest_wal(self, root):
        wals = sorted(root.glob("shard-*/wal.jsonl"), key=lambda p: -p.stat().st_size)
        assert wals and wals[0].stat().st_size > 0
        return wals[0]

    def test_unterminated_final_record_is_dropped(self, tmp_path):
        root = tmp_path / "root"
        expected = self._seed(root)
        wal = self._busiest_wal(root)
        with open(wal, "ab") as handle:
            handle.write(b'{"seq": 9999, "op": "publish", "oid": "torn", "entr')
        with ShardedSemanticsStore.open(root) as recovered:
            assert _key(recovered) == expected
            assert "torn" not in recovered.objects()
            assert recovered.last_recovery["truncated_bytes"] > 0
        # The torn bytes are gone: the next recovery is clean.
        with ShardedSemanticsStore.open(root) as again:
            assert _key(again) == expected
            assert again.last_recovery["truncated_bytes"] == 0

    def test_garbage_line_stops_replay_at_last_good_record(self, tmp_path):
        root = tmp_path / "root"
        expected = self._seed(root)
        wal = self._busiest_wal(root)
        with open(wal, "ab") as handle:
            handle.write(b"not json at all\n")
            handle.write(
                b'{"seq": 10000, "op": "publish", "oid": "after-garbage", "entries": []}\n'
            )
        with ShardedSemanticsStore.open(root) as recovered:
            # Prefix consistency: everything before the corruption survives,
            # nothing after it is applied.
            assert _key(recovered) == expected
            assert "after-garbage" not in recovered.objects()
            assert recovered.last_recovery["truncated_bytes"] > 0

    def test_scan_wal_reports_offsets(self, tmp_path):
        wal = tmp_path / "wal.jsonl"
        good = b'{"seq": 1, "op": "publish", "oid": "a", "entries": []}\n'
        wal.write_bytes(good + b'{"seq": 2, "op"')
        records, good_bytes, torn = scan_wal(wal)
        assert [record["seq"] for record in records] == [1]
        assert good_bytes == len(good)
        assert torn
        assert scan_wal(tmp_path / "missing.jsonl") == ([], 0, False)

    def test_unknown_op_and_bad_seq_stop_the_scan(self, tmp_path):
        wal = tmp_path / "wal.jsonl"
        wal.write_bytes(
            b'{"seq": 1, "op": "publish", "oid": "a", "entries": []}\n'
            b'{"seq": 2, "op": "merge", "oid": "b"}\n'
            b'{"seq": 3, "op": "publish", "oid": "c", "entries": []}\n'
        )
        records, _, torn = scan_wal(wal)
        assert [record["seq"] for record in records] == [1]
        assert torn


class TestSnapshotCrashes:
    def test_leftover_snapshot_temp_file_is_ignored(self, tmp_path):
        root = tmp_path / "root"
        store = _durable(root, "sync")
        for object_id, entries in _workload(12).items():
            store.publish(object_id, entries)
        expected = _key(store)
        store.snapshot()
        store.close()
        # A crash mid-``atomic_write_text`` leaves only the temp file; the
        # real snapshot.json is never torn because the swap is os.replace.
        shard_dir = root / "shard-00"
        (shard_dir / ".snapshot.json.abc123.tmp").write_text('{"half": "writt')
        with ShardedSemanticsStore.open(root) as recovered:
            assert _key(recovered) == expected

    def test_corrupt_snapshot_is_loud_not_silent(self, tmp_path):
        root = tmp_path / "root"
        store = _durable(root, "sync")
        store.publish("obj", [_stay(1, 0, 1)])
        store.snapshot()
        store.close()
        (root / "shard-00" / "snapshot.json").write_text(json.dumps({"format": "bogus/9"}))
        with pytest.raises(ValueError, match="not a shard snapshot"):
            ShardedSemanticsStore.open(root)

    def test_compaction_crash_does_not_double_apply(self, tmp_path):
        """Snapshot written, WAL truncation lost: the stale records carry
        seq <= snapshot_seq and replay must skip every one of them."""
        root = tmp_path / "root"
        store = _durable(root, "sync")
        for object_id, entries in _workload(20).items():
            store.publish(object_id, entries)
        stale = {
            path.parent.name: path.read_bytes()
            for path in root.glob("shard-*/wal.jsonl")
        }
        expected = _key(store)
        store.snapshot()  # writes snapshots AND truncates the WALs
        store.close()
        for shard_name, raw in stale.items():  # undo the truncation half
            (root / shard_name / "wal.jsonl").write_bytes(raw)
        with ShardedSemanticsStore.open(root) as recovered:
            assert _key(recovered) == expected
            assert recovered.last_recovery["replayed_records"] == 0
            # And the sequence stream continues past the stale records, so
            # post-recovery publishes don't collide with skipped seqs.
            recovered.publish("fresh", [_stay(9, 0, 1)])
        with ShardedSemanticsStore.open(root) as again:
            assert "fresh" in again.objects()
            assert _key(again)["fresh"] == [(9, 0.0, 1.0, EVENT_STAY, 1)]

    def test_shardlog_append_after_recovery_continues_sequence(self, tmp_path):
        log = ShardLog(tmp_path / "shard")
        log.append(1, "publish", "a", [{"region_id": 1}])
        log.append(2, "clear", "a")
        log.close()
        reopened = ShardLog(tmp_path / "shard")
        objects, replayed = reopened.recover()
        assert objects == {}
        assert replayed == 2
        assert reopened.appended_seq == 2
        reopened.close()


class TestMetaPinning:
    def test_shard_count_mismatch_rejected(self, tmp_path):
        root = tmp_path / "root"
        _durable(root, "sync", shards=3).close()
        with pytest.raises(ValueError, match="resharding is not supported"):
            _durable(root, "sync", shards=5)

    def test_partitioner_mismatch_rejected(self, tmp_path):
        root = tmp_path / "root"
        _durable(root, "sync", shards=3).close()
        with pytest.raises(ValueError, match="partitioned by"):
            ShardedSemanticsStore(
                3,
                partitioner=PrefixPartitioner(),
                durability=DurabilityConfig(root=root, mode="sync"),
            )

    def test_open_reads_layout_from_meta(self, tmp_path):
        root = tmp_path / "root"
        store = ShardedSemanticsStore(
            5,
            partitioner=PrefixPartitioner(),
            durability=DurabilityConfig(root=root, mode="sync"),
        )
        store.publish("venue-1/a", [_stay(1, 0, 1)])
        store.close()
        with ShardedSemanticsStore.open(root) as recovered:
            assert recovered.shard_count == 5
            assert recovered.partitioner == PrefixPartitioner()

    def test_foreign_meta_file_rejected(self, tmp_path):
        root = tmp_path / "root"
        root.mkdir()
        (root / "meta.json").write_text(json.dumps({"format": "something-else/1"}))
        with pytest.raises(ValueError, match="not a sharded-store meta file"):
            ShardedSemanticsStore.open(root)


# --------------------------------------------------------------------------
# The real thing: SIGKILL mid-stream
# --------------------------------------------------------------------------
_CHILD_SCRIPT = textwrap.dedent(
    """
    import sys

    from repro.mobility.records import EVENT_STAY, MSemantics
    from repro.store import DurabilityConfig, ShardedSemanticsStore

    root = sys.argv[1]
    store = ShardedSemanticsStore(
        3,
        durability=DurabilityConfig(root=root, mode="sync", snapshot_every=16),
    )
    for position in range(100_000):
        store.publish(
            f"obj-{position}",
            [
                MSemantics(
                    region_id=position % 7,
                    start_time=float(position),
                    end_time=float(position) + 1.0,
                    event=EVENT_STAY,
                )
            ],
        )
        # Sync mode: when publish returns the record is durable, so this
        # acknowledgement is a promise recovery must honour.
        print(position, flush=True)
    """
)


class TestSigkillRecovery:
    def test_acknowledged_publishes_survive_sigkill(self, tmp_path):
        root = tmp_path / "root"
        script = tmp_path / "publisher.py"
        script.write_text(_CHILD_SCRIPT)
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        child = subprocess.Popen(
            [sys.executable, str(script), str(root)],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            text=True,
        )
        acknowledged = []
        try:
            for line in child.stdout:
                acknowledged.append(int(line))
                if len(acknowledged) >= 60:
                    break
        finally:
            child.kill()  # SIGKILL: no atexit, no flush, no close()
            child.wait()
        assert len(acknowledged) >= 60, child.stderr.read()

        with ShardedSemanticsStore.open(root) as recovered:
            contents = _key(recovered)
            for position in acknowledged:
                assert contents[f"obj-{position}"] == [
                    (position % 7, float(position), float(position) + 1.0, EVENT_STAY, 1)
                ], position
            # Anything extra must be a valid prefix continuation (records
            # durable but not yet acknowledged through stdout), never junk.
            for object_id in contents:
                assert object_id.startswith("obj-")
            # And the recovered store keeps working.
            recovered.publish("post-crash", [_stay(1, 0.0, 1.0)])
        with ShardedSemanticsStore.open(root) as again:
            assert "post-crash" in again.objects()


# --------------------------------------------------------------------------
# Service round trip through a durable store
# --------------------------------------------------------------------------
class TestServiceDurability:
    def test_save_load_recovers_published_semantics(
        self, fitted_annotator, small_space, small_split, tmp_path
    ):
        store_root = tmp_path / "store"
        service = AnnotationService(
            fitted_annotator,
            store=_durable(store_root, "async", snapshot_every=64),
        )
        _, test = small_split
        sequences = [labeled.sequence for labeled in test.sequences[:4]]
        published = service.annotate_batch(sequences)
        assert any(published)
        expected = service.query_popular_regions(5)
        expected_contents = _key(service.store)
        save_path = tmp_path / "service.json"
        service.save(save_path)
        service.store.close()

        reloaded = AnnotationService.load(save_path, small_space)
        assert isinstance(reloaded.store, ShardedSemanticsStore)
        assert reloaded.store.shard_count == 3
        assert _key(reloaded.store) == expected_contents
        assert reloaded.query_popular_regions(5) == expected
        reloaded.store.close()

    def test_store_root_override_relocates_durability(
        self, fitted_annotator, small_space, tmp_path
    ):
        original_root = tmp_path / "old-machine"
        service = AnnotationService(
            fitted_annotator, store=_durable(original_root, "sync")
        )
        service.store.publish("obj-a", [_stay(2, 0.0, 5.0)])
        save_path = tmp_path / "service.json"
        service.save(save_path)
        service.store.close()
        moved_root = tmp_path / "new-machine"
        shutil.copytree(original_root, moved_root)

        reloaded = AnnotationService.load(
            save_path, small_space, store_root=moved_root
        )
        assert reloaded.store.durability.root == moved_root
        assert reloaded.store.semantics_for("obj-a") == [_stay(2, 0.0, 5.0)]
        reloaded.store.close()

    def test_in_memory_sharded_store_round_trips_layout_only(
        self, fitted_annotator, small_space, tmp_path
    ):
        service = AnnotationService(
            fitted_annotator, store=ShardedSemanticsStore(6), indexed=True
        )
        save_path = tmp_path / "service.json"
        service.save(save_path)
        reloaded = AnnotationService.load(save_path, small_space)
        assert isinstance(reloaded.store, ShardedSemanticsStore)
        assert reloaded.store.shard_count == 6
        assert reloaded.store.durability is None
        assert reloaded.store.is_indexed  # "indexed" flag re-attaches
