"""Tests for repro.indoor.floorplan and the floorplan builders."""

import pytest

from repro.geometry.point import IndoorPoint
from repro.geometry.polygon import Rectangle
from repro.indoor.builders import build_mall_space, build_office_building
from repro.indoor.entities import Door, Partition, SemanticRegion
from repro.indoor.floorplan import IndoorSpace


def _tiny_space():
    """Two rooms joined by a hallway; one room is a semantic region."""
    partitions = [
        Partition(0, Rectangle(0, 0, 10, 10), floor=0, kind="room"),
        Partition(1, Rectangle(10, 0, 20, 10), floor=0, kind="hallway"),
        Partition(2, Rectangle(20, 0, 30, 10), floor=0, kind="room"),
    ]
    doors = [
        Door(0, IndoorPoint(10, 5, 0), (0, 1)),
        Door(1, IndoorPoint(20, 5, 0), (1, 2)),
    ]
    regions = [
        SemanticRegion(0, "left-shop", (0,), floor=0),
        SemanticRegion(1, "right-shop", (2,), floor=0),
    ]
    return IndoorSpace(partitions, doors, regions, name="tiny")


class TestIndoorSpaceValidation:
    def test_duplicate_partition_rejected(self):
        partitions = [
            Partition(0, Rectangle(0, 0, 1, 1)),
            Partition(0, Rectangle(1, 0, 2, 1)),
        ]
        with pytest.raises(ValueError):
            IndoorSpace(partitions, [], [])

    def test_door_referencing_unknown_partition_rejected(self):
        partitions = [Partition(0, Rectangle(0, 0, 1, 1))]
        doors = [Door(0, IndoorPoint(0, 0, 0), (0, 99))]
        with pytest.raises(ValueError):
            IndoorSpace(partitions, doors, [])

    def test_region_referencing_unknown_partition_rejected(self):
        partitions = [Partition(0, Rectangle(0, 0, 1, 1))]
        regions = [SemanticRegion(0, "r", (99,))]
        with pytest.raises(ValueError):
            IndoorSpace(partitions, [], regions)

    def test_overlapping_regions_rejected(self):
        partitions = [Partition(0, Rectangle(0, 0, 1, 1))]
        regions = [
            SemanticRegion(0, "a", (0,)),
            SemanticRegion(1, "b", (0,)),
        ]
        with pytest.raises(ValueError):
            IndoorSpace(partitions, [], regions)

    def test_region_geometry_resolved_from_partitions(self):
        space = _tiny_space()
        region = space.region(0)
        assert region.geometries
        assert region.area == pytest.approx(100.0)


class TestIndoorSpaceLookups:
    @pytest.fixture()
    def space(self):
        return _tiny_space()

    def test_partition_at(self, space):
        assert space.partition_at(IndoorPoint(5, 5, 0)).partition_id == 0
        assert space.partition_at(IndoorPoint(15, 5, 0)).partition_id == 1
        assert space.partition_at(IndoorPoint(5, 5, 3)) is None

    def test_nearest_partition_outside(self, space):
        assert space.nearest_partition(IndoorPoint(-2.0, 5.0, 0)).partition_id == 0

    def test_region_at(self, space):
        assert space.region_at(IndoorPoint(5, 5, 0)).name == "left-shop"
        assert space.region_at(IndoorPoint(15, 5, 0)) is None  # hallway
        assert space.region_at(IndoorPoint(25, 5, 0)).name == "right-shop"

    def test_nearest_region_from_hallway(self, space):
        near_left = space.nearest_region(IndoorPoint(11, 5, 0))
        near_right = space.nearest_region(IndoorPoint(19, 5, 0))
        assert near_left.name == "left-shop"
        assert near_right.name == "right-shop"

    def test_nearest_region_wrong_floor_falls_back(self, space):
        region = space.nearest_region(IndoorPoint(5, 5, 7))
        assert region is not None

    def test_candidate_regions_ordering_and_cap(self, space):
        candidates = space.candidate_regions(IndoorPoint(12, 5, 0), radius=30.0, max_candidates=1)
        assert len(candidates) == 1
        assert candidates[0].name == "left-shop"

    def test_candidate_regions_nonempty_for_false_floor(self, space):
        candidates = space.candidate_regions(IndoorPoint(12, 5, 9), radius=5.0)
        assert candidates

    def test_doors_of_partition(self, space):
        assert {door.door_id for door in space.doors_of_partition(1)} == {0, 1}
        assert space.doors_of_partition(999) == []

    def test_region_of_partition(self, space):
        assert space.region_of_partition(0).name == "left-shop"
        assert space.region_of_partition(1) is None

    def test_summary(self, space):
        summary = space.summary()
        assert summary["partitions"] == 3
        assert summary["doors"] == 2
        assert summary["regions"] == 2
        assert summary["floors"] == 1


class TestBuilders:
    def test_mall_counts(self):
        space = build_mall_space(floors=2, shops_per_side=5)
        summary = space.summary()
        # Per floor: 5 hallway segments + 10 shops = 15 partitions, 10 regions.
        assert summary["partitions"] == 30
        assert summary["regions"] == 20
        assert summary["floors"] == 2
        assert summary["staircases"] == 2  # two per floor gap

    def test_mall_default_matches_paper_scale(self):
        space = build_mall_space()
        assert len(space.regions) == 7 * 2 * 15  # 210 shops, close to the paper's 202

    def test_mall_every_shop_has_a_door(self):
        space = build_mall_space(floors=1, shops_per_side=4)
        for partition in space.partitions:
            if partition.kind == "shop":
                assert space.doors_of_partition(partition.partition_id)

    def test_mall_regions_do_not_share_partitions(self):
        space = build_mall_space(floors=1, shops_per_side=6)
        seen = set()
        for region in space.regions:
            for pid in region.partition_ids:
                assert pid not in seen
                seen.add(pid)

    def test_mall_invalid_arguments(self):
        with pytest.raises(ValueError):
            build_mall_space(floors=0)
        with pytest.raises(ValueError):
            build_mall_space(shops_per_side=0)

    def test_office_building_region_fraction(self):
        space = build_office_building(floors=2, rooms_per_side=6, region_fraction=0.5, seed=1)
        total_rooms = 2 * 6 * 2
        assert 0 < len(space.regions) < total_rooms

    def test_office_building_is_deterministic(self):
        a = build_office_building(floors=2, rooms_per_side=5, seed=3)
        b = build_office_building(floors=2, rooms_per_side=5, seed=3)
        assert [r.name for r in a.regions] == [r.name for r in b.regions]

    def test_office_building_invalid_fraction(self):
        with pytest.raises(ValueError):
            build_office_building(region_fraction=0.0)
