"""Tests for behaviour analytics and cross-validation."""

import pytest

from repro.analytics import (
    ConversionStats,
    conversion_rates,
    cross_validate,
    dwell_time_statistics,
    region_transition_counts,
    top_transitions,
)
from repro.baselines import SMoTAnnotator
from repro.mobility.records import EVENT_PASS, EVENT_STAY, MSemantics


def _stay(region, start, end):
    return MSemantics(region_id=region, start_time=start, end_time=end, event=EVENT_STAY)


def _pass(region, start, end):
    return MSemantics(region_id=region, start_time=start, end_time=end, event=EVENT_PASS)


@pytest.fixture()
def crowd():
    return [
        [_stay(1, 0, 60), _pass(2, 60, 70), _stay(3, 70, 200)],
        [_pass(1, 0, 10), _stay(1, 10, 100), _stay(2, 110, 140)],
        [_stay(3, 0, 30), _pass(2, 30, 40), _stay(1, 40, 90), _stay(3, 100, 160)],
    ]


class TestConversionRates:
    def test_counts_and_rates(self, crowd):
        stats = {entry.region_id: entry for entry in conversion_rates(crowd)}
        assert stats[1].stays == 3 and stats[1].passes == 1
        assert stats[1].conversion_rate == pytest.approx(0.75)
        assert stats[2].stays == 1 and stats[2].passes == 2
        assert stats[2].conversion_rate == pytest.approx(1 / 3)
        assert stats[3].stays == 3 and stats[3].passes == 0
        assert stats[3].conversion_rate == 1.0

    def test_sorted_by_rate(self, crowd):
        rates = [entry.conversion_rate for entry in conversion_rates(crowd)]
        assert rates == sorted(rates, reverse=True)

    def test_min_visits_filter(self, crowd):
        filtered = conversion_rates(crowd, min_visits=4)
        assert {entry.region_id for entry in filtered} == {1}

    def test_empty_input(self):
        assert conversion_rates([]) == []

    def test_conversion_stats_of_unvisited_region(self):
        assert ConversionStats(region_id=9, stays=0, passes=0).conversion_rate == 0.0


class TestDwellTimes:
    def test_statistics(self, crowd):
        stats = dwell_time_statistics(crowd)
        assert stats[1]["visits"] == 3
        assert stats[1]["total"] == pytest.approx(60 + 90 + 50)
        assert stats[1]["mean"] == pytest.approx((60 + 90 + 50) / 3)
        assert stats[1]["max"] == pytest.approx(90)
        assert 2 in stats and stats[2]["visits"] == 1

    def test_passes_do_not_contribute(self):
        stats = dwell_time_statistics([[_pass(5, 0, 100)]])
        assert 5 not in stats


class TestTransitions:
    def test_counts_follow_stay_order(self, crowd):
        counts = region_transition_counts(crowd)
        assert counts[(1, 3)] == 2  # objects 0 and 2
        assert counts[(1, 2)] == 1  # object 1
        assert counts[(3, 1)] == 1  # object 2
        assert (2, 3) not in counts

    def test_consecutive_duplicates_collapsed(self):
        crowd = [[_stay(1, 0, 10), _stay(1, 20, 30), _stay(2, 40, 50)]]
        counts = region_transition_counts(crowd)
        assert counts[(1, 2)] == 1
        assert (1, 1) not in counts

    def test_include_passes(self, crowd):
        counts = region_transition_counts(crowd, stays_only=False)
        assert counts[(1, 2)] >= 1
        assert counts[(2, 3)] >= 1

    def test_top_transitions(self, crowd):
        top = top_transitions(crowd, k=1)
        assert top == [((1, 3), 2)]
        with pytest.raises(ValueError):
            top_transitions(crowd, k=0)


class TestCrossValidation:
    def test_cross_validate_smot(self, small_space, small_dataset):
        result = cross_validate(
            lambda: SMoTAnnotator(small_space),
            small_dataset,
            folds=3,
            seed=5,
        )
        assert result.method == "SMoT"
        assert result.folds == 3
        summary = result.summary()
        assert set(summary) == {"RA", "EA", "CA", "PA", "train_s"}
        for key in ("RA", "EA", "CA", "PA"):
            assert 0.0 <= summary[key] <= 1.0
        assert result.std("region_accuracy") >= 0.0
        assert result.mean("region_accuracy") == pytest.approx(summary["RA"])
