"""Tests of the report-directory integrity checker (tools/check_report.py)."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

import test_report

_SPEC = importlib.util.spec_from_file_location(
    "check_report",
    Path(__file__).resolve().parent.parent / "tools" / "check_report.py",
)
check_report = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(check_report)


@pytest.fixture()
def report_dir(tmp_path):
    """A freshly generated, internally consistent report directory."""
    return test_report._build(tmp_path, "report").out_dir


def test_generated_report_passes(report_dir):
    assert check_report.check_report_dir(report_dir) == []
    assert check_report.main([str(report_dir)]) == 0


def test_missing_data_file_detected(report_dir):
    (report_dir / "data" / "trends.csv").unlink()
    problems = check_report.check_report_dir(report_dir)
    assert any("does not exist" in problem for problem in problems)


def test_renamed_column_detected(report_dir):
    data_path = report_dir / "data" / "trends.csv"
    lines = data_path.read_text().splitlines()
    lines[0] = lines[0].replace("speedup", "velocity")
    data_path.write_text("\n".join(lines) + "\n")
    problems = check_report.check_report_dir(report_dir)
    assert any("encodes field(s)" in problem for problem in problems)
    assert any("usermeta.columns" in problem for problem in problems)


def test_row_count_drift_detected(report_dir):
    data_path = report_dir / "data" / "trends.csv"
    lines = data_path.read_text().splitlines()
    data_path.write_text("\n".join(lines[:-1]) + "\n")  # drop the last row
    problems = check_report.check_report_dir(report_dir)
    assert any("usermeta.rows" in problem for problem in problems)


def test_orphan_spec_detected(report_dir):
    spec_path = report_dir / "specs" / "trends.vl.json"
    orphan = spec_path.with_name("orphan.vl.json")
    orphan.write_bytes(spec_path.read_bytes())
    problems = check_report.check_report_dir(report_dir)
    assert any("does not reference orphan.vl.json" in problem
               for problem in problems)


def test_dangling_markdown_link_detected(report_dir):
    markdown_path = report_dir / "REPORT.md"
    markdown_path.write_text(
        markdown_path.read_text() + "\n[gone](specs/gone.vl.json)\n")
    problems = check_report.check_report_dir(report_dir)
    assert any("dangling link" in problem for problem in problems)


def test_escaping_data_url_detected(report_dir, tmp_path):
    outside = tmp_path / "outside.csv"
    outside.write_text("a\n1\n")
    spec_path = report_dir / "specs" / "trends.vl.json"
    spec = json.loads(spec_path.read_text())
    spec["data"]["url"] = "../../outside.csv"
    spec_path.write_text(json.dumps(spec))
    problems = check_report.check_report_dir(report_dir)
    assert any("escapes the report directory" in problem for problem in problems)


def test_non_rectangular_csv_detected(report_dir):
    data_path = report_dir / "data" / "trends.csv"
    with data_path.open("a") as handle:
        handle.write("stray,cells\n")
    problems = check_report.check_report_dir(report_dir)
    assert any("cells" in problem for problem in problems)


def test_non_vegalite_schema_detected(report_dir):
    spec_path = report_dir / "specs" / "trends.vl.json"
    spec = json.loads(spec_path.read_text())
    spec["$schema"] = "https://example.com/not-a-chart.json"
    spec_path.write_text(json.dumps(spec))
    problems = check_report.check_report_dir(report_dir)
    assert any("not a Vega-Lite schema" in problem for problem in problems)


def test_committed_report_is_consistent():
    committed = Path(__file__).resolve().parent.parent / "docs" / "report"
    if not committed.is_dir():
        pytest.skip("no committed docs/report in this checkout")
    assert check_report.check_report_dir(committed) == []
