"""Tests for repro.mobility.records."""

import pytest

from repro.geometry.point import IndoorPoint
from repro.mobility.records import (
    EVENT_PASS,
    EVENT_STAY,
    LabeledSequence,
    MSemantics,
    PositioningRecord,
    PositioningSequence,
    merge_labels_to_semantics,
)


def _record(x, y, t, floor=0):
    return PositioningRecord(location=IndoorPoint(x, y, floor), timestamp=t)


def _sequence(n=5, dt=10.0):
    return PositioningSequence([_record(float(i), 0.0, i * dt) for i in range(n)])


class TestPositioningRecord:
    def test_accessors(self):
        record = _record(1.0, 2.0, 5.0, floor=3)
        assert (record.x, record.y, record.floor) == (1.0, 2.0, 3)

    def test_planar_distance(self):
        assert _record(0, 0, 0).planar_distance_to(_record(3, 4, 10)) == pytest.approx(5.0)

    def test_speed_to(self):
        assert _record(0, 0, 0).speed_to(_record(10, 0, 5)) == pytest.approx(2.0)

    def test_speed_to_zero_elapsed(self):
        assert _record(0, 0, 5).speed_to(_record(10, 0, 5)) == 0.0


class TestPositioningSequence:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            PositioningSequence([])

    def test_records_sorted_by_time(self):
        records = [_record(0, 0, 20), _record(0, 0, 0), _record(0, 0, 10)]
        sequence = PositioningSequence(records)
        assert [r.timestamp for r in sequence] == [0, 10, 20]

    def test_unsorted_rejected_when_sort_disabled(self):
        records = [_record(0, 0, 20), _record(0, 0, 0)]
        with pytest.raises(ValueError):
            PositioningSequence(records, sort=False)

    def test_duration_and_sampling_interval(self):
        sequence = _sequence(n=5, dt=10.0)
        assert sequence.duration == pytest.approx(40.0)
        assert sequence.average_sampling_interval() == pytest.approx(10.0)

    def test_single_record_statistics(self):
        sequence = PositioningSequence([_record(0, 0, 0)])
        assert sequence.duration == 0.0
        assert sequence.average_sampling_interval() == 0.0

    def test_time_slice(self):
        sequence = _sequence(n=6, dt=10.0)
        sliced = sequence.time_slice(15.0, 35.0)
        assert [r.timestamp for r in sliced] == [20.0, 30.0]

    def test_time_slice_empty_raises(self):
        with pytest.raises(ValueError):
            _sequence().time_slice(1000.0, 2000.0)

    def test_indexing(self):
        sequence = _sequence()
        assert sequence[0].timestamp == 0.0
        assert len(sequence) == 5


class TestMSemantics:
    def test_invalid_event_rejected(self):
        with pytest.raises(ValueError):
            MSemantics(region_id=1, start_time=0, end_time=1, event="teleport")

    def test_reversed_period_rejected(self):
        with pytest.raises(ValueError):
            MSemantics(region_id=1, start_time=10, end_time=5, event=EVENT_STAY)

    def test_duration_and_covers(self):
        ms = MSemantics(region_id=1, start_time=10, end_time=30, event=EVENT_STAY)
        assert ms.duration == 20
        assert ms.covers_time(10) and ms.covers_time(30)
        assert not ms.covers_time(31)

    def test_overlaps(self):
        a = MSemantics(1, 0, 10, EVENT_STAY)
        b = MSemantics(1, 5, 15, EVENT_PASS)
        c = MSemantics(1, 10, 20, EVENT_PASS)
        assert a.overlaps(b)
        assert not a.overlaps(c)  # touching endpoints do not overlap


class TestLabeledSequence:
    def test_length_mismatch_rejected(self):
        sequence = _sequence(n=3)
        with pytest.raises(ValueError):
            LabeledSequence(sequence, [1, 2], [EVENT_STAY] * 3)

    def test_invalid_event_rejected(self):
        sequence = _sequence(n=2)
        with pytest.raises(ValueError):
            LabeledSequence(sequence, [1, 2], ["stay", "hover"])

    def test_iter_labeled_records(self):
        sequence = _sequence(n=3)
        labeled = LabeledSequence(sequence, [1, 1, 2], [EVENT_STAY, EVENT_STAY, EVENT_PASS])
        rows = list(labeled.iter_labeled_records())
        assert len(rows) == 3
        assert rows[0][1] == 1 and rows[2][2] == EVENT_PASS

    def test_stay_fraction(self):
        sequence = _sequence(n=4)
        labeled = LabeledSequence(
            sequence, [1] * 4, [EVENT_STAY, EVENT_PASS, EVENT_STAY, EVENT_STAY]
        )
        assert labeled.stay_fraction() == pytest.approx(0.75)

    def test_distinct_regions_preserves_order(self):
        sequence = _sequence(n=4)
        labeled = LabeledSequence(sequence, [3, 1, 3, 2], [EVENT_PASS] * 4)
        assert labeled.distinct_regions() == [3, 1, 2]


class TestLabelAndMerge:
    def test_merges_runs_with_equal_region_and_event(self):
        sequence = _sequence(n=6, dt=10.0)
        labeled = LabeledSequence(
            sequence,
            region_labels=[1, 1, 1, 2, 2, 1],
            event_labels=[EVENT_STAY, EVENT_STAY, EVENT_STAY, EVENT_PASS, EVENT_PASS, EVENT_PASS],
        )
        semantics = merge_labels_to_semantics(labeled)
        assert len(semantics) == 3
        assert semantics[0].region_id == 1 and semantics[0].event == EVENT_STAY
        assert semantics[0].record_count == 3
        assert semantics[0].start_time == 0.0 and semantics[0].end_time == 20.0
        assert semantics[1].region_id == 2
        assert semantics[2].record_count == 1

    def test_event_change_splits_even_with_same_region(self):
        sequence = _sequence(n=4)
        labeled = LabeledSequence(
            sequence,
            region_labels=[1, 1, 1, 1],
            event_labels=[EVENT_PASS, EVENT_STAY, EVENT_STAY, EVENT_PASS],
        )
        semantics = merge_labels_to_semantics(labeled)
        assert [ms.event for ms in semantics] == [EVENT_PASS, EVENT_STAY, EVENT_PASS]

    def test_merged_periods_are_ordered_and_disjoint(self):
        sequence = _sequence(n=10)
        labeled = LabeledSequence(
            sequence,
            region_labels=[1, 1, 2, 2, 2, 3, 3, 1, 1, 1],
            event_labels=[EVENT_STAY] * 5 + [EVENT_PASS] * 5,
        )
        semantics = merge_labels_to_semantics(labeled)
        for earlier, later in zip(semantics, semantics[1:]):
            assert earlier.end_time <= later.start_time

    def test_single_record_sequence(self):
        sequence = PositioningSequence([_record(0, 0, 0)])
        labeled = LabeledSequence(sequence, [7], [EVENT_STAY])
        semantics = merge_labels_to_semantics(labeled)
        assert len(semantics) == 1
        assert semantics[0].duration == 0.0
