"""The HTTP front door: equivalence with the in-process service + robustness.

The core contract: every byte a client gets over ``/v1/...`` is exactly what
the same call would have produced in-process (through the shared wire
helpers), and malformed or oversized traffic gets a structured JSON error
without taking the server down.
"""

from __future__ import annotations

import json
import socket
import urllib.error
import urllib.request
from urllib.parse import quote

import pytest

from repro.net.server import ServerThread
from repro.net.wire import (
    pairs_to_wire,
    record_to_wire,
    regions_to_wire,
    semantics_to_wire,
    sequence_to_wire,
)
from repro.service.service import AnnotationService


def _request(server, method, path, body=None, raw: bytes = None):
    """One JSON request against a ServerThread; returns (status, payload)."""
    data = raw if raw is not None else (
        json.dumps(body).encode("utf-8") if body is not None else None
    )
    request = urllib.request.Request(
        f"{server.address}{path}",
        data=data,
        method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        payload = error.read()
        return error.code, json.loads(payload) if payload else {}


@pytest.fixture(scope="module")
def served(fitted_annotator):
    """A running server plus its service, shared by the module's tests."""
    service = AnnotationService(fitted_annotator)
    with ServerThread(service) as server:
        yield server, service


def test_healthz_reports_liveness(served):
    server, service = served
    status, payload = _request(server, "GET", "/healthz")
    assert status == 200
    assert payload["status"] == "ok"
    assert payload["live_sessions"] == len(service.live_sessions())
    assert payload["uptime_seconds"] >= 0


def test_annotate_matches_inprocess_bitwise(served, fitted_annotator, small_split):
    server, _ = served
    _, test = small_split
    body = {
        "sequences": [
            {**sequence_to_wire(labeled.sequence),
             "object_id": f"{labeled.object_id}/eq-batch"}
            for labeled in test.sequences
        ]
    }
    status, payload = _request(server, "POST", "/v1/annotate", body)
    assert status == 200

    # The in-process reference: a *separate* service around the same
    # annotator, serialised through the same persistence shapes.
    reference = AnnotationService(fitted_annotator)
    sequences = [labeled.sequence for labeled in test.sequences]
    expected = [
        semantics_to_wire(entries)
        for entries in reference.annotate_batch(sequences)
    ]
    # JSON round-trip on our side too, so float representation is identical.
    assert payload["semantics"] == json.loads(json.dumps(expected))


def test_stream_lifecycle_matches_inprocess(served, fitted_annotator, small_split):
    server, service = served
    _, test = small_split
    labeled = test.sequences[0]
    object_id = f"{labeled.object_id}/eq-stream"

    status, payload = _request(
        server, "POST", "/v1/sessions", {"object_id": object_id}
    )
    assert status == 201
    assert payload["object_id"] == object_id
    assert payload["window"] == AnnotationService.DEFAULT_WINDOW

    records = [record_to_wire(record) for record in labeled.sequence]
    finalized = []
    chunk = 16
    for start in range(0, len(records), chunk):
        status, payload = _request(
            server,
            "POST",
            f"/v1/sessions/{quote(object_id, safe='')}/records",
            {"records": records[start:start + chunk]},
        )
        assert status == 200
        finalized.extend(payload["finalized"])
    status, payload = _request(
        server, "POST", f"/v1/sessions/{quote(object_id, safe='')}/finish", {}
    )
    assert status == 200
    finalized.extend(payload["flushed"])
    assert payload["record_count"] == len(records)

    # In-process reference stream over a separate service.
    reference = AnnotationService(fitted_annotator)
    session = reference.session(labeled.object_id)
    expected = list(session.extend(list(labeled.sequence)))
    expected.extend(session.finish())
    assert finalized == json.loads(json.dumps(semantics_to_wire(expected)))

    # The published store content matches too, and the session evicted.
    assert service.store.semantics_for(object_id) == (
        reference.store.semantics_for(labeled.object_id)
    )
    assert service.get_session(object_id) is None


def test_query_endpoints_match_inprocess(served):
    server, service = served
    for kind, evaluate, encode in (
        ("popular-regions", service.query_popular_regions, regions_to_wire),
        ("frequent-pairs", service.query_frequent_pairs, pairs_to_wire),
    ):
        status, payload = _request(server, "GET", f"/v1/queries/{kind}?k=5")
        assert status == 200
        assert payload["k"] == 5
        assert payload["results"] == encode(evaluate(5))


def test_query_with_bounds_and_regions(served):
    server, service = served
    status, payload = _request(
        server, "GET",
        "/v1/queries/popular-regions?k=3&start=0&end=1e9&regions=1,2,3",
    )
    assert status == 200
    expected = service.query_popular_regions(
        3, query_regions={1, 2, 3}, start=0.0, end=1e9
    )
    assert payload["results"] == regions_to_wire(expected)


@pytest.mark.parametrize(
    "path",
    [
        "/v1/queries/popular-regions",  # k missing
        "/v1/queries/popular-regions?k=0",
        "/v1/queries/popular-regions?k=five",
        "/v1/queries/frequent-pairs?k=2&start=noon",
        "/v1/queries/frequent-pairs?k=2&regions=",
    ],
)
def test_bad_query_params_get_structured_400(served, path):
    server, _ = served
    status, payload = _request(server, "GET", path)
    assert status == 400
    assert payload["error"]["code"] == "bad_query"
    assert payload["error"]["status"] == 400


def test_unknown_session_is_404(served):
    server, _ = served
    status, payload = _request(
        server, "POST", "/v1/sessions/nobody/records",
        {"records": [{"x": 1.0, "y": 1.0, "floor": 0, "t": 1.0}]},
    )
    assert status == 404
    assert payload["error"]["code"] == "unknown_session"


def test_duplicate_session_is_409(served):
    server, _ = served
    body = {"object_id": "dup-session"}
    assert _request(server, "POST", "/v1/sessions", body)[0] == 201
    status, payload = _request(server, "POST", "/v1/sessions", body)
    assert status == 409
    assert payload["error"]["code"] == "session_exists"


def test_out_of_order_records_are_409_and_session_survives(served):
    server, _ = served
    assert _request(
        server, "POST", "/v1/sessions", {"object_id": "ooo-session"}
    )[0] == 201
    ok = {"records": [{"x": 1.0, "y": 1.0, "floor": 0, "t": 100.0}]}
    assert _request(
        server, "POST", "/v1/sessions/ooo-session/records", ok
    )[0] == 200
    stale = {"records": [{"x": 1.0, "y": 1.0, "floor": 0, "t": 1.0}]}
    status, payload = _request(
        server, "POST", "/v1/sessions/ooo-session/records", stale
    )
    assert status == 409
    assert payload["error"]["code"] == "bad_stream"
    # The session is still live and accepts in-order records.
    later = {"records": [{"x": 2.0, "y": 1.0, "floor": 0, "t": 101.0}]}
    assert _request(
        server, "POST", "/v1/sessions/ooo-session/records", later
    )[0] == 200


def test_malformed_json_is_400(served):
    server, _ = served
    status, payload = _request(
        server, "POST", "/v1/annotate", raw=b"{not json"
    )
    assert status == 400
    assert payload["error"]["code"] == "bad_json"


@pytest.mark.parametrize(
    "body,code",
    [
        ({}, "bad_annotate"),
        ({"sequences": []}, "bad_annotate"),
        ({"sequences": [{"records": []}]}, "bad_type"),
        ({"sequences": [{"records": [{"x": 1.0, "y": 2.0}]}]}, "missing_field"),
        ({"sequences": [{"records": [
            {"x": "a", "y": 2.0, "floor": 0, "t": 1.0}]}]}, "bad_type"),
    ],
)
def test_bad_annotate_payloads_get_structured_400(served, body, code):
    server, _ = served
    status, payload = _request(server, "POST", "/v1/annotate", body)
    assert status == 400
    assert payload["error"]["code"] == code


def test_unknown_endpoint_is_404_and_wrong_method_is_405(served):
    server, _ = served
    assert _request(server, "GET", "/v1/nope")[0] == 404
    status, payload = _request(server, "GET", "/v1/annotate")
    assert status == 405
    assert payload["error"]["code"] == "method_not_allowed"
    assert _request(server, "POST", "/healthz", {})[0] == 405


def test_oversized_body_is_413_and_server_survives(fitted_annotator):
    service = AnnotationService(fitted_annotator)
    with ServerThread(service, max_body=2048) as server:
        status, payload = _request(
            server, "POST", "/v1/annotate", raw=b"x" * 4096
        )
        assert status == 413
        assert payload["error"]["code"] == "payload_too_large"
        assert _request(server, "GET", "/healthz")[0] == 200


def test_garbage_request_line_does_not_kill_server(served):
    server, _ = served
    with socket.create_connection((server.host, server.port), timeout=10) as sock:
        sock.sendall(b"\x00\xff garbage\r\n\r\n")
        sock.settimeout(10)
        response = sock.recv(4096)
    assert b"400" in response.split(b"\r\n", 1)[0]
    assert _request(server, "GET", "/healthz")[0] == 200


def test_metrics_counts_and_histograms(served):
    server, _ = served
    before = _request(server, "GET", "/metrics")[1]
    _request(server, "GET", "/v1/queries/popular-regions?k=1")
    _request(server, "GET", "/v1/queries/popular-regions?k=0")  # an error
    status, after = _request(server, "GET", "/metrics")
    assert status == 200
    assert after["buckets_ms"] == list(server.server.metrics.BUCKETS_MS)
    counters = after["requests"]["queries.popular-regions"]
    previous = before["requests"].get(
        "queries.popular-regions", {"count": 0, "errors": 0}
    )
    assert counters["count"] == previous["count"] + 2
    assert counters["errors"] == previous["errors"] + 1
    histogram = after["latency_ms"]["queries.popular-regions"]
    assert sum(histogram["counts"]) == counters["count"]
    assert "live_sessions" in after and "published_objects" in after


def _read_one_response(sock) -> bytes:
    """Read exactly one content-length-framed response from a socket."""
    buffer = b""
    while b"\r\n\r\n" not in buffer:
        chunk = sock.recv(4096)
        assert chunk, "server closed the connection before the headers ended"
        buffer += chunk
    head, body = buffer.split(b"\r\n\r\n", 1)
    length = 0
    for line in head.split(b"\r\n")[1:]:
        name, _, value = line.partition(b":")
        if name.strip().lower() == b"content-length":
            length = int(value.strip())
    while len(body) < length:
        chunk = sock.recv(4096)
        assert chunk, "server closed the connection mid-body"
        body += chunk
    return head + b"\r\n\r\n" + body


def test_keep_alive_serves_multiple_requests_per_connection(served):
    server, _ = served
    probe = b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n"
    with socket.create_connection((server.host, server.port), timeout=10) as sock:
        sock.settimeout(10)
        for _ in range(2):
            sock.sendall(probe)
            response = _read_one_response(sock)
            assert response.startswith(b"HTTP/1.1 200")


def test_graceful_shutdown_drains_open_sessions(fitted_annotator, small_split):
    _, test = small_split
    labeled = test.sequences[0]
    service = AnnotationService(fitted_annotator)
    server = ServerThread(service).start()
    try:
        assert _request(
            server, "POST", "/v1/sessions", {"object_id": "drain-me"}
        )[0] == 201
        records = [record_to_wire(record) for record in labeled.sequence]
        assert _request(
            server, "POST", "/v1/sessions/drain-me/records",
            {"records": records},
        )[0] == 200
    finally:
        server.stop()
    # The drain finished the session and published its tail.
    assert service.live_sessions() == []
    reference = AnnotationService(fitted_annotator)
    session = reference.session(labeled.object_id)
    session.extend(list(labeled.sequence))
    session.finish()
    assert service.store.semantics_for("drain-me") == (
        reference.store.semantics_for(labeled.object_id)
    )
