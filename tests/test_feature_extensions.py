"""Tests for the optional feature extensions described in the paper.

Section III-B sketches three optional refinements without evaluating them:

* weighting ``fsm`` by the normalised historical region frequency
  (after Equation 3);
* a time-decaying multiplier on the region-distance term in ``fst``
  (after Equation 4);
* the same time-decay applied to ``fsc`` (after Equation 5).

All three are implemented behind configuration switches; these tests pin the
semantics of each extension.
"""


import pytest

from repro.core.config import C2MNConfig
from repro.crf.features import FeatureExtractor
from repro.geometry.point import IndoorPoint
from repro.mobility.records import PositioningRecord, PositioningSequence


def _two_record_sequence(gap_seconds, step=2.0):
    records = [
        PositioningRecord(IndoorPoint(4.0, 6.0, 0), 0.0),
        PositioningRecord(IndoorPoint(4.0 + step, 6.0, 0), gap_seconds),
    ]
    return PositioningSequence(records)


class TestRegionPriors:
    def test_priors_scale_fsm(self, small_space, small_oracle, small_dataset):
        labeled = small_dataset.sequences[0]
        config = C2MNConfig.fast()
        plain = FeatureExtractor(small_space, config, oracle=small_oracle)
        boosted_priors = {region.region_id: 1.0 for region in small_space.regions}
        halved_priors = {region.region_id: 0.5 for region in small_space.regions}
        full = FeatureExtractor(
            small_space, config, oracle=small_oracle, region_priors=boosted_priors
        )
        half = FeatureExtractor(
            small_space, config, oracle=small_oracle, region_priors=halved_priors
        )
        data_plain = plain.prepare(labeled.sequence)
        data_full = full.prepare(labeled.sequence)
        data_half = half.prepare(labeled.sequence)
        region = data_plain.candidates[0][0]
        base = plain.spatial_matching(data_plain, 0, region)
        assert full.spatial_matching(data_full, 0, region) == pytest.approx(base)
        assert half.spatial_matching(data_half, 0, region) == pytest.approx(base * 0.5)

    def test_unknown_region_prior_gives_zero(self, small_space, small_oracle, small_dataset):
        labeled = small_dataset.sequences[0]
        config = C2MNConfig.fast()
        extractor = FeatureExtractor(
            small_space, config, oracle=small_oracle, region_priors={-42: 1.0}
        )
        data = extractor.prepare(labeled.sequence)
        region = data.candidates[0][0]
        assert extractor.spatial_matching(data, 0, region) == 0.0


class TestTimeDecay:
    def test_gamma_time_validated(self):
        with pytest.raises(ValueError):
            C2MNConfig(gamma_time=0.0)
        with pytest.raises(ValueError):
            C2MNConfig(gamma_time=1.0)

    def test_disabled_by_default(self, small_space, small_oracle):
        config = C2MNConfig.fast()
        assert not config.use_time_decay
        extractor = FeatureExtractor(small_space, config, oracle=small_oracle)
        regions = {region.name: region.region_id for region in small_space.regions}
        a, b = regions["F0-S00"], regions["F0-N03"]
        assert extractor.space_transition(a, b, elapsed=1000.0) == pytest.approx(
            extractor.space_transition(a, b)
        )

    def test_fst_decay_softens_distant_transitions(self, small_space, small_oracle):
        config = C2MNConfig.fast(use_time_decay=True, gamma_time=0.02)
        extractor = FeatureExtractor(small_space, config, oracle=small_oracle)
        regions = {region.name: region.region_id for region in small_space.regions}
        a, b = regions["F0-S00"], regions["F0-N03"]
        quick = extractor.space_transition(a, b, elapsed=1.0)
        slow = extractor.space_transition(a, b, elapsed=300.0)
        # With a long gap the walking distance matters less, so the
        # transition becomes *more* plausible (value closer to 1).
        assert slow > quick
        assert extractor.space_transition(a, a, elapsed=300.0) == pytest.approx(1.0)

    def test_fsc_decay_softens_inconsistency(self, small_space, small_oracle):
        base_config = C2MNConfig.fast()
        decayed_config = C2MNConfig.fast(use_time_decay=True, gamma_time=0.02)
        base = FeatureExtractor(small_space, base_config, oracle=small_oracle)
        decayed = FeatureExtractor(small_space, decayed_config, oracle=small_oracle)
        regions = {region.name: region.region_id for region in small_space.regions}
        a, b = regions["F0-S00"], regions["F0-N03"]
        # Long gap between two nearby estimates while hypothesising a distant
        # region pair: without decay this is heavily penalised, with decay the
        # penalty shrinks.
        data_base = base.prepare(_two_record_sequence(gap_seconds=300.0))
        data_decayed = decayed.prepare(_two_record_sequence(gap_seconds=300.0))
        assert decayed.spatial_consistency(data_decayed, 0, a, b) >= base.spatial_consistency(
            data_base, 0, a, b
        )

    def test_annotator_trains_with_time_decay(self, small_space, small_split):
        from repro.core import C2MNAnnotator

        train, test = small_split
        config = C2MNConfig.fast(max_iterations=2, mcmc_samples=4, use_time_decay=True)
        annotator = C2MNAnnotator(small_space, config=config)
        annotator.fit(train.sequences[:2])
        regions, events = annotator.predict_labels(test.sequences[0].sequence)
        assert len(regions) == len(test.sequences[0].sequence)
