"""Tests for repro.geometry.circle."""

import math

import pytest

from repro.geometry.circle import (
    Circle,
    circle_polygon_intersection_area,
    circle_rectangle_intersection_area,
    overlap_fraction,
)
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon, Rectangle


class TestCircle:
    def test_radius_must_be_positive(self):
        with pytest.raises(ValueError):
            Circle(Point(0, 0), 0.0)

    def test_area(self):
        assert Circle(Point(0, 0), 2.0).area == pytest.approx(4 * math.pi)

    def test_contains_point(self):
        circle = Circle(Point(0, 0), 1.0)
        assert circle.contains_point(Point(0.5, 0.5))
        assert circle.contains_point(Point(1.0, 0.0))
        assert not circle.contains_point(Point(1.1, 0.0))

    def test_bounding_box(self):
        bbox = Circle(Point(1.0, 2.0), 3.0).bounding_box
        assert (bbox.min_x, bbox.min_y, bbox.max_x, bbox.max_y) == (-2.0, -1.0, 4.0, 5.0)

    def test_intersects_bbox(self):
        circle = Circle(Point(0.0, 0.0), 1.0)
        assert circle.intersects_bbox(Rectangle(0.5, 0.5, 2.0, 2.0).bounding_box)
        assert not circle.intersects_bbox(Rectangle(5.0, 5.0, 6.0, 6.0).bounding_box)


class TestCircleRectangleIntersection:
    def test_rectangle_fully_inside_circle(self):
        circle = Circle(Point(0, 0), 10.0)
        rect = Rectangle(-1.0, -1.0, 1.0, 1.0)
        assert circle_rectangle_intersection_area(circle, rect) == pytest.approx(4.0)

    def test_circle_fully_inside_rectangle(self):
        circle = Circle(Point(0, 0), 1.0)
        rect = Rectangle(-10.0, -10.0, 10.0, 10.0)
        assert circle_rectangle_intersection_area(circle, rect) == pytest.approx(circle.area)

    def test_disjoint(self):
        circle = Circle(Point(0, 0), 1.0)
        rect = Rectangle(5.0, 5.0, 6.0, 6.0)
        assert circle_rectangle_intersection_area(circle, rect) == pytest.approx(0.0, abs=1e-9)

    def test_half_overlap(self):
        # Rectangle covering exactly the right half-plane portion of the circle.
        circle = Circle(Point(0, 0), 2.0)
        rect = Rectangle(0.0, -10.0, 10.0, 10.0)
        assert circle_rectangle_intersection_area(circle, rect) == pytest.approx(
            circle.area / 2.0, rel=1e-6
        )

    def test_quarter_overlap(self):
        circle = Circle(Point(0, 0), 2.0)
        rect = Rectangle(0.0, 0.0, 10.0, 10.0)
        assert circle_rectangle_intersection_area(circle, rect) == pytest.approx(
            circle.area / 4.0, rel=1e-6
        )


class TestCirclePolygonIntersection:
    def test_rectangle_uses_exact_formula(self):
        circle = Circle(Point(0, 0), 2.0)
        rect = Rectangle(0.0, 0.0, 10.0, 10.0)
        assert circle_polygon_intersection_area(circle, rect) == pytest.approx(
            circle.area / 4.0, rel=1e-6
        )

    def test_general_polygon_grid_approximation(self):
        circle = Circle(Point(0, 0), 2.0)
        # Same quarter-plane region expressed as a generic polygon.
        poly = Polygon([Point(0, 0), Point(10, 0), Point(10, 10), Point(0, 10)])
        approx = circle_polygon_intersection_area(circle, poly, resolution=64)
        assert approx == pytest.approx(circle.area / 4.0, rel=0.05)

    def test_disjoint_polygon(self):
        circle = Circle(Point(0, 0), 1.0)
        poly = Polygon([Point(10, 10), Point(11, 10), Point(11, 11)])
        assert circle_polygon_intersection_area(circle, poly) == 0.0


class TestOverlapFraction:
    def test_bounds(self):
        circle = Circle(Point(0, 0), 1.0)
        inside = Rectangle(-10.0, -10.0, 10.0, 10.0)
        outside = Rectangle(5.0, 5.0, 6.0, 6.0)
        assert overlap_fraction(circle, inside) == pytest.approx(1.0)
        assert overlap_fraction(circle, outside) == pytest.approx(0.0, abs=1e-9)

    def test_monotone_in_overlap(self):
        circle = Circle(Point(0, 0), 2.0)
        half = Rectangle(0.0, -10.0, 10.0, 10.0)
        quarter = Rectangle(0.0, 0.0, 10.0, 10.0)
        assert overlap_fraction(circle, half) > overlap_fraction(circle, quarter)
