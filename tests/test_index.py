"""Tests of the semantic-region index: engine, planner, store/service wiring.

The central contract — indexed TkPRQ/TkFRPQ answers are bit-identical to
the linear scan — is asserted over the whole scenario catalogue and over
hand-built edge cases (empty inputs, open-ended intervals, region filters,
ties at rank k, degenerate intervals), plus under concurrent publishing.
"""

from __future__ import annotations

import threading

import pytest

from repro.analytics.behaviour import (
    conversion_rates,
    region_transition_counts,
    top_transitions,
)
from repro.evaluation.harness import ground_truth_semantics
from repro.index import QueryPlan, SemanticsIndex, plan_query, resolve_index
from repro.mobility.records import EVENT_PASS, EVENT_STAY, MSemantics
from repro.queries import TkFRPQ, TkPRQ
from repro.scenarios import materialize, scenario_names
from repro.service.store import SemanticsStore


def _stay(region, start, end):
    return MSemantics(region_id=region, start_time=start, end_time=end, event=EVENT_STAY)


def _pass(region, start, end):
    return MSemantics(region_id=region, start_time=start, end_time=end, event=EVENT_PASS)


@pytest.fixture()
def objects():
    """Three objects with known stay patterns (mirrors test_queries.py)."""
    return [
        [_stay(1, 0, 100), _pass(2, 100, 110), _stay(3, 110, 200)],
        [_stay(1, 0, 50), _stay(2, 60, 120)],
        [_stay(1, 300, 400), _stay(3, 420, 500), _stay(2, 510, 600)],
    ]


#: Query shapes exercising every planner-relevant case.
QUERY_SHAPES = [
    dict(),
    dict(start=0.0, end=150.0),
    dict(start=None, end=150.0),
    dict(start=150.0, end=None),
    dict(query_regions={1, 3}),
    dict(start=50.0, end=450.0, query_regions={1, 2}),
    dict(query_regions={99}),
    dict(start=1e9, end=2e9),
]


def _assert_equivalent(semantics_per_object, index, ks=(1, 2, 3, 10)):
    for shape in QUERY_SHAPES:
        for k in ks:
            prq = TkPRQ(k, **shape)
            frpq = TkFRPQ(k, **shape)
            assert prq.evaluate(index) == prq.evaluate(semantics_per_object), shape
            assert frpq.evaluate(index) == frpq.evaluate(semantics_per_object), shape


# --------------------------------------------------------------------------
# Engine
# --------------------------------------------------------------------------
class TestSemanticsIndex:
    def test_equivalence_on_handbuilt_objects(self, objects):
        index = SemanticsIndex.from_semantics(objects)
        _assert_equivalent(objects, index)

    def test_empty_index(self):
        index = SemanticsIndex()
        assert TkPRQ(3).evaluate(index) == []
        assert TkFRPQ(3).evaluate(index) == []
        assert index.stats() == {"regions": 0, "objects": 0, "postings": 0, "entries": 0}

    def test_stats_count_stays_and_passes(self, objects):
        index = SemanticsIndex.from_semantics(objects)
        stats = index.stats()
        assert stats["entries"] == 8
        assert stats["postings"] == 7  # the pass entry does not become a posting
        assert stats["regions"] == 3
        assert stats["objects"] == 3

    def test_incremental_add_matches_bulk_build(self, objects):
        bulk = SemanticsIndex.from_semantics(objects)
        incremental = SemanticsIndex()
        for position, entries in enumerate(objects):
            # Split each object's publish into two instalments.
            incremental.add(f"object-{position}", entries[:1])
            incremental.add(f"object-{position}", entries[1:])
        for shape in QUERY_SHAPES:
            prq = TkPRQ(2, **shape)
            assert prq.evaluate(incremental) == prq.evaluate(bulk)
            frpq = TkFRPQ(2, **shape)
            assert frpq.evaluate(incremental) == frpq.evaluate(bulk)

    def test_queries_interleaved_with_adds_invalidate_caches(self, objects):
        index = SemanticsIndex()
        rolling = []
        for position, entries in enumerate(objects):
            index.add(f"object-{position}", entries)
            rolling.append(entries)
            _assert_equivalent(rolling, index, ks=(2,))

    def test_ties_at_rank_k_break_identically(self):
        # Four regions with visit counts 2, 2, 2, 1: k=2 must pick the two
        # smallest region ids among the tied three, in both paths.
        objects = [
            [_stay(7, 0, 10), _stay(5, 20, 30), _stay(3, 40, 50)],
            [_stay(7, 0, 10), _stay(5, 20, 30), _stay(3, 40, 50), _stay(9, 60, 70)],
        ]
        index = SemanticsIndex.from_semantics(objects)
        expected = [(3, 2), (5, 2)]
        assert TkPRQ(2).evaluate(objects) == expected
        assert TkPRQ(2).evaluate(index) == expected
        # Pair ties: all three pairs among {3,5,7} have count 2.
        assert TkFRPQ(2).evaluate(index) == TkFRPQ(2).evaluate(objects) == [
            ((3, 5), 2),
            ((3, 7), 2),
        ]

    def test_open_ended_intervals(self, objects):
        index = SemanticsIndex.from_semantics(objects)
        # Everything ending at/after 510 — only object 2's last stay.
        late = TkPRQ(5, start=510.0).evaluate(index)
        assert late == TkPRQ(5, start=510.0).evaluate(objects)
        assert dict(late)[2] == 1
        early = TkPRQ(5, end=50.0).evaluate(index)
        assert early == TkPRQ(5, end=50.0).evaluate(objects)
        assert dict(early) == {1: 2}

    def test_interval_endpoints_are_inclusive(self):
        objects = [[_stay(1, 10.0, 20.0)]]
        index = SemanticsIndex.from_semantics(objects)
        for start, end, hit in [
            (20.0, 30.0, True),   # touches the stay's end
            (0.0, 10.0, True),    # touches the stay's start
            (20.0001, 30.0, False),
            (0.0, 9.9999, False),
        ]:
            expected = [(1, 1)] if hit else []
            assert TkPRQ(1, start=start, end=end).evaluate(index) == expected
            assert TkPRQ(1, start=start, end=end).evaluate(objects) == expected

    def test_count_helpers_match_scan(self, objects):
        from repro.queries import count_region_pairs, count_region_visits

        index = SemanticsIndex.from_semantics(objects)
        assert index.count_visits() == count_region_visits(objects)
        assert index.count_pairs() == count_region_pairs(objects)
        assert index.count_visits(start=0, end=150) == count_region_visits(
            objects, start=0, end=150
        )

    def test_count_pairs_returns_a_copy(self, objects):
        index = SemanticsIndex.from_semantics(objects)
        counts = index.count_pairs()
        counts[(1, 3)] = 999
        assert index.count_pairs()[(1, 3)] != 999

    def test_invalid_k_rejected(self, objects):
        index = SemanticsIndex.from_semantics(objects)
        with pytest.raises(ValueError):
            index.top_k_regions(0)
        with pytest.raises(ValueError):
            index.top_k_pairs(0)


# --------------------------------------------------------------------------
# Planner
# --------------------------------------------------------------------------
class TestPlanner:
    def test_plain_inputs_scan(self, objects):
        plan = plan_query(objects)
        assert isinstance(plan, QueryPlan)
        assert not plan.use_index
        assert resolve_index(objects) is None
        assert resolve_index({"a": objects[0]}) is None

    def test_index_inputs_use_index(self, objects):
        index = SemanticsIndex.from_semantics(objects)
        plan = plan_query(index, 0.0, 10.0)
        assert plan.use_index and plan.index is index

    def test_degenerate_interval_falls_back_to_scan(self, objects):
        store = SemanticsStore()
        for position, entries in enumerate(objects):
            store.publish(f"object-{position}", entries)
        store.attach_index()
        query = TkPRQ(3, start=10.0, end=5.0)
        assert not query.explain(store).use_index
        assert query.evaluate(store) == query.evaluate(objects)

    def test_degenerate_interval_on_bare_index_filters_directly(self, objects):
        # A bare index cannot be scanned; the planner keeps it on the index,
        # whose direct filter must still match the scan over the raw data.
        index = SemanticsIndex.from_semantics(objects)
        plan = plan_query(index, 10.0, 5.0)
        assert plan.use_index and "degenerate" in plan.reason
        # Inverted window [60, 40]: the scan keeps a stay iff start_time <= 40
        # and end_time >= 60, i.e. its span covers [40, 60].
        for shape in (dict(start=60.0, end=40.0), dict(start=1e9, end=-1e9)):
            prq = TkPRQ(3, **shape)
            frpq = TkFRPQ(3, **shape)
            assert prq.evaluate(index) == prq.evaluate(objects), shape
            assert frpq.evaluate(index) == frpq.evaluate(objects), shape
        # Only object 0's stay(1, 0..100) covers [40, 60].
        assert TkPRQ(3, start=60.0, end=40.0).evaluate(index) == [(1, 1)]

    def test_explain_on_queries(self, objects):
        index = SemanticsIndex.from_semantics(objects)
        assert TkPRQ(1).explain(index).use_index
        assert not TkPRQ(1).explain(objects).use_index
        assert TkFRPQ(1).explain(index).use_index


# --------------------------------------------------------------------------
# Store + service wiring
# --------------------------------------------------------------------------
class TestStoreIndex:
    def _filled_store(self, objects):
        store = SemanticsStore()
        for position, entries in enumerate(objects):
            store.publish(f"object-{position}", entries)
        return store

    def test_attach_is_idempotent_and_bulk_builds(self, objects):
        store = self._filled_store(objects)
        index = store.attach_index()
        assert store.attach_index() is index
        assert store.live_index is index
        _assert_equivalent(list(objects), store, ks=(2,))

    def test_empty_store_queries(self):
        store = SemanticsStore()
        store.attach_index()
        assert TkPRQ(3).evaluate(store) == []
        assert TkFRPQ(3).evaluate(store) == []

    def test_publish_updates_attached_index(self, objects):
        store = SemanticsStore()
        store.attach_index()
        for position, entries in enumerate(objects):
            store.publish(f"object-{position}", entries)
        _assert_equivalent(list(objects), store, ks=(2,))

    def test_detach_falls_back_to_scan(self, objects):
        store = self._filled_store(objects)
        store.attach_index()
        store.detach_index()
        assert store.live_index is None
        assert not TkPRQ(2).explain(store).use_index
        assert TkPRQ(2).evaluate(store) == TkPRQ(2).evaluate(objects)

    def test_clear_rebuilds_index(self, objects):
        store = self._filled_store(objects)
        store.attach_index()
        store.clear("object-2")
        assert TkPRQ(5).evaluate(store) == TkPRQ(5).evaluate(objects[:2])
        store.clear()
        assert TkPRQ(5).evaluate(store) == []
        assert store.live_index.stats()["postings"] == 0

    def test_store_load_indexed(self, objects, tmp_path):
        store = self._filled_store(objects)
        store.save(tmp_path / "store.json")
        loaded = SemanticsStore.load(tmp_path / "store.json", indexed=True)
        assert loaded.live_index is not None
        _assert_equivalent(list(objects), loaded, ks=(2,))

    def test_concurrent_publish_while_querying(self, objects):
        """Publishers hammer the store while a reader queries through the
        index; every answer must be internally consistent and the final
        state must equal the scan."""
        store = SemanticsStore()
        store.attach_index()
        errors = []
        done = threading.Event()

        def publisher(worker):
            try:
                for round_no in range(25):
                    for position, entries in enumerate(objects):
                        store.publish(f"w{worker}/r{round_no}/o{position}", entries)
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        def reader():
            try:
                while not done.is_set():
                    for shape in (dict(), dict(start=50.0, end=450.0)):
                        top = TkPRQ(3, **shape).evaluate(store)
                        assert all(count > 0 for _, count in top)
                        TkFRPQ(3, **shape).evaluate(store)
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        publishers = [threading.Thread(target=publisher, args=(n,)) for n in range(3)]
        reading = threading.Thread(target=reader)
        reading.start()
        for thread in publishers:
            thread.start()
        for thread in publishers:
            thread.join()
        done.set()
        reading.join()
        assert not errors
        snapshot = list(store.as_dict().values())
        _assert_equivalent(snapshot, store, ks=(3,))


# --------------------------------------------------------------------------
# Analytics fast paths
# --------------------------------------------------------------------------
class TestAnalyticsFastPaths:
    def test_conversion_rates_identical(self, objects):
        store = SemanticsStore()
        for position, entries in enumerate(objects):
            store.publish(f"object-{position}", entries)
        scanned = conversion_rates(objects)
        store.attach_index()
        assert conversion_rates(store) == scanned
        assert conversion_rates(store.live_index) == scanned
        assert conversion_rates(objects, min_visits=2) == conversion_rates(
            store, min_visits=2
        )

    def test_transitions_identical(self, objects):
        index = SemanticsIndex.from_semantics(objects)
        assert region_transition_counts(index) == region_transition_counts(objects)
        assert top_transitions(index, k=3) == top_transitions(objects, k=3)

    def test_transitions_with_passes_scan_only(self, objects):
        # stays_only=False has no index fast path; a store input still works
        # because the scan iterates it directly.
        store = SemanticsStore()
        for position, entries in enumerate(objects):
            store.publish(f"object-{position}", entries)
        store.attach_index()
        assert region_transition_counts(store, stays_only=False) == (
            region_transition_counts(objects, stays_only=False)
        )


# --------------------------------------------------------------------------
# The whole catalogue: indexed == scan, bitwise
# --------------------------------------------------------------------------
@pytest.mark.parametrize("name", scenario_names())
def test_catalogue_equivalence(name):
    scenario = materialize(name)
    truth = ground_truth_semantics(scenario.dataset.sequences)
    index = SemanticsIndex.from_semantics(truth)
    times = [
        bound
        for entries in truth
        for ms in entries
        for bound in (ms.start_time, ms.end_time)
    ]
    t0, t1 = min(times), max(times)
    span = t1 - t0
    region_ids = sorted(scenario.space.region_ids)
    shapes = [
        dict(),
        dict(start=t0 + 0.25 * span, end=t0 + 0.75 * span),
        dict(start=None, end=t0 + 0.5 * span),
        dict(start=t0 + 0.5 * span, end=None),
        dict(query_regions=set(region_ids[::2])),
        dict(
            start=t0 + 0.1 * span,
            end=t0 + 0.9 * span,
            query_regions=set(region_ids[1::2]),
        ),
    ]
    for shape in shapes:
        for k in (1, 5, 10):
            prq = TkPRQ(k, **shape)
            frpq = TkFRPQ(k, **shape)
            assert prq.evaluate(index) == prq.evaluate(truth), (name, shape, k)
            assert frpq.evaluate(index) == frpq.evaluate(truth), (name, shape, k)
