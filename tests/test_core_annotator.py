"""Tests for the public C2MNAnnotator API, label-and-merge and variants."""

import numpy as np
import pytest

from repro.core import C2MNAnnotator, make_annotator, make_cmn, make_variant
from repro.core.merge import merge_labeled_sequence, merge_record_labels
from repro.core.variants import VARIANT_NAMES
from repro.evaluation.metrics import score_sequences
from repro.mobility.records import EVENT_PASS, EVENT_STAY, LabeledSequence, MSemantics


class TestAnnotatorLifecycle:
    def test_not_fitted_initially(self, small_space, fast_config):
        annotator = C2MNAnnotator(small_space, config=fast_config)
        assert not annotator.is_fitted
        assert annotator.training_report is None

    def test_fit_requires_sequences(self, small_space, fast_config):
        annotator = C2MNAnnotator(small_space, config=fast_config)
        with pytest.raises(ValueError):
            annotator.fit([])

    def test_fitted_annotator_state(self, fitted_annotator):
        assert fitted_annotator.is_fitted
        report = fitted_annotator.training_report
        assert report is not None and report.iterations >= 1
        assert fitted_annotator.weights.shape == (12,)

    def test_model_weights_match_report(self, fitted_annotator):
        assert np.allclose(
            fitted_annotator.weights, fitted_annotator.training_report.weights
        )


class TestAnnotatorPrediction:
    def test_predict_labels_shapes(self, fitted_annotator, small_split):
        _, test = small_split
        sequence = test.sequences[0].sequence
        regions, events = fitted_annotator.predict_labels(sequence)
        assert len(regions) == len(events) == len(sequence)
        assert set(events) <= {EVENT_STAY, EVENT_PASS}

    def test_predicted_regions_are_valid(self, fitted_annotator, small_space, small_split):
        _, test = small_split
        regions, _ = fitted_annotator.predict_labels(test.sequences[0].sequence)
        valid = set(small_space.region_ids)
        assert set(regions) <= valid

    def test_predict_labeled_sequence(self, fitted_annotator, small_split):
        _, test = small_split
        labeled = fitted_annotator.predict_labeled_sequence(test.sequences[0].sequence)
        assert isinstance(labeled, LabeledSequence)
        assert len(labeled) == len(test.sequences[0].sequence)

    def test_annotation_quality_beats_chance(self, fitted_annotator, small_split):
        """The trained model should label the held-out data far better than chance."""
        _, test = small_split
        predictions = [
            fitted_annotator.predict_labeled_sequence(labeled.sequence)
            for labeled in test.sequences
        ]
        scores = score_sequences(predictions, test.sequences)
        assert scores.region_accuracy > 0.5
        assert scores.event_accuracy > 0.6
        assert scores.perfect_accuracy > 0.3

    def test_annotate_produces_msemantics(self, fitted_annotator, small_split):
        _, test = small_split
        semantics = fitted_annotator.annotate(test.sequences[0].sequence)
        assert semantics
        assert all(isinstance(ms, MSemantics) for ms in semantics)
        for earlier, later in zip(semantics, semantics[1:]):
            assert earlier.end_time <= later.start_time

    def test_annotate_many(self, fitted_annotator, small_split):
        _, test = small_split
        results = fitted_annotator.annotate_many(
            [labeled.sequence for labeled in test.sequences]
        )
        assert len(results) == len(test.sequences)

    def test_baseline_labels_helper(self, fitted_annotator, small_split):
        _, test = small_split
        regions, events = fitted_annotator.baseline_labels(test.sequences[0].sequence)
        assert len(regions) == len(events) == len(test.sequences[0].sequence)

    def test_prepare_exposes_sequence_data(self, fitted_annotator, small_split):
        _, test = small_split
        data = fitted_annotator.prepare(test.sequences[0].sequence)
        assert len(data) == len(test.sequences[0].sequence)
        assert not data.has_ground_truth


class TestMerge:
    def test_merge_labeled_sequence_matches_record_count(self, small_split):
        train, _ = small_split
        labeled = train.sequences[0]
        semantics = merge_labeled_sequence(labeled)
        assert sum(ms.record_count for ms in semantics) == len(labeled)

    def test_merge_with_region_grouping(self, small_split):
        train, _ = small_split
        labeled = train.sequences[0]
        # Group every region into one business area: merging can only reduce
        # (or preserve) the number of m-semantics.
        grouping = {region: 0 for region in set(labeled.region_labels)}
        grouped = merge_labeled_sequence(labeled, region_grouping=grouping)
        ungrouped = merge_labeled_sequence(labeled)
        assert len(grouped) <= len(ungrouped)
        assert all(ms.region_id == 0 for ms in grouped)

    def test_merge_record_labels_wrapper(self, small_split):
        train, _ = small_split
        labeled = train.sequences[0]
        semantics = merge_record_labels(
            labeled.sequence, labeled.region_labels, labeled.event_labels
        )
        assert semantics == merge_labeled_sequence(labeled)


class TestVariants:
    def test_variant_names_listed(self):
        assert "C2MN" in VARIANT_NAMES and "CMN" in VARIANT_NAMES

    def test_make_cmn_is_decoupled(self, small_space, fast_config):
        annotator = make_cmn(small_space, config=fast_config)
        assert annotator.name == "CMN"
        assert not annotator.model.is_coupled

    @pytest.mark.parametrize(
        "name, attribute",
        [
            ("C2MN/Tran", "use_transition"),
            ("C2MN/Syn", "use_synchronization"),
            ("C2MN/ES", "use_event_segmentation"),
            ("C2MN/SS", "use_space_segmentation"),
        ],
    )
    def test_structural_variants_disable_one_category(
        self, small_space, fast_config, name, attribute
    ):
        annotator = make_variant(name, small_space, config=fast_config)
        assert annotator.name == name
        assert getattr(annotator.config, attribute) is False
        # All other structure flags stay enabled.
        for other in (
            "use_transition",
            "use_synchronization",
            "use_event_segmentation",
            "use_space_segmentation",
        ):
            if other != attribute:
                assert getattr(annotator.config, other) is True

    def test_c2mn_at_r_configures_region_first(self, small_space, fast_config):
        annotator = make_variant("C2MN@R", small_space, config=fast_config)
        assert annotator.config.first_configured == "region"

    def test_unknown_variant_rejected(self, small_space):
        with pytest.raises(ValueError):
            make_variant("C2MN/Everything", small_space)

    def test_make_annotator_builds_baselines(self, small_space, fast_config):
        for name in ("SMoT", "HMM+DC", "SAPDV", "SAPDA"):
            method = make_annotator(name, small_space, config=fast_config)
            assert method.name == name
        c2mn = make_annotator("C2MN", small_space, config=fast_config)
        assert isinstance(c2mn, C2MNAnnotator)
