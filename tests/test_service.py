"""Tests for the streaming annotation service layer.

Covers the PR's acceptance contract:

* a :class:`StreamSession` fed record-by-record with ``window >= len`` yields,
  after the final record, exactly the m-semantics of batch ``annotate``;
* at the default window, streamed record-level labels agree with the batch
  decode on >= 95% of records of the mall workload;

plus store semantics, live queries over in-flight sessions, and service
persistence (save → load → bitwise-identical decodes).
"""

from __future__ import annotations

import pytest

from repro.analytics.behaviour import conversion_rates
from repro.mobility.records import PositioningSequence
from repro.queries.tkfrpq import TkFRPQ
from repro.queries.tkprq import TkPRQ
from repro.service import AnnotationService, SemanticsStore, StreamSession


@pytest.fixture()
def service(fitted_annotator):
    return AnnotationService(fitted_annotator)


@pytest.fixture(scope="module")
def short_sequences(small_split):
    """Truncated test sequences — streaming mechanics don't need 250+ records."""
    _, test = small_split
    return [
        PositioningSequence(
            list(labeled.sequence)[:60], object_id=labeled.object_id, sort=False
        )
        for labeled in test.sequences
    ]


def stream_whole_sequence(session, sequence):
    """Feed a p-sequence record-by-record; return everything finalized."""
    finalized = session.extend(sequence)
    finalized.extend(session.finish())
    return finalized


class TestStreamSessionExactness:
    def test_window_at_least_sequence_length_matches_batch(
        self, service, fitted_annotator, short_sequences
    ):
        for i, sequence in enumerate(short_sequences):
            batch = fitted_annotator.annotate(sequence)
            session = service.session(f"exact-{i}", window=len(sequence) + 1)
            assert stream_whole_sequence(session, sequence) == batch
            assert service.store.semantics_for(f"exact-{i}") == batch

    def test_exact_flag_matches_batch_with_small_window(
        self, service, fitted_annotator, short_sequences
    ):
        sequence = short_sequences[0]
        batch = fitted_annotator.annotate(sequence)
        session = service.session("exact-flag", window=8, exact=True)
        assert stream_whole_sequence(session, sequence) == batch

    def test_default_window_label_agreement(
        self, service, fitted_annotator, small_split
    ):
        _, test = small_split
        total = agreeing = 0
        for i, labeled in enumerate(test.sequences):
            sequence = labeled.sequence
            session = service.session(f"agree-{i}", keep_history=True)
            stream_whole_sequence(session, sequence)
            stream_regions, stream_events = session.labels
            batch_regions, batch_events = fitted_annotator.predict_labels(sequence)
            total += len(sequence)
            agreeing += sum(
                1
                for j in range(len(sequence))
                if stream_regions[j] == batch_regions[j]
                and stream_events[j] == batch_events[j]
            )
        agreement = agreeing / total
        assert agreement >= 0.95, (
            f"streamed labels agree with batch on only {agreement:.1%} of records"
        )

    def test_streamed_record_counts_cover_sequence(self, service, short_sequences):
        sequence = short_sequences[0]
        session = service.session("coverage", window=16)
        finalized = stream_whole_sequence(session, sequence)
        assert sum(ms.record_count for ms in finalized) == len(sequence)
        for earlier, later in zip(finalized, finalized[1:]):
            assert earlier.end_time <= later.start_time


class TestStreamSessionMechanics:
    def test_finalization_lags_the_window(self, service, short_sequences):
        sequence = short_sequences[0]
        session = service.session("lag", window=16)
        for record in sequence:
            session.add(record)
            assert session.published_record_count <= max(
                0, session.record_count - 16 + session.guard
            )

    def test_windowed_session_decodes_bounded_tails(self, service, short_sequences):
        sequence = short_sequences[0]
        session = service.session("bounded", window=16)
        session.extend(sequence)
        assert session.decode_count == len(sequence)

    def test_windowed_session_memory_stays_bounded(self, service, short_sequences):
        sequence = short_sequences[0]
        session = service.session("compact", window=16)
        for record in sequence:
            session.add(record)
            # Retention = the decode window plus the still-unpublished runs.
            assert session.retained_record_count == (
                session.record_count - session.labels_start
            )
            assert session.labels_start == min(
                session.published_record_count,
                max(0, session.record_count - 16),
            )
        assert session.retained_record_count < len(sequence)
        # The streamed output is unaffected by compaction.
        finalized = session.finish()
        total_published = service.store.semantics_for("compact")
        assert sum(ms.record_count for ms in total_published) == len(sequence)
        assert finalized
        assert finalized == total_published[-len(finalized):]

    def test_keep_history_retains_everything(self, service, short_sequences):
        sequence = short_sequences[0]
        session = service.session("history", window=16, keep_history=True)
        session.extend(sequence)
        assert session.labels_start == 0
        assert session.retained_record_count == len(sequence)
        regions, events = session.labels
        assert len(regions) == len(events) == len(sequence)

    def test_finished_sessions_are_evicted(self, service, short_sequences):
        session = service.session("evicted")
        session.add(short_sequences[0][0])
        assert service._sessions.get("evicted") is session
        session.finish()
        assert "evicted" not in service._sessions
        assert service.live_sessions() == []

    def test_out_of_order_record_rejected(self, service, short_sequences):
        sequence = short_sequences[0]
        session = service.session("order")
        session.add(sequence[5])
        with pytest.raises(ValueError, match="time order"):
            session.add(sequence[0])

    def test_add_after_finish_rejected(self, service, short_sequences):
        sequence = short_sequences[0]
        session = service.session("closed")
        session.add(sequence[0])
        session.finish()
        with pytest.raises(ValueError, match="finished"):
            session.add(sequence[1])
        assert session.finish() == []

    def test_add_point_convenience(self, service, short_sequences):
        record = short_sequences[0][0]
        session = service.session("points")
        session.add_point(record.x, record.y, record.timestamp, floor=record.floor)
        assert session.record_count == 1
        assert session.sequence[0].location == record.location

    def test_duplicate_live_session_rejected(self, service):
        service.session("dup")
        with pytest.raises(ValueError, match="live session"):
            service.session("dup")

    def test_finished_session_can_be_replaced(self, service):
        service.session("replace").finish()
        replacement = service.session("replace")
        assert isinstance(replacement, StreamSession)

    def test_unfitted_annotator_rejected(self, small_space, fast_config):
        from repro.core import C2MNAnnotator

        unfitted = C2MNAnnotator(small_space, config=fast_config)
        with pytest.raises(ValueError, match="fitted"):
            AnnotationService(unfitted)

    def test_invalid_window_and_guard_rejected(self, service, fitted_annotator):
        with pytest.raises(ValueError, match="window"):
            AnnotationService(fitted_annotator, window=1)
        with pytest.raises(ValueError, match="guard"):
            service.session("bad-guard", window=8, guard=8)


class TestSemanticsStore:
    def test_publish_and_read(self, service, short_sequences):
        store = service.store
        for i, sequence in enumerate(short_sequences):
            session = service.session(f"obj-{i}")
            stream_whole_sequence(session, sequence)
        assert len(store) == len(short_sequences)
        assert store.total_semantics == sum(len(entries) for entries in store)
        assert sorted(store.objects()) == sorted(
            f"obj-{i}" for i in range(len(short_sequences))
        )
        assert store.semantics_for("missing") == []

    def test_iteration_matches_query_input_shape(self, service, short_sequences):
        session = service.session("iter")
        stream_whole_sequence(session, short_sequences[0])
        per_object = list(service.store)
        assert TkPRQ(3).evaluate(service.store) == TkPRQ(3).evaluate(per_object)
        assert TkFRPQ(3).evaluate(service.store) == TkFRPQ(3).evaluate(per_object)
        # Mappings work too (the store's dict snapshot).
        assert TkPRQ(3).evaluate(service.store.as_dict()) == TkPRQ(3).evaluate(
            per_object
        )

    def test_clear(self, service, short_sequences):
        session = service.session("clear-me")
        stream_whole_sequence(session, short_sequences[0])
        service.store.clear("clear-me")
        assert service.store.semantics_for("clear-me") == []
        service.store.clear()
        assert len(service.store) == 0

    def test_store_round_trip(self, service, short_sequences, tmp_path):
        session = service.session("persist")
        stream_whole_sequence(session, short_sequences[0])
        path = tmp_path / "store.json"
        service.store.save(path)
        reloaded = SemanticsStore.load(path)
        assert reloaded.as_dict() == service.store.as_dict()


class TestLiveQueries:
    def test_queries_see_in_flight_traffic(self, service, short_sequences):
        sequence = short_sequences[0]
        session = service.session("live", window=12)
        session.extend(sequence)
        # Session still open: whatever is already finalized is queryable.
        if session.published_record_count:
            assert service.store.total_semantics > 0
            top = service.popular_regions(3)
            assert all(count >= 1 for _, count in top)
        session.finish()
        assert service.popular_regions(3) == TkPRQ(3).evaluate(service.store)
        assert service.frequent_pairs(3) == TkFRPQ(3).evaluate(service.store)

    def test_analytics_over_store(self, service, small_split):
        _, test = small_split
        service.annotate_batch([labeled.sequence for labeled in test.sequences])
        stats = conversion_rates(service.store)
        assert stats, "batch-published semantics must produce analytics"


class TestServiceIndex:
    def test_enable_index_keeps_queries_identical(self, service, small_split):
        _, test = small_split
        service.annotate_batch([labeled.sequence for labeled in test.sequences])
        scan_regions = service.query_popular_regions(3)
        scan_pairs = service.query_frequent_pairs(3)
        assert service.index is None
        index = service.enable_index()
        assert service.index is index
        assert TkPRQ(3).explain(service.store).use_index
        assert service.query_popular_regions(3) == scan_regions
        assert service.query_frequent_pairs(3) == scan_pairs
        service.disable_index()
        assert service.index is None
        assert service.query_popular_regions(3) == scan_regions

    def test_streaming_publishes_into_the_index(
        self, service, short_sequences, fitted_annotator
    ):
        service.enable_index()
        session = service.session("indexed-stream")
        stream_whole_sequence(session, short_sequences[0])
        # Every published m-semantics must have reached the index.
        assert service.store.total_semantics > 0
        assert service.index.total_entries == service.store.total_semantics
        snapshot = list(service.store.as_dict().values())
        assert service.query_popular_regions(5) == TkPRQ(5).evaluate(snapshot)

    def test_indexed_flag_round_trips_through_save_load(
        self, service, small_space, tmp_path
    ):
        service.enable_index()
        path = tmp_path / "service.json"
        service.save(path)
        reloaded = AnnotationService.load(path, small_space)
        assert reloaded.index is not None

    def test_constructor_indexed_flag(self, fitted_annotator):
        indexed_service = AnnotationService(fitted_annotator, indexed=True)
        assert indexed_service.index is not None

    def test_batch_and_streaming_share_the_store(
        self, service, fitted_annotator, small_split
    ):
        _, test = small_split
        batch_sequence = test.sequences[0].sequence
        service.annotate_batch([batch_sequence])
        assert service.store.semantics_for(
            batch_sequence.object_id
        ) == fitted_annotator.annotate(batch_sequence)


class TestServicePersistence:
    def test_save_load_round_trip_decodes_identically(
        self, service, fitted_annotator, small_space, small_split, tmp_path
    ):
        _, test = small_split
        path = tmp_path / "service.json"
        service.save(path)
        reloaded = AnnotationService.load(path, small_space)
        assert reloaded.window == service.window
        assert reloaded.annotator.name == fitted_annotator.name
        assert reloaded.annotator.is_fitted
        for labeled in test.sequences:
            assert reloaded.annotator.predict_labels(
                labeled.sequence
            ) == fitted_annotator.predict_labels(labeled.sequence)

    def test_loaded_service_streams_identically(
        self, service, small_space, short_sequences, tmp_path
    ):
        sequence = short_sequences[0]
        path = tmp_path / "service.json"
        service.save(path)
        reloaded = AnnotationService.load(path, small_space)
        original = stream_whole_sequence(service.session("twin"), sequence)
        restored = stream_whole_sequence(reloaded.session("twin"), sequence)
        assert restored == original

    def test_load_rejects_foreign_files(self, small_space, tmp_path):
        path = tmp_path / "other.json"
        path.write_text("{}")
        with pytest.raises(ValueError, match="annotation-service"):
            AnnotationService.load(path, small_space)

    def test_baseline_service_save_raises_clearly(
        self, small_space, small_split, fast_config, tmp_path
    ):
        """Baselines stream fine but carry no weights — saving must say so."""
        from repro.core import make_annotator

        train, _ = small_split
        smot = make_annotator("SMoT", small_space, config=fast_config)
        smot.fit(train.sequences)
        service = AnnotationService(smot)
        with pytest.raises(TypeError, match="refit"):
            service.save(tmp_path / "smot.json")
