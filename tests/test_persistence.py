"""Tests for JSON persistence of sequences, datasets, semantics and weights."""

import numpy as np
import pytest

from repro.core.config import C2MNConfig
from repro.core.merge import merge_labeled_sequence
from repro.mobility.dataset import AnnotationDataset
from repro.persistence import (
    labeled_sequence_from_dict,
    labeled_sequence_to_dict,
    load_dataset,
    load_model_weights,
    load_semantics,
    save_dataset,
    save_model_weights,
    save_semantics,
    semantics_from_dicts,
    semantics_to_dicts,
)


class TestLabeledSequenceRoundTrip:
    def test_round_trip_preserves_everything(self, small_dataset):
        original = small_dataset.sequences[0]
        rebuilt = labeled_sequence_from_dict(labeled_sequence_to_dict(original))
        assert rebuilt.object_id == original.object_id
        assert len(rebuilt) == len(original)
        assert rebuilt.region_labels == original.region_labels
        assert rebuilt.event_labels == original.event_labels
        for a, b in zip(rebuilt.sequence, original.sequence):
            assert a.timestamp == pytest.approx(b.timestamp)
            assert a.location == b.location

    def test_dict_is_json_friendly(self, small_dataset):
        import json

        payload = labeled_sequence_to_dict(small_dataset.sequences[0])
        assert json.loads(json.dumps(payload)) == payload


class TestDatasetRoundTrip:
    def test_save_and_load(self, small_dataset, small_space, tmp_path):
        path = tmp_path / "dataset.json"
        save_dataset(small_dataset, path)
        loaded = load_dataset(path, small_space)
        assert isinstance(loaded, AnnotationDataset)
        assert loaded.name == small_dataset.name
        assert len(loaded) == len(small_dataset)
        assert loaded.total_records == small_dataset.total_records
        assert loaded.statistics() == pytest.approx(small_dataset.statistics())


class TestSemanticsRoundTrip:
    def test_dict_round_trip(self, small_dataset):
        semantics = merge_labeled_sequence(small_dataset.sequences[0])
        rebuilt = semantics_from_dicts(semantics_to_dicts(semantics))
        assert rebuilt == semantics

    def test_file_round_trip(self, small_dataset, tmp_path):
        semantics = merge_labeled_sequence(small_dataset.sequences[0])
        path = tmp_path / "semantics.json"
        save_semantics(semantics, path)
        assert load_semantics(path) == semantics


class TestModelWeightsRoundTrip:
    def test_weights_only(self, tmp_path):
        weights = np.linspace(-1.0, 1.0, 12)
        path = tmp_path / "weights.json"
        save_model_weights(weights, path)
        loaded, config = load_model_weights(path)
        assert np.allclose(loaded, weights)
        assert config is None

    def test_weights_with_config(self, tmp_path):
        weights = np.full(12, 0.5)
        config = C2MNConfig.fast(seed=123)
        path = tmp_path / "weights.json"
        save_model_weights(weights, path, config=config)
        loaded, loaded_config = load_model_weights(path)
        assert np.allclose(loaded, weights)
        assert loaded_config == config

    def test_trained_annotator_weights_round_trip(self, fitted_annotator, tmp_path):
        path = tmp_path / "trained.json"
        save_model_weights(fitted_annotator.weights, path, config=fitted_annotator.config)
        loaded, loaded_config = load_model_weights(path)
        assert np.allclose(loaded, fitted_annotator.weights)
        assert loaded_config == fitted_annotator.config
