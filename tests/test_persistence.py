"""Tests for JSON persistence of sequences, datasets, semantics, weights and annotators."""

import numpy as np
import pytest

from repro.core.annotator import C2MNAnnotator
from repro.core.config import C2MNConfig
from repro.core.merge import merge_labeled_sequence
from repro.mobility.dataset import AnnotationDataset
from repro.persistence import (
    annotator_from_dict,
    annotator_to_dict,
    labeled_sequence_from_dict,
    labeled_sequence_to_dict,
    load_dataset,
    load_model_weights,
    load_semantics,
    save_dataset,
    save_model_weights,
    save_semantics,
    semantics_from_dicts,
    semantics_to_dicts,
)


class TestLabeledSequenceRoundTrip:
    def test_round_trip_preserves_everything(self, small_dataset):
        original = small_dataset.sequences[0]
        rebuilt = labeled_sequence_from_dict(labeled_sequence_to_dict(original))
        assert rebuilt.object_id == original.object_id
        assert len(rebuilt) == len(original)
        assert rebuilt.region_labels == original.region_labels
        assert rebuilt.event_labels == original.event_labels
        for a, b in zip(rebuilt.sequence, original.sequence):
            assert a.timestamp == pytest.approx(b.timestamp)
            assert a.location == b.location

    def test_dict_is_json_friendly(self, small_dataset):
        import json

        payload = labeled_sequence_to_dict(small_dataset.sequences[0])
        assert json.loads(json.dumps(payload)) == payload


class TestDatasetRoundTrip:
    def test_save_and_load(self, small_dataset, small_space, tmp_path):
        path = tmp_path / "dataset.json"
        save_dataset(small_dataset, path)
        loaded = load_dataset(path, small_space)
        assert isinstance(loaded, AnnotationDataset)
        assert loaded.name == small_dataset.name
        assert len(loaded) == len(small_dataset)
        assert loaded.total_records == small_dataset.total_records
        assert loaded.statistics() == pytest.approx(small_dataset.statistics())


class TestSemanticsRoundTrip:
    def test_dict_round_trip(self, small_dataset):
        semantics = merge_labeled_sequence(small_dataset.sequences[0])
        rebuilt = semantics_from_dicts(semantics_to_dicts(semantics))
        assert rebuilt == semantics

    def test_file_round_trip(self, small_dataset, tmp_path):
        semantics = merge_labeled_sequence(small_dataset.sequences[0])
        path = tmp_path / "semantics.json"
        save_semantics(semantics, path)
        assert load_semantics(path) == semantics


class TestModelWeightsRoundTrip:
    def test_weights_only(self, tmp_path):
        weights = np.linspace(-1.0, 1.0, 12)
        path = tmp_path / "weights.json"
        save_model_weights(weights, path)
        loaded, config = load_model_weights(path)
        assert np.allclose(loaded, weights)
        assert config is None

    def test_weights_with_config(self, tmp_path):
        weights = np.full(12, 0.5)
        config = C2MNConfig.fast(seed=123)
        path = tmp_path / "weights.json"
        save_model_weights(weights, path, config=config)
        loaded, loaded_config = load_model_weights(path)
        assert np.allclose(loaded, weights)
        assert loaded_config == config

    def test_trained_annotator_weights_round_trip(self, fitted_annotator, tmp_path):
        path = tmp_path / "trained.json"
        save_model_weights(fitted_annotator.weights, path, config=fitted_annotator.config)
        loaded, loaded_config = load_model_weights(path)
        assert np.allclose(loaded, fitted_annotator.weights)
        assert loaded_config == fitted_annotator.config


class TestAnnotatorRoundTrip:
    def test_save_load_restores_state(
        self, fitted_annotator, small_space, tmp_path
    ):
        path = tmp_path / "annotator.json"
        fitted_annotator.save(path)
        loaded = C2MNAnnotator.load(path, small_space)
        assert loaded.is_fitted
        assert loaded.name == fitted_annotator.name
        assert loaded.config == fitted_annotator.config
        # Weights survive json round-trip bitwise (repr round-trips floats).
        assert (loaded.weights == fitted_annotator.weights).all()

    def test_save_load_decodes_bitwise_identically(
        self, fitted_annotator, small_space, small_split, tmp_path
    ):
        """Trained weights + config reloaded must reproduce every decode exactly."""
        _, test = small_split
        path = tmp_path / "annotator.json"
        fitted_annotator.save(path)
        loaded = C2MNAnnotator.load(path, small_space)
        for labeled in test.sequences:
            assert loaded.predict_labels(labeled.sequence) == (
                fitted_annotator.predict_labels(labeled.sequence)
            )
            assert loaded.annotate(labeled.sequence) == (
                fitted_annotator.annotate(labeled.sequence)
            )

    def test_unfitted_annotator_refuses_to_save(self, small_space, tmp_path):
        annotator = C2MNAnnotator(small_space, config=C2MNConfig.fast())
        with pytest.raises(ValueError, match="unfitted"):
            annotator.save(tmp_path / "nope.json")

    def test_dict_round_trip_preserves_variant_name_and_structure(
        self, small_space, small_split
    ):
        from repro.core.variants import make_variant

        train, _ = small_split
        tiny = C2MNConfig.fast(max_iterations=1, mcmc_samples=2, lbfgs_iterations=1)
        variant = make_variant("C2MN/Tran", small_space, config=tiny)
        variant.fit(train.sequences[:1])
        rebuilt = annotator_from_dict(annotator_to_dict(variant), small_space)
        assert rebuilt.name == "C2MN/Tran"
        assert rebuilt.config.use_transition is False
        assert (rebuilt.weights == variant.weights).all()

    def test_annotator_file_also_loads_as_model_weights(
        self, fitted_annotator, tmp_path
    ):
        path = tmp_path / "annotator.json"
        fitted_annotator.save(path)
        weights, config = load_model_weights(path)
        assert (weights == fitted_annotator.weights).all()
        assert config == fitted_annotator.config
