"""Conformance suite for the unified :class:`repro.core.protocol.Annotator`.

Every compared method — the full C2MN, each structural variant and each
baseline — is run through the same parametrized checks: structural protocol
membership, fitted-state bookkeeping, label shapes, annotate/merge
consistency and the ``*_many`` batch contract (input order preserved,
workers produce identical results).

Training here uses a deliberately tiny configuration: conformance is about
the API contract, not annotation quality.
"""

from __future__ import annotations

import pytest

from repro.core import Annotator, AnnotatorBase, C2MNConfig, make_annotator
from repro.core.variants import VARIANT_NAMES
from repro.mobility.records import EVENTS, MSemantics

BASELINE_NAMES = ("SMoT", "HMM+DC", "SAPDV", "SAPDA")
ALL_METHOD_NAMES = VARIANT_NAMES + ("C2MN@R",) + BASELINE_NAMES


@pytest.fixture(scope="module")
def tiny_config():
    """Smallest legal learning configuration — conformance only needs the API."""
    return C2MNConfig.fast(
        max_iterations=1, mcmc_samples=2, lbfgs_iterations=1, icm_sweeps=2
    )


@pytest.fixture(scope="module", params=ALL_METHOD_NAMES)
def fitted_method(request, small_space, small_split, tiny_config):
    """Each compared method, constructed by name and fitted on two sequences."""
    train, _ = small_split
    method = make_annotator(request.param, small_space, config=tiny_config)
    method.fit(train.sequences[:2])
    return method


class TestProtocolMembership:
    def test_every_method_satisfies_protocol(self, fitted_method):
        assert isinstance(fitted_method, Annotator)

    def test_every_method_derives_from_base(self, fitted_method):
        assert isinstance(fitted_method, AnnotatorBase)

    def test_name_matches_construction(self, small_space, tiny_config):
        for name in ALL_METHOD_NAMES:
            method = make_annotator(name, small_space, config=tiny_config)
            assert method.name == name

    def test_unfitted_method_reports_unfitted(self, small_space, tiny_config):
        method = make_annotator("SMoT", small_space, config=tiny_config)
        assert not method.is_fitted

    def test_duck_typed_object_satisfies_protocol(self):
        class Structural:
            name = "structural"

            @property
            def is_fitted(self):
                return True

            def fit(self, training_sequences):
                return self

            def predict_labels(self, sequence):
                return [], []

            def predict_labeled_sequence(self, sequence):
                raise NotImplementedError

            def annotate(self, sequence, *, region_grouping=None):
                return []

            def predict_labels_many(self, sequences, *, workers=None):
                return []

            def annotate_many(self, sequences, *, workers=None, region_grouping=None):
                return []

        assert isinstance(Structural(), Annotator)

    def test_incomplete_object_fails_protocol(self):
        class Incomplete:
            name = "incomplete"

        assert not isinstance(Incomplete(), Annotator)


class TestFittedState:
    def test_is_fitted_after_fit(self, fitted_method):
        assert fitted_method.is_fitted


class TestLabeling:
    def test_predict_labels_shapes(self, fitted_method, small_split):
        _, test = small_split
        sequence = test.sequences[0].sequence
        regions, events = fitted_method.predict_labels(sequence)
        assert len(regions) == len(sequence)
        assert len(events) == len(sequence)
        assert all(isinstance(region, int) for region in regions)
        assert all(event in EVENTS for event in events)

    def test_predict_labeled_sequence_wraps(self, fitted_method, small_split):
        _, test = small_split
        sequence = test.sequences[0].sequence
        labeled = fitted_method.predict_labeled_sequence(sequence)
        assert labeled.sequence is sequence
        assert labeled.object_id == sequence.object_id
        assert (labeled.region_labels, labeled.event_labels) == (
            fitted_method.predict_labels(sequence)
        )

    def test_annotate_merges_labels(self, fitted_method, small_split):
        _, test = small_split
        sequence = test.sequences[0].sequence
        semantics = fitted_method.annotate(sequence)
        assert semantics, "annotation must produce at least one m-semantics"
        assert all(isinstance(ms, MSemantics) for ms in semantics)
        assert sum(ms.record_count for ms in semantics) == len(sequence)
        for earlier, later in zip(semantics, semantics[1:]):
            assert earlier.end_time <= later.start_time


class TestBatchContract:
    def test_many_match_serial_and_keep_order(self, fitted_method, small_split):
        _, test = small_split
        sequences = [labeled.sequence for labeled in test.sequences]
        serial = [fitted_method.predict_labels(sequence) for sequence in sequences]
        assert fitted_method.predict_labels_many(sequences) == serial
        assert fitted_method.predict_labels_many(sequences, workers=3) == serial

    def test_annotate_many_match_serial(self, fitted_method, small_split):
        _, test = small_split
        sequences = [labeled.sequence for labeled in test.sequences]
        serial = [fitted_method.annotate(sequence) for sequence in sequences]
        assert fitted_method.annotate_many(sequences) == serial
        assert fitted_method.annotate_many(sequences, workers=3) == serial

    def test_empty_batch(self, fitted_method):
        assert fitted_method.predict_labels_many([]) == []
        assert fitted_method.annotate_many([]) == []

    @pytest.mark.parametrize("bad_workers", [0, -1])
    def test_invalid_workers_rejected(self, fitted_method, small_split, bad_workers):
        _, test = small_split
        sequences = [labeled.sequence for labeled in test.sequences]
        # Uniformly invalid regardless of batch size: full batch, single item
        # (historically short-circuited past validation) and empty batch.
        for batch in (sequences, sequences[:1], []):
            with pytest.raises(ValueError):
                fitted_method.predict_labels_many(batch, workers=bad_workers)
            with pytest.raises(ValueError):
                fitted_method.annotate_many(batch, workers=bad_workers)

    def test_invalid_backend_rejected(self, fitted_method, small_split):
        _, test = small_split
        sequences = [labeled.sequence for labeled in test.sequences]
        with pytest.raises(ValueError):
            fitted_method.predict_labels_many(sequences, backend="gpu")


class TestProcessBackendDeterminism:
    """Sharded process decoding must be bitwise-identical to the serial path.

    Runs over the same parametrized ``fitted_method`` fixture as the rest of
    the conformance suite, so C2MN, every structural variant and every
    baseline is checked at several worker counts.
    """

    @pytest.mark.parametrize("workers", [2, 3, 4])
    def test_predict_labels_many_process_matches_serial(
        self, fitted_method, small_split, workers
    ):
        _, test = small_split
        sequences = [labeled.sequence for labeled in test.sequences]
        serial = fitted_method.predict_labels_many(sequences, backend="serial")
        sharded = fitted_method.predict_labels_many(
            sequences, workers=workers, backend="process"
        )
        assert sharded == serial

    @pytest.mark.parametrize("workers", [2, 4])
    def test_annotate_many_process_matches_serial(
        self, fitted_method, small_split, workers
    ):
        _, test = small_split
        sequences = [labeled.sequence for labeled in test.sequences]
        serial = fitted_method.annotate_many(sequences, backend="serial")
        sharded = fitted_method.annotate_many(
            sequences, workers=workers, backend="process"
        )
        assert sharded == serial

    def test_annotate_many_process_with_region_grouping(
        self, fitted_method, small_split, small_space
    ):
        _, test = small_split
        sequences = [labeled.sequence for labeled in test.sequences]
        grouping = {region_id: region_id for region_id in small_space.region_ids}
        serial = fitted_method.annotate_many(
            sequences, backend="serial", region_grouping=grouping
        )
        sharded = fitted_method.annotate_many(
            sequences, workers=2, backend="process", region_grouping=grouping
        )
        assert sharded == serial

    def test_thread_backend_matches_serial(self, fitted_method, small_split):
        _, test = small_split
        sequences = [labeled.sequence for labeled in test.sequences]
        serial = fitted_method.predict_labels_many(sequences, backend="serial")
        threaded = fitted_method.predict_labels_many(
            sequences, workers=3, backend="thread"
        )
        assert threaded == serial
