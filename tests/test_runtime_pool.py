"""Lifecycle tests of the persistent pools (:mod:`repro.runtime.pool`).

The shared-memory broadcast machinery owns real OS resources — worker
processes and ``/dev/shm`` segments — so its lifecycle is tested
explicitly: pools must actually be reused, broadcasts must be
content-addressed and LRU-bounded, teardown must unlink every segment,
a crashed worker must not leak the pool or the segments, and a process
that exits without calling :func:`repro.runtime.shutdown_pools` must
still leave nothing behind (the :mod:`atexit` hook) and make no noise
on stderr (the resource-tracker regression).
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest
from concurrent.futures.process import BrokenProcessPool

from repro.runtime import (
    Executor,
    ExecutionPolicy,
    active_broadcast_epochs,
    active_pool_workers,
    shutdown_pools,
)
from repro.runtime.pool import (
    _MAX_BROADCASTS,
    publish_broadcast,
    run_broadcast_shards,
)

REPO_SRC = Path(__file__).resolve().parent.parent / "src"


class _Worker:
    """Picklable broadcast target reporting which process ran the work."""

    def __init__(self, tag="w"):
        self.tag = tag

    def pid_of(self, item):
        return (os.getpid(), self.tag, item)

    def crash(self, item):
        os._exit(1)  # simulate a hard worker death (OOM kill, segfault)


@pytest.fixture(autouse=True)
def clean_pools():
    """Every test starts and ends with no pools and no segments."""
    shutdown_pools()
    yield
    shutdown_pools()


def _worker_pids(results):
    return {pid for shard in results for (pid, _, _) in shard}


class TestPoolReuse:
    def test_pool_persists_across_calls(self):
        shards = [[1], [2], [3]]
        first = run_broadcast_shards(_Worker(), "pid_of", {}, shards, workers=2)
        second = run_broadcast_shards(_Worker(), "pid_of", {}, shards, workers=2)
        assert active_pool_workers() == [2]
        # The second call was served by the same worker processes — no
        # respawn.  (Subset, not equality: tiny tasks may all land on one
        # worker.)
        assert _worker_pids(second) <= _worker_pids(first)

    def test_distinct_worker_counts_get_distinct_pools(self):
        run_broadcast_shards(_Worker(), "pid_of", {}, [[1]], workers=1)
        run_broadcast_shards(_Worker(), "pid_of", {}, [[1]], workers=2)
        assert active_pool_workers() == [1, 2]

    def test_reuse_pool_false_leaves_no_persistent_pool(self):
        results = run_broadcast_shards(
            _Worker(), "pid_of", {}, [[1], [2]], workers=2, reuse_pool=False
        )
        assert [item for shard in results for (_, _, item) in shard] == [1, 2]
        assert active_pool_workers() == []
        assert active_broadcast_epochs() == []


class TestBroadcasts:
    def test_content_addressed_reuse(self):
        handle_a = publish_broadcast(_Worker("a"), "pid_of", {})
        handle_b = publish_broadcast(_Worker("a"), "pid_of", {})
        assert handle_a == handle_b
        assert active_broadcast_epochs() == [handle_a[0]]

    def test_distinct_payloads_get_distinct_epochs(self):
        epoch_a = publish_broadcast(_Worker("a"), "pid_of", {})[0]
        epoch_b = publish_broadcast(_Worker("b"), "pid_of", {})[0]
        assert epoch_a != epoch_b
        assert sorted(active_broadcast_epochs()) == sorted([epoch_a, epoch_b])

    def test_lru_eviction_bounds_segments(self):
        names = []
        for index in range(_MAX_BROADCASTS + 2):
            _, name, _ = publish_broadcast(_Worker(f"w{index}"), "pid_of", {})
            names.append(name)
        assert len(active_broadcast_epochs()) == _MAX_BROADCASTS
        # The evicted segments are gone from /dev/shm, the survivors remain.
        survivors = [Path("/dev/shm") / name for name in names[-_MAX_BROADCASTS:]]
        evicted = [Path("/dev/shm") / name for name in names[:-_MAX_BROADCASTS]]
        if survivors[0].parent.exists():  # POSIX shm mount (Linux)
            assert all(path.exists() for path in survivors)
            assert not any(path.exists() for path in evicted)

    def test_shutdown_unlinks_every_segment(self):
        _, name, _ = publish_broadcast(_Worker(), "pid_of", {})
        run_broadcast_shards(_Worker(), "pid_of", {}, [[1]], workers=2)
        shutdown_pools()
        assert active_pool_workers() == []
        assert active_broadcast_epochs() == []
        segment = Path("/dev/shm") / name
        if segment.parent.exists():
            assert not segment.exists()


class TestWorkerCrash:
    def test_crash_raises_and_cleans_up(self):
        healthy_epoch = publish_broadcast(_Worker(), "pid_of", {})[0]
        epoch, name, _ = publish_broadcast(_Worker(), "crash", {})
        with pytest.raises(BrokenProcessPool):
            run_broadcast_shards(_Worker(), "crash", {}, [[1], [2]], workers=2)
        # The broken pool is discarded and the failed call's broadcast
        # segment unlinked; unrelated parent-owned broadcasts survive.
        assert active_pool_workers() == []
        assert epoch not in active_broadcast_epochs()
        assert healthy_epoch in active_broadcast_epochs()
        segment = Path("/dev/shm") / name
        if segment.parent.exists():
            assert not segment.exists()

    def test_next_call_recovers_with_a_fresh_pool(self):
        with pytest.raises(BrokenProcessPool):
            run_broadcast_shards(_Worker(), "crash", {}, [[1]], workers=2)
        results = run_broadcast_shards(
            _Worker(), "pid_of", {}, [[7], [8]], workers=2
        )
        assert [item for shard in results for (_, _, item) in shard] == [7, 8]

    def test_executor_map_surface_cleans_up_too(self):
        executor = Executor(policy=ExecutionPolicy.processes(2))
        with pytest.raises(BrokenProcessPool):
            executor.map_broadcast(_Worker(), "crash", [1, 2, 3])
        assert active_pool_workers() == []
        assert active_broadcast_epochs() == []


class TestInterpreterExit:
    def test_exit_without_shutdown_leaks_nothing_and_stays_quiet(self, tmp_path):
        """The atexit hook must reap pools/segments with zero stderr noise.

        Regression test for the fork-mode resource-tracker bug: a worker
        attachment that registers (or unregisters) the parent's segment
        with the shared tracker produces ``KeyError: '/psm_...'``
        tracebacks or "leaked shared_memory objects" warnings at exit.
        """
        script = tmp_path / "exit_without_shutdown.py"
        script.write_text(
            "import os\n"
            "from repro.runtime.pool import run_broadcast_shards\n"
            "class W:\n"
            "    def pid_of(self, item):\n"
            "        return (os.getpid(), item)\n"
            "results = run_broadcast_shards(W(), 'pid_of', {}, [[1], [2]], workers=2)\n"
            "assert [i for shard in results for (_, i) in shard] == [1, 2]\n"
            "print('SEGMENTS', sorted(os.listdir('/dev/shm')) if os.path.isdir('/dev/shm') else [])\n"
            # no shutdown_pools(): atexit must handle teardown
        )
        env = dict(os.environ, PYTHONPATH=str(REPO_SRC))
        proc = subprocess.run(
            [sys.executable, str(script)],
            capture_output=True,
            text=True,
            timeout=120,
            env=env,
        )
        assert proc.returncode == 0, proc.stderr
        assert "Traceback" not in proc.stderr, proc.stderr
        assert "KeyError" not in proc.stderr, proc.stderr
        assert "leaked" not in proc.stderr, proc.stderr
        # Any segment the child printed as live mid-run must be gone now.
        if Path("/dev/shm").is_dir():
            for line in proc.stdout.splitlines():
                if line.startswith("SEGMENTS "):
                    for name in eval(line.split(" ", 1)[1]):
                        if name.startswith("psm_"):
                            assert not (Path("/dev/shm") / name).exists()
