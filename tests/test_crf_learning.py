"""Tests for the alternate learning algorithm (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.config import C2MNConfig
from repro.crf.features import FeatureExtractor
from repro.crf.learning import AlternateLearner, TrainingReport
from repro.crf.model import C2MNModel


@pytest.fixture(scope="module")
def training_data(small_space, small_oracle, small_split):
    train, _ = small_split
    extractor = FeatureExtractor(small_space, C2MNConfig.fast(), oracle=small_oracle)
    return extractor, [
        extractor.prepare(
            labeled.sequence,
            true_regions=labeled.region_labels,
            true_events=labeled.event_labels,
        )
        for labeled in train.sequences
    ]


class TestAlternateLearner:
    def test_requires_ground_truth(self, training_data, small_dataset):
        extractor, _ = training_data
        plain = extractor.prepare(small_dataset.sequences[0].sequence)
        learner = AlternateLearner(C2MNModel(extractor))
        with pytest.raises(ValueError):
            learner.fit([plain])

    def test_requires_nonempty_training_set(self, training_data):
        extractor, _ = training_data
        learner = AlternateLearner(C2MNModel(extractor))
        with pytest.raises(ValueError):
            learner.fit([])

    def test_fit_returns_report(self, training_data):
        extractor, prepared = training_data
        model = C2MNModel(extractor)
        learner = AlternateLearner(model)
        report = learner.fit(prepared[:2])
        assert isinstance(report, TrainingReport)
        assert report.iterations >= 1
        assert report.elapsed_seconds > 0.0
        assert report.weights.shape == (12,)
        assert np.isfinite(report.weights).all()

    def test_fit_updates_model_weights(self, training_data):
        extractor, prepared = training_data
        model = C2MNModel(extractor)
        initial = model.weights.copy()
        AlternateLearner(model).fit(prepared[:2])
        assert not np.allclose(model.weights, initial)

    def test_objective_trace_recorded(self, training_data):
        extractor, prepared = training_data
        model = C2MNModel(extractor)
        report = AlternateLearner(model).fit(prepared[:2])
        assert len(report.objective_trace) == report.iterations
        assert all(np.isfinite(value) for value in report.objective_trace)

    def test_respects_max_iterations(self, small_space, small_oracle, small_split):
        train, _ = small_split
        config = C2MNConfig.fast(max_iterations=2)
        extractor = FeatureExtractor(small_space, config, oracle=small_oracle)
        prepared = [
            extractor.prepare(
                labeled.sequence,
                true_regions=labeled.region_labels,
                true_events=labeled.event_labels,
            )
            for labeled in train.sequences[:2]
        ]
        report = AlternateLearner(C2MNModel(extractor)).fit(prepared)
        assert report.iterations <= 2

    def test_first_configured_region_variant_trains(self, small_space, small_oracle, small_split):
        train, _ = small_split
        config = C2MNConfig.fast(max_iterations=2).with_first_configured("region")
        extractor = FeatureExtractor(small_space, config, oracle=small_oracle)
        prepared = [
            extractor.prepare(
                labeled.sequence,
                true_regions=labeled.region_labels,
                true_events=labeled.event_labels,
            )
            for labeled in train.sequences[:2]
        ]
        report = AlternateLearner(C2MNModel(extractor)).fit(prepared)
        assert report.first_configured == "region"
        assert np.isfinite(report.weights).all()

    def test_training_is_seed_deterministic(self, small_space, small_oracle, small_split):
        train, _ = small_split

        def run():
            config = C2MNConfig.fast(max_iterations=2)
            extractor = FeatureExtractor(small_space, config, oracle=small_oracle)
            prepared = [
                extractor.prepare(
                    labeled.sequence,
                    true_regions=labeled.region_labels,
                    true_events=labeled.event_labels,
                )
                for labeled in train.sequences[:2]
            ]
            return AlternateLearner(C2MNModel(extractor)).fit(prepared).weights


        assert np.allclose(run(), run())

    def test_trained_model_prefers_truth_over_far_regions(self, training_data):
        """After training, the ground-truth region configuration should score
        higher than assigning every record to a far-away candidate."""
        extractor, prepared = training_data
        data = prepared[0]
        truth_regions = list(data.true_regions)
        truth_events = list(data.true_events)
        corrupted_regions = []
        for truth, candidates in zip(truth_regions, data.candidates):
            alternatives = [c for c in candidates if c != truth]
            corrupted_regions.append(alternatives[-1] if alternatives else truth)

        trained = C2MNModel(extractor)
        AlternateLearner(trained).fit(prepared[:2])
        good = trained.configuration_score(data, truth_regions, truth_events)
        bad = trained.configuration_score(data, corrupted_regions, truth_events)
        assert good > bad
