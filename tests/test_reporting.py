"""The shared flat-row reporting helper (replay + loadgen artifacts)."""

from __future__ import annotations

import csv
from dataclasses import dataclass

import pytest

from repro.service.replay import ReplayReport
from repro.service.reporting import flat_row, write_csv


@dataclass
class _Toy:
    name: str
    count: int
    seconds: float

    @property
    def rate(self) -> float:
        return self.count / self.seconds


def test_flat_row_preserves_declaration_order_and_appends_derived():
    row = flat_row(_Toy("a", 10, 2.0), derived=("rate",))
    assert list(row) == ["name", "count", "seconds", "rate"]
    assert row == {"name": "a", "count": 10, "seconds": 2.0, "rate": 5.0}


def test_flat_row_rejects_non_dataclasses():
    with pytest.raises(TypeError):
        flat_row({"name": "a"})
    with pytest.raises(TypeError):
        flat_row(_Toy)  # the class, not an instance


def test_replay_report_row_uses_the_shared_helper():
    report = ReplayReport(
        scenario="mall-tiny", seed=1, objects=2, records=100, decodes=10,
        published=20, elapsed_seconds=2.0, window=48, exact=False,
    )
    row = report.row()
    assert list(row)[:3] == ["scenario", "seed", "objects"]
    assert list(row)[-1] == "records_per_second"
    assert row["records_per_second"] == pytest.approx(50.0)


def test_write_csv_unions_columns_in_first_seen_order(tmp_path):
    path = write_csv(
        [{"a": 1, "b": 2}, {"a": 3, "c": 4}], tmp_path / "deep" / "table.csv"
    )
    assert path.exists()
    with path.open() as handle:
        reader = csv.DictReader(handle)
        assert reader.fieldnames == ["a", "b", "c"]
        rows = list(reader)
    assert rows[0] == {"a": "1", "b": "2", "c": ""}
    assert rows[1] == {"a": "3", "b": "", "c": "4"}


def test_write_csv_rejects_empty_tables(tmp_path):
    with pytest.raises(ValueError):
        write_csv([], tmp_path / "empty.csv")
