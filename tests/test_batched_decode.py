"""Bitwise equivalence of the batched decode path (:mod:`repro.crf.batch`).

The batched ``*_many`` pipeline — duplicate coalescing, length bucketing,
the lockstep bucket ICM of :func:`repro.crf.batch.decode_icm_many` — must
be *bitwise* identical to the per-sequence loop it accelerates, for every
compared method (all C2MN variants and all baselines), every ragged batch
shape, and every backend/worker combination.  These tests pin that
contract; a single differing label anywhere is a correctness bug.
"""

from __future__ import annotations

import pytest

from repro.core import C2MNConfig, make_annotator
from repro.core.variants import VARIANT_NAMES
from repro.crf.batch import bucket_indices, decode_icm_many
from repro.crf.inference import decode_icm
from repro.runtime import ExecutionPolicy

BASELINE_NAMES = ("SMoT", "HMM+DC", "SAPDV", "SAPDA")
ALL_METHOD_NAMES = VARIANT_NAMES + ("C2MN@R",) + BASELINE_NAMES

UNBATCHED = ExecutionPolicy.serial(batch=False)
BATCHED = ExecutionPolicy.serial()


@pytest.fixture(scope="module")
def tiny_config():
    return C2MNConfig.fast(
        max_iterations=1, mcmc_samples=2, lbfgs_iterations=1, icm_sweeps=2
    )


@pytest.fixture(scope="module", params=ALL_METHOD_NAMES)
def fitted_method(request, small_space, small_split, tiny_config):
    """Each compared method, constructed by name and fitted on two sequences."""
    train, _ = small_split
    method = make_annotator(request.param, small_space, config=tiny_config)
    method.fit(train.sequences[:2])
    return method


@pytest.fixture(scope="module")
def ragged_batch(small_split):
    """Test sequences with duplicates, in deliberately unsorted length order."""
    _, test = small_split
    sequences = [labeled.sequence for labeled in test.sequences]
    # Replicate so coalescing has duplicates to fold, and shuffle the
    # length order so bucketing has to sort.
    batch = sequences + sequences[::-1] + sequences[:1]
    assert len(batch) >= 5
    return batch


# --------------------------------------------------------------------------
# bucket_indices
# --------------------------------------------------------------------------
class TestBucketIndices:
    def test_groups_by_ascending_length(self):
        buckets = bucket_indices([5, 1, 3, 2, 4], 2)
        assert buckets == [[1, 3], [2, 4], [0]]  # ragged tail of one

    def test_bucket_size_one_degenerates_to_singletons(self):
        assert bucket_indices([3, 1, 2], 1) == [[1], [2], [0]]

    def test_single_bucket_when_cap_exceeds_batch(self):
        assert bucket_indices([2, 1], 100) == [[1, 0]]

    def test_ties_break_by_position(self):
        assert bucket_indices([2, 2, 2], 2) == [[0, 1], [2]]

    def test_empty_input(self):
        assert bucket_indices([], 4) == []

    def test_rejects_non_positive_bucket_size(self):
        with pytest.raises(ValueError):
            bucket_indices([1, 2], 0)

    def test_every_index_appears_exactly_once(self):
        lengths = [7, 3, 3, 9, 1, 4, 4, 4]
        buckets = bucket_indices(lengths, 3)
        flat = sorted(index for bucket in buckets for index in bucket)
        assert flat == list(range(len(lengths)))


# --------------------------------------------------------------------------
# decode_icm_many against the per-sequence decoder
# --------------------------------------------------------------------------
class TestDecodeIcmMany:
    @pytest.fixture(scope="class")
    def engine_and_datas(self, small_space, small_split, tiny_config):
        annotator = make_annotator("C2MN", small_space, config=tiny_config)
        train, test = small_split
        annotator.fit(train.sequences[:2])
        datas = [
            annotator._prepared(labeled.sequence) for labeled in test.sequences
        ]
        return annotator._engine, datas

    def test_matches_per_sequence_decode_bitwise(self, engine_and_datas):
        engine, datas = engine_and_datas
        expected = [decode_icm(engine, data) for data in datas]
        assert decode_icm_many(engine, datas) == expected

    def test_ragged_lengths_and_duplicates(self, engine_and_datas):
        engine, datas = engine_and_datas
        ragged = datas + datas[:1] + datas[::-1]
        expected = [decode_icm(engine, data) for data in ragged]
        assert decode_icm_many(engine, ragged) == expected

    def test_empty_batch(self, engine_and_datas):
        engine, _ = engine_and_datas
        assert decode_icm_many(engine, []) == []

    def test_max_sweeps_matches_serial(self, engine_and_datas):
        engine, datas = engine_and_datas
        expected = [decode_icm(engine, data, max_sweeps=1) for data in datas]
        assert decode_icm_many(engine, datas, max_sweeps=1) == expected

    def test_rejects_mismatched_init_lengths(self, engine_and_datas):
        engine, datas = engine_and_datas
        with pytest.raises(ValueError):
            decode_icm_many(engine, datas, init_regions=[[0]])


# --------------------------------------------------------------------------
# The *_many pipeline, for every compared method
# --------------------------------------------------------------------------
class TestBatchedManyBitwise:
    def test_predict_labels_many_batched_matches_unbatched(
        self, fitted_method, ragged_batch
    ):
        expected = fitted_method.predict_labels_many(ragged_batch, policy=UNBATCHED)
        assert (
            fitted_method.predict_labels_many(ragged_batch, policy=BATCHED)
            == expected
        )

    def test_annotate_many_batched_matches_unbatched(
        self, fitted_method, ragged_batch
    ):
        expected = fitted_method.annotate_many(ragged_batch, policy=UNBATCHED)
        assert fitted_method.annotate_many(ragged_batch, policy=BATCHED) == expected

    @pytest.mark.parametrize("bucket_size", [1, 2, 3])
    def test_tiny_buckets_force_ragged_tails(
        self, fitted_method, ragged_batch, bucket_size
    ):
        expected = fitted_method.annotate_many(ragged_batch, policy=UNBATCHED)
        policy = ExecutionPolicy.serial(bucket_size=bucket_size)
        assert fitted_method.annotate_many(ragged_batch, policy=policy) == expected

    def test_empty_batch(self, fitted_method):
        assert fitted_method.annotate_many([], policy=BATCHED) == []
        assert fitted_method.predict_labels_many([], policy=BATCHED) == []

    def test_single_sequence_batch(self, fitted_method, ragged_batch):
        sequence = ragged_batch[0]
        assert fitted_method.annotate_many([sequence], policy=BATCHED) == [
            fitted_method.annotate(sequence)
        ]

    def test_coalesced_duplicates_do_not_share_results(
        self, fitted_method, ragged_batch
    ):
        batch = [ragged_batch[0]] * 3
        results = fitted_method.annotate_many(batch, policy=BATCHED)
        assert results[0] == results[1] == results[2]
        assert results[0] is not results[1]
        labels = fitted_method.predict_labels_many(batch, policy=BATCHED)
        labels[0][0].append(-1)  # mutate one copy
        assert labels[1] != labels[0]

    def test_region_grouping_forwards_through_buckets(
        self, fitted_method, ragged_batch, small_space
    ):
        grouping = {region_id: 0 for region_id in small_space.region_ids}
        expected = fitted_method.annotate_many(
            ragged_batch, policy=UNBATCHED, region_grouping=grouping
        )
        assert (
            fitted_method.annotate_many(
                ragged_batch, policy=BATCHED, region_grouping=grouping
            )
            == expected
        )


# --------------------------------------------------------------------------
# Cross-backend determinism (C2MN only — the full stack is the slow one;
# every other method shares the identical _map_buckets plumbing)
# --------------------------------------------------------------------------
class TestCrossBackendDeterminism:
    @pytest.fixture(scope="class")
    def c2mn(self, small_space, small_split, tiny_config):
        annotator = make_annotator("C2MN", small_space, config=tiny_config)
        train, _ = small_split
        annotator.fit(train.sequences[:2])
        return annotator

    @pytest.mark.parametrize("workers", [2, 3, 4])
    def test_thread_backend_bitwise(self, c2mn, ragged_batch, workers):
        expected = c2mn.annotate_many(ragged_batch, policy=UNBATCHED)
        policy = ExecutionPolicy.threads(workers)
        assert c2mn.annotate_many(ragged_batch, policy=policy) == expected

    @pytest.mark.parametrize("workers", [2, 4])
    def test_process_backend_bitwise(self, c2mn, ragged_batch, workers):
        expected = c2mn.annotate_many(ragged_batch, policy=UNBATCHED)
        policy = ExecutionPolicy.processes(workers)
        assert c2mn.annotate_many(ragged_batch, policy=policy) == expected

    def test_process_without_pool_reuse_bitwise(self, c2mn, ragged_batch):
        expected = c2mn.predict_labels_many(ragged_batch, policy=UNBATCHED)
        policy = ExecutionPolicy.processes(2, reuse_pool=False)
        assert c2mn.predict_labels_many(ragged_batch, policy=policy) == expected
