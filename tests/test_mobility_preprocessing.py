"""Tests for p-sequence preprocessing and dataset containers."""

import pytest

from repro.geometry.point import IndoorPoint
from repro.mobility.dataset import (
    AnnotationDataset,
    generate_dataset,
    k_fold_splits,
    train_test_split,
)
from repro.mobility.preprocessing import (
    filter_short_sequences,
    preprocess,
    split_on_time_gaps,
)
from repro.mobility.records import (
    EVENT_PASS,
    EVENT_STAY,
    LabeledSequence,
    PositioningRecord,
    PositioningSequence,
)


def _sequence(timestamps, object_id="obj"):
    records = [
        PositioningRecord(IndoorPoint(float(i), 0.0, 0), t)
        for i, t in enumerate(timestamps)
    ]
    return PositioningSequence(records, object_id=object_id, sort=False)


def _labeled(timestamps, object_id="obj"):
    sequence = _sequence(timestamps, object_id)
    n = len(timestamps)
    return LabeledSequence(
        sequence,
        region_labels=list(range(n)),
        event_labels=[EVENT_STAY if i % 2 == 0 else EVENT_PASS for i in range(n)],
    )


class TestSplitOnTimeGaps:
    def test_no_gap_returns_single_piece(self):
        pieces = split_on_time_gaps(_sequence([0, 10, 20, 30]), max_gap=60)
        assert len(pieces) == 1
        assert pieces[0].object_id == "obj"

    def test_split_at_large_gaps(self):
        pieces = split_on_time_gaps(_sequence([0, 10, 200, 210, 500]), max_gap=60)
        assert len(pieces) == 3
        assert [len(p) for p in pieces] == [2, 2, 1]
        assert pieces[0].object_id == "obj#0"
        assert pieces[2].object_id == "obj#2"

    def test_labels_split_alongside_records(self):
        labeled = _labeled([0, 10, 200, 210])
        pieces = split_on_time_gaps(labeled, max_gap=60)
        assert len(pieces) == 2
        assert pieces[0].region_labels == [0, 1]
        assert pieces[1].region_labels == [2, 3]
        assert pieces[1].event_labels == [EVENT_STAY, EVENT_PASS]

    def test_invalid_gap_rejected(self):
        with pytest.raises(ValueError):
            split_on_time_gaps(_sequence([0, 1]), max_gap=0)


class TestFilterShortSequences:
    def test_filters_by_duration(self):
        short = _sequence([0, 10])
        long = _sequence([0, 100, 200])
        kept = filter_short_sequences([short, long], min_duration=50)
        assert kept == [long]

    def test_works_on_labeled_sequences(self):
        short = _labeled([0, 10])
        long = _labeled([0, 100, 200])
        kept = filter_short_sequences([short, long], min_duration=50)
        assert kept == [long]

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            filter_short_sequences([], min_duration=-1)


class TestPreprocess:
    def test_paper_defaults_split_and_filter(self):
        # One object with a 10-minute hole: two pieces, only the long one kept.
        timestamps = list(range(0, 2400, 20)) + list(range(3600, 3700, 20))
        labeled = _labeled(timestamps)
        processed = preprocess([labeled], max_gap=180.0, min_duration=1800.0)
        assert len(processed) == 1
        assert processed[0].sequence.duration > 1800.0


class TestDataset:
    def test_statistics_of_empty_dataset(self, small_space):
        dataset = AnnotationDataset(space=small_space, sequences=[])
        stats = dataset.statistics()
        assert stats["sequences"] == 0
        assert stats["records"] == 0

    def test_generate_dataset_statistics(self, small_dataset):
        stats = small_dataset.statistics()
        assert stats["sequences"] == len(small_dataset)
        assert stats["records"] == small_dataset.total_records
        assert stats["avg_records_per_sequence"] > 1
        assert 0.0 < stats["stay_fraction"] < 1.0

    def test_generated_labels_are_consistent(self, small_dataset, small_space):
        valid_regions = set(small_space.region_ids)
        for labeled in small_dataset.sequences:
            assert set(labeled.region_labels) <= valid_regions
            assert set(labeled.event_labels) <= {EVENT_STAY, EVENT_PASS}

    def test_generate_dataset_deterministic(self, small_space):
        a = generate_dataset(small_space, objects=3, duration=600.0, min_duration=100.0, seed=7)
        b = generate_dataset(small_space, objects=3, duration=600.0, min_duration=100.0, seed=7)
        assert a.total_records == b.total_records

    def test_subset(self, small_dataset):
        subset = small_dataset.subset([0, 1])
        assert len(subset) == 2
        assert subset.space is small_dataset.space

    def test_train_test_split_partitions_sequences(self, small_dataset):
        train, test = train_test_split(small_dataset, train_fraction=0.5, seed=1)
        assert len(train) + len(test) == len(small_dataset)
        assert len(train) >= 1 and len(test) >= 1

    def test_train_test_split_invalid_fraction(self, small_dataset):
        with pytest.raises(ValueError):
            train_test_split(small_dataset, train_fraction=1.5)

    def test_k_fold_splits_cover_all_sequences(self, small_dataset):
        folds = k_fold_splits(small_dataset, folds=3, seed=2)
        assert len(folds) == 3
        total_test = sum(len(test) for _, test in folds)
        assert total_test == len(small_dataset)
        for train, test in folds:
            assert len(train) + len(test) == len(small_dataset)

    def test_k_fold_too_many_folds(self, small_dataset):
        with pytest.raises(ValueError):
            k_fold_splits(small_dataset, folds=len(small_dataset) + 1)
