"""End-to-end integration tests across the whole pipeline.

These tests exercise the paper's full story: simulate indoor mobility,
corrupt it into positioning sequences, train C2MN and the baselines, label a
held-out set, merge labels into m-semantics and answer queries — and check
the qualitative claims (joint labeling helps, density beats speed for events).
"""


from repro.baselines import SMoTAnnotator
from repro.core import C2MNAnnotator, C2MNConfig, make_cmn
from repro.evaluation.harness import MethodEvaluator, ground_truth_semantics
from repro.evaluation.metrics import score_sequences
from repro.queries import TkPRQ, top_k_precision


class TestEndToEnd:
    def test_full_pipeline_on_mall_data(self, small_space, small_split, fitted_annotator):
        train, test = small_split
        evaluator = MethodEvaluator()

        c2mn_result = evaluator.evaluate(
            fitted_annotator, train.sequences, test.sequences, fit=False
        )
        smot_result = evaluator.evaluate(
            SMoTAnnotator(small_space), train.sequences, test.sequences
        )

        # The coupled model should beat the simple speed-threshold baseline on
        # combined accuracy (the paper's headline qualitative claim).
        assert c2mn_result.scores.combined_accuracy >= smot_result.scores.combined_accuracy

        # Both produce valid m-semantics for every test sequence.
        assert len(c2mn_result.semantics) == len(test.sequences)
        assert all(semantics for semantics in c2mn_result.semantics)

    def test_c2mn_beats_or_matches_decoupled_cmn(self, small_space, small_split, fitted_annotator, fast_config):
        """Removing the segmentation cliques should not improve perfect accuracy."""
        train, test = small_split
        evaluator = MethodEvaluator(keep_predictions=False)
        cmn = make_cmn(small_space, config=fast_config)
        cmn_result = evaluator.evaluate(cmn, train.sequences, test.sequences)
        c2mn_result = evaluator.evaluate(
            fitted_annotator, train.sequences, test.sequences, fit=False
        )
        assert c2mn_result.scores.perfect_accuracy >= cmn_result.scores.perfect_accuracy - 0.05

    def test_annotations_support_popular_region_query(self, small_split, fitted_annotator):
        _, test = small_split
        truth = ground_truth_semantics(test.sequences)
        predicted = [
            fitted_annotator.annotate(labeled.sequence) for labeled in test.sequences
        ]
        query = TkPRQ(3)
        precision = top_k_precision(query.top_regions(predicted), query.top_regions(truth))
        assert precision >= 0.3

    def test_training_on_office_building(self, office_space, office_dataset):
        """The pipeline is venue-agnostic: it trains and predicts on the synthetic building."""
        from repro.mobility.dataset import train_test_split

        train, test = train_test_split(office_dataset, train_fraction=0.7, seed=2)
        annotator = C2MNAnnotator(
            office_space,
            config=C2MNConfig.fast(max_iterations=2, mcmc_samples=4, uncertainty_radius=8.0),
        )
        annotator.fit(train.sequences)
        predictions = [
            annotator.predict_labeled_sequence(labeled.sequence) for labeled in test.sequences
        ]
        scores = score_sequences(predictions, test.sequences)
        assert scores.region_accuracy > 0.3
        assert scores.event_accuracy > 0.5

    def test_annotations_are_reproducible(self, fitted_annotator, small_split):
        _, test = small_split
        sequence = test.sequences[0].sequence
        first = fitted_annotator.predict_labels(sequence)
        second = fitted_annotator.predict_labels(sequence)
        assert first == second
