"""Tests of the bench-report validator and the perf-regression compare gate."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "check_bench", Path(__file__).resolve().parent.parent / "tools" / "check_bench.py"
)
check_bench = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(check_bench)


def _report(suite="queries", results=None):
    return {
        "schema": "repro.bench/1",
        "suite": suite,
        "created_at": "2026-07-29T00:00:00+00:00",
        "python": "3.11.7",
        "platform": "test",
        "cpu_count": 4,
        "scale": "tiny",
        "workers": 1,
        "workload": {"sequences": 10, "records": 100},
        "results": results
        if results is not None
        else [
            _row("s:tkprq:scan", speedup=1.0),
            _row("s:tkprq:indexed", speedup=8.0),
        ],
    }


def _row(name, *, backend="serial", workers=1, speedup=1.0, agreement=True):
    return {
        "name": name,
        "backend": backend,
        "workers": workers,
        "seconds": 0.5,
        "speedup_vs_serial": speedup,
        "agreement": agreement,
    }


def _loadtest(**overrides):
    entry = {
        "run": "mall-tiny@30rps",
        "repetition": 0,
        "requests": 60,
        "failures": 0,
        "throughput_rps": 25.0,
        "avg_latency_ms": 30.0,
        "p50_latency_ms": 10.0,
        "p95_latency_ms": 80.0,
        "p99_latency_ms": 95.0,
        "max_latency_ms": 99.0,
        "rss_mb": 100.0,
        "failure_rate": 0.0,
    }
    entry.update(overrides)
    return entry


def _service_report(loadtest=None, **report_overrides):
    report = _report(
        suite="service",
        results=[
            _row("mall-tiny:annotate:inproc", speedup=1.0),
            _row("mall-tiny:annotate:http", speedup=0.8),
            _row("mall-tiny:loadtest", speedup=0.9),
        ],
    )
    report["service"] = [
        {
            "name": "mall-tiny",
            "seed": 1,
            "fingerprint": "f" * 16,
            "fit_seconds": 0.5,
            "loadtest": loadtest if loadtest is not None else _loadtest(),
            "endpoints": {"annotate": 10},
        }
    ]
    report.update(report_overrides)
    return report


class TestValidate:
    def test_queries_suite_valid_without_process_rows(self):
        assert check_bench.validate_report(_report(), "r") == []

    def test_runtime_suite_requires_process_rows(self):
        problems = check_bench.validate_report(_report(suite="runtime"), "r")
        assert any("process-backend" in problem for problem in problems)

    def test_disagreement_fails_validation(self):
        report = _report(results=[_row("q:scan"), _row("q:indexed", agreement=False)])
        problems = check_bench.validate_report(report, "r")
        assert any("agreement" in problem for problem in problems)

    def test_service_suite_valid_with_details(self):
        assert check_bench.validate_report(_service_report(), "r") == []

    def test_service_suite_requires_details_section(self):
        report = _service_report()
        del report["service"]
        problems = check_bench.validate_report(report, "r")
        assert any("'service' section" in problem for problem in problems)

    def test_service_loadtest_failures_are_zero_tolerance(self):
        report = _service_report(loadtest=_loadtest(failures=3, failure_rate=0.05))
        problems = check_bench.validate_report(report, "r")
        assert any("failure-free" in problem for problem in problems)

    def test_service_loadtest_must_carry_run_table_columns(self):
        broken = _loadtest()
        del broken["p95_latency_ms"]
        problems = check_bench.validate_report(_service_report(loadtest=broken), "r")
        assert any("p95_latency_ms" in problem for problem in problems)


class TestCompare:
    def test_identical_reports_pass(self):
        assert check_bench.compare_reports(_report(), _report(), 0.25, "r") == []

    def test_speedup_regression_beyond_tolerance_fails(self):
        current = _report(
            results=[_row("s:tkprq:scan"), _row("s:tkprq:indexed", speedup=3.0)]
        )
        problems = check_bench.compare_reports(current, _report(), 0.25, "r")
        assert any("regressed" in problem for problem in problems)

    def test_speedup_within_tolerance_passes(self):
        current = _report(
            results=[_row("s:tkprq:scan"), _row("s:tkprq:indexed", speedup=6.5)]
        )
        assert check_bench.compare_reports(current, _report(), 0.25, "r") == []

    def test_missing_row_fails(self):
        current = _report(results=[_row("s:tkprq:scan")])
        problems = check_bench.compare_reports(current, _report(), 0.25, "r")
        assert any("missing" in problem for problem in problems)

    def test_new_rows_are_fine(self):
        current = _report(
            results=[
                _row("s:tkprq:scan"),
                _row("s:tkprq:indexed", speedup=8.0),
                _row("s:new-metric", speedup=1.0),
            ]
        )
        assert check_bench.compare_reports(current, _report(), 0.25, "r") == []

    def test_agreement_regression_is_zero_tolerance(self):
        current = _report(
            results=[
                _row("s:tkprq:scan"),
                _row("s:tkprq:indexed", speedup=8.0, agreement=False),
            ]
        )
        problems = check_bench.compare_reports(current, _report(), 0.99, "r")
        assert any("agreement regressed" in problem for problem in problems)

    def test_suite_mismatch_fails(self):
        problems = check_bench.compare_reports(
            _report(suite="runtime"), _report(suite="queries"), 0.25, "r"
        )
        assert any("does not match" in problem for problem in problems)


class TestMain:
    def _write(self, tmp_path, name, report):
        path = tmp_path / name
        path.write_text(json.dumps(report))
        return path

    def test_end_to_end_compare_pass_and_fail(self, tmp_path):
        baseline_dir = tmp_path / "baselines"
        baseline_dir.mkdir()
        self._write(baseline_dir, "BENCH_queries.json", _report())
        good = self._write(tmp_path, "BENCH_queries.json", _report())
        assert check_bench.main(
            [str(good), "--compare", str(baseline_dir), "--tolerance", "0.25"]
        ) == 0
        bad = self._write(
            tmp_path,
            "BENCH_bad.json",
            _report(results=[_row("s:tkprq:scan"), _row("s:tkprq:indexed", speedup=2.0)]),
        )
        assert check_bench.main(
            [str(bad), "--compare", str(baseline_dir), "--tolerance", "0.25"]
        ) == 1

    def test_missing_baseline_fails(self, tmp_path):
        report = self._write(tmp_path, "BENCH_queries.json", _report())
        empty = tmp_path / "empty"
        empty.mkdir()
        assert check_bench.main([str(report), "--compare", str(empty)]) == 1

    def test_bad_tolerance_rejected(self, tmp_path):
        report = self._write(tmp_path, "BENCH_queries.json", _report())
        with pytest.raises(SystemExit):
            check_bench.main([str(report), "--tolerance", "1.5"])


def _precision_cell(**overrides):
    cell = {
        "scenario": "mall-tiny",
        "seed": 5,
        "fingerprint": "abc",
        "fit_seconds": 0.5,
        "query": "tkprq",
        "k": 5,
        "queries": 3,
        "precision": [0.8, 0.9, 1.0],
        "recall": [0.7, 0.8, 0.9],
    }
    cell.update(overrides)
    return cell


class TestPrecisionSection:
    def test_section_is_optional(self):
        assert check_bench.validate_report(_report(), "r") == []

    def test_valid_section_passes(self):
        report = _report()
        report["precision"] = [_precision_cell(), _precision_cell(query="tkfrpq")]
        assert check_bench.validate_report(report, "r") == []

    def test_empty_section_fails(self):
        report = _report()
        report["precision"] = []
        problems = check_bench.validate_report(report, "r")
        assert any("non-empty list" in problem for problem in problems)

    def test_missing_keys_fail(self):
        cell = _precision_cell()
        del cell["recall"]
        report = _report()
        report["precision"] = [cell]
        problems = check_bench.validate_report(report, "r")
        assert any("missing key 'recall'" in problem for problem in problems)

    def test_unknown_query_kind_fails(self):
        report = _report()
        report["precision"] = [_precision_cell(query="topk")]
        problems = check_bench.validate_report(report, "r")
        assert any("'tkprq' or 'tkfrpq'" in problem for problem in problems)

    def test_non_positive_k_fails(self):
        report = _report()
        report["precision"] = [_precision_cell(k=0)]
        problems = check_bench.validate_report(report, "r")
        assert any("positive int" in problem for problem in problems)

    def test_score_outside_unit_interval_fails(self):
        report = _report()
        report["precision"] = [_precision_cell(precision=[0.5, 1.2, 0.9])]
        problems = check_bench.validate_report(report, "r")
        assert any("[0, 1]" in problem for problem in problems)

    def test_unequal_observation_lists_fail(self):
        report = _report()
        report["precision"] = [_precision_cell(recall=[0.5])]
        problems = check_bench.validate_report(report, "r")
        assert any("parallel lists" in problem for problem in problems)

    def test_section_only_validated_for_queries_suite(self):
        report = _report(suite="runtime")
        report["precision"] = []  # ignored outside the queries suite
        problems = check_bench.validate_report(report, "r")
        assert not any("precision" in problem for problem in problems)
