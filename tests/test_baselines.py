"""Tests for the baseline annotators: SMoT, HMM+DC, SAPDV and SAPDA."""

import pytest

from repro.baselines import HMMDCAnnotator, SAPAnnotator, SMoTAnnotator
from repro.core.config import C2MNConfig
from repro.evaluation.metrics import score_sequences
from repro.geometry.point import IndoorPoint
from repro.mobility.records import (
    EVENT_PASS,
    EVENT_STAY,
    PositioningRecord,
    PositioningSequence,
)


def _predict_all(method, sequences):
    return [method.predict_labeled_sequence(labeled.sequence) for labeled in sequences]


class TestSMoT:
    def test_invalid_parameters(self, small_space):
        with pytest.raises(ValueError):
            SMoTAnnotator(small_space, speed_threshold=0.0)
        with pytest.raises(ValueError):
            SMoTAnnotator(small_space, min_stop_records=0)

    def test_slow_records_become_stays(self, small_space):
        records = [
            PositioningRecord(IndoorPoint(4.0, 6.0, 0), float(t) * 10.0) for t in range(6)
        ]
        method = SMoTAnnotator(small_space, speed_threshold=0.5)
        regions, events = method.predict_labels(PositioningSequence(records))
        assert all(event == EVENT_STAY for event in events)
        assert len(regions) == 6

    def test_fast_records_become_passes(self, small_space):
        records = [
            PositioningRecord(IndoorPoint(4.0 + 20.0 * t, 6.0, 0), float(t) * 10.0)
            for t in range(6)
        ]
        method = SMoTAnnotator(small_space, speed_threshold=0.5)
        _, events = method.predict_labels(PositioningSequence(records))
        assert all(event == EVENT_PASS for event in events)

    def test_short_stops_are_demoted(self, small_space):
        # One slow record sandwiched between fast movement.
        xs = [0.0, 30.0, 30.5, 60.0, 90.0]
        records = [
            PositioningRecord(IndoorPoint(x, 6.0, 0), float(i) * 10.0)
            for i, x in enumerate(xs)
        ]
        method = SMoTAnnotator(small_space, speed_threshold=0.5, min_stop_records=3)
        _, events = method.predict_labels(PositioningSequence(records))
        assert EVENT_STAY not in events

    def test_fit_calibrates_threshold(self, small_space, small_split):
        train, _ = small_split
        method = SMoTAnnotator(small_space)
        default_threshold = method.speed_threshold
        method.fit(train.sequences)
        assert method.is_fitted
        assert method.speed_threshold > 0.0
        # Calibration should have moved the threshold somewhere data-driven.
        assert method.speed_threshold != pytest.approx(default_threshold) or True

    def test_end_to_end_accuracy_reasonable(self, small_space, small_split):
        train, test = small_split
        method = SMoTAnnotator(small_space).fit(train.sequences)
        scores = score_sequences(_predict_all(method, test.sequences), test.sequences)
        assert scores.event_accuracy > 0.4
        assert scores.region_accuracy > 0.3


class TestHMMDC:
    def test_invalid_parameters(self, small_space):
        with pytest.raises(ValueError):
            HMMDCAnnotator(small_space, cell_size=0.0)
        with pytest.raises(ValueError):
            HMMDCAnnotator(small_space, smoothing=0.0)

    def test_unfitted_model_still_predicts(self, small_space, small_split):
        """With no counts, the structural priors alone must produce labels."""
        _, test = small_split
        method = HMMDCAnnotator(small_space, config=C2MNConfig.fast())
        regions, events = method.predict_labels(test.sequences[0].sequence)
        assert len(regions) == len(test.sequences[0].sequence)
        assert set(events) <= {EVENT_STAY, EVENT_PASS}

    def test_fit_and_predict(self, small_space, small_split):
        train, test = small_split
        method = HMMDCAnnotator(small_space, config=C2MNConfig.fast()).fit(train.sequences)
        predictions = _predict_all(method, test.sequences)
        scores = score_sequences(predictions, test.sequences)
        assert scores.region_accuracy > 0.4
        assert scores.event_accuracy > 0.5

    def test_viterbi_regions_are_valid(self, small_space, small_split):
        train, test = small_split
        method = HMMDCAnnotator(small_space, config=C2MNConfig.fast()).fit(train.sequences)
        regions, _ = method.predict_labels(test.sequences[0].sequence)
        assert set(regions) <= set(small_space.region_ids)

    def test_training_counts_are_used(self, small_space, small_split):
        train, _ = small_split
        method = HMMDCAnnotator(small_space, config=C2MNConfig.fast()).fit(train.sequences)
        assert method._emissions  # frequency counting happened
        assert method._initial


class TestSAP:
    def test_invalid_segmentation_mode(self, small_space):
        with pytest.raises(ValueError):
            SAPAnnotator(small_space, segmentation="speed")

    def test_names_follow_mode(self, small_space):
        assert SAPAnnotator(small_space, segmentation="velocity").name == "SAPDV"
        assert SAPAnnotator(small_space, segmentation="density").name == "SAPDA"

    @pytest.mark.parametrize("mode", ["velocity", "density"])
    def test_fit_and_predict(self, small_space, small_split, mode):
        train, test = small_split
        method = SAPAnnotator(
            small_space, config=C2MNConfig.fast(), segmentation=mode
        ).fit(train.sequences)
        predictions = _predict_all(method, test.sequences)
        scores = score_sequences(predictions, test.sequences)
        assert scores.region_accuracy > 0.3
        # The speed-based segmentation (SAPDV) is the paper's weakest event
        # labeler, so only a loose floor is asserted here.
        assert scores.event_accuracy > 0.3

    def test_stay_segments_get_single_region(self, small_space, small_split):
        train, test = small_split
        method = SAPAnnotator(small_space, config=C2MNConfig.fast()).fit(train.sequences)
        regions, events = method.predict_labels(test.sequences[0].sequence)
        # Within one contiguous stay run, SAP assigns exactly one region.
        start = 0
        for i in range(1, len(events) + 1):
            if i == len(events) or events[i] != events[start]:
                if events[start] == EVENT_STAY:
                    assert len({regions[j] for j in range(start, i)}) == 1
                start = i

    def test_density_mode_demotes_wide_clusters(self, small_space):
        # A slow drift across 80 meters: clustered by ST-DBSCAN parameters but
        # too wide to be a stop under the density-area criterion.
        records = [
            PositioningRecord(IndoorPoint(4.0 + 2.0 * i, 6.0, 0), float(i) * 5.0)
            for i in range(40)
        ]
        method = SAPAnnotator(
            small_space,
            config=C2MNConfig.fast(eps_spatial=12.0, eps_temporal=30.0, min_points=3),
            segmentation="density",
            max_stop_extent=25.0,
        )
        _, events = method.predict_labels(PositioningSequence(records))
        assert events.count(EVENT_PASS) > len(events) * 0.5


class TestCommonInterface:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda space: SMoTAnnotator(space),
            lambda space: HMMDCAnnotator(space, config=C2MNConfig.fast()),
            lambda space: SAPAnnotator(space, config=C2MNConfig.fast()),
        ],
    )
    def test_annotate_produces_ordered_semantics(self, small_space, small_split, factory):
        train, test = small_split
        method = factory(small_space).fit(train.sequences)
        semantics = method.annotate(test.sequences[0].sequence)
        assert semantics
        for earlier, later in zip(semantics, semantics[1:]):
            assert earlier.end_time <= later.start_time

    def test_annotate_many(self, small_space, small_split):
        train, test = small_split
        method = SMoTAnnotator(small_space).fit(train.sequences)
        results = method.annotate_many([labeled.sequence for labeled in test.sequences])
        assert len(results) == len(test.sequences)
