"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.clustering.stdbscan import DENSITY_BORDER, DENSITY_CORE, DENSITY_NOISE, STDBSCAN
from repro.crf.cliques import segment_containing, segments_of_labels
from repro.evaluation.metrics import evaluate_labels
from repro.geometry.circle import Circle, overlap_fraction
from repro.geometry.point import IndoorPoint, Point
from repro.geometry.polygon import BoundingBox, Rectangle
from repro.geometry.rtree import RTree
from repro.mobility.records import (
    EVENT_PASS,
    EVENT_STAY,
    LabeledSequence,
    PositioningRecord,
    PositioningSequence,
    merge_labels_to_semantics,
)
from repro.queries.precision import top_k_precision

coordinates = st.floats(min_value=-1000, max_value=1000, allow_nan=False, allow_infinity=False)
small_floats = st.floats(min_value=0.1, max_value=100, allow_nan=False, allow_infinity=False)


# ---------------------------------------------------------------- geometry
@given(x1=coordinates, y1=coordinates, x2=coordinates, y2=coordinates)
def test_point_distance_is_symmetric_and_nonnegative(x1, y1, x2, y2):
    a, b = Point(x1, y1), Point(x2, y2)
    assert a.distance_to(b) >= 0.0
    assert a.distance_to(b) == b.distance_to(a)


@given(
    x1=coordinates, y1=coordinates,
    x2=coordinates, y2=coordinates,
    x3=coordinates, y3=coordinates,
)
def test_point_distance_triangle_inequality(x1, y1, x2, y2, x3, y3):
    a, b, c = Point(x1, y1), Point(x2, y2), Point(x3, y3)
    assert a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-6


@given(
    min_x=coordinates, min_y=coordinates,
    width=small_floats, height=small_floats,
)
def test_rectangle_contains_its_centroid_and_area_positive(min_x, min_y, width, height):
    rect = Rectangle(min_x, min_y, min_x + width, min_y + height)
    assert rect.area > 0.0
    assert rect.contains_point(rect.centroid)


@given(
    cx=coordinates, cy=coordinates, radius=small_floats,
    min_x=coordinates, min_y=coordinates, width=small_floats, height=small_floats,
)
@settings(max_examples=60)
def test_overlap_fraction_is_a_fraction(cx, cy, radius, min_x, min_y, width, height):
    circle = Circle(Point(cx, cy), radius)
    rect = Rectangle(min_x, min_y, min_x + width, min_y + height)
    fraction = overlap_fraction(circle, rect)
    assert 0.0 <= fraction <= 1.0


@given(
    boxes=st.lists(
        st.tuples(coordinates, coordinates, small_floats, small_floats),
        min_size=1,
        max_size=40,
    ),
    probe=st.tuples(coordinates, coordinates, small_floats, small_floats),
)
@settings(max_examples=40)
def test_rtree_query_matches_brute_force(boxes, probe):
    tree = RTree(max_entries=5)
    entries = []
    for i, (x, y, w, h) in enumerate(boxes):
        box = BoundingBox(x, y, x + w, y + h)
        entries.append((box, i))
        tree.insert(box, i)
    px, py, pw, ph = probe
    query = BoundingBox(px, py, px + pw, py + ph)
    brute = {payload for box, payload in entries if box.intersects(query)}
    assert set(tree.query_bbox(query)) == brute


# ---------------------------------------------------------------- sequences
labels_strategy = st.lists(st.integers(min_value=0, max_value=4), min_size=1, max_size=60)


@given(labels=labels_strategy)
def test_segments_partition_any_label_sequence(labels):
    segments = segments_of_labels(labels)
    covered = [i for start, end in segments for i in range(start, end + 1)]
    assert covered == list(range(len(labels)))
    for start, end in segments:
        run = {labels[i] for i in range(start, end + 1)}
        assert len(run) == 1
    # Neighbouring segments carry different labels (maximality).
    for (s1, e1), (s2, e2) in zip(segments, segments[1:]):
        assert labels[e1] != labels[s2]


@given(labels=labels_strategy, index=st.integers(min_value=0, max_value=59))
def test_segment_containing_consistent_with_segments(labels, index):
    if index >= len(labels):
        index = index % len(labels)
    start, end = segment_containing(labels, index)
    assert start <= index <= end
    assert (start, end) in segments_of_labels(labels)


@given(
    regions=st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=40),
    events=st.lists(st.sampled_from([EVENT_STAY, EVENT_PASS]), min_size=1, max_size=40),
)
def test_label_and_merge_invariants(regions, events):
    n = min(len(regions), len(events))
    regions, events = regions[:n], events[:n]
    records = [
        PositioningRecord(IndoorPoint(float(i), 0.0, 0), float(i) * 5.0) for i in range(n)
    ]
    labeled = LabeledSequence(PositioningSequence(records), regions, events)
    semantics = merge_labels_to_semantics(labeled)
    # Every record is covered exactly once.
    assert sum(ms.record_count for ms in semantics) == n
    # Periods are ordered and non-overlapping (Definition 3).
    for earlier, later in zip(semantics, semantics[1:]):
        assert earlier.end_time <= later.start_time
        assert not earlier.overlaps(later)
    # Merging is maximal: consecutive m-semantics differ in region or event.
    for earlier, later in zip(semantics, semantics[1:]):
        assert (earlier.region_id, earlier.event) != (later.region_id, later.event)


# ------------------------------------------------------------------ metrics
@given(
    n=st.integers(min_value=1, max_value=50),
    seed=st.integers(min_value=0, max_value=1000),
    tradeoff=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
)
def test_accuracy_metrics_bounds_and_tradeoff(n, seed, tradeoff):
    import random

    rng = random.Random(seed)
    true_regions = [rng.randint(0, 3) for _ in range(n)]
    true_events = [rng.choice([EVENT_STAY, EVENT_PASS]) for _ in range(n)]
    pred_regions = [rng.randint(0, 3) for _ in range(n)]
    pred_events = [rng.choice([EVENT_STAY, EVENT_PASS]) for _ in range(n)]
    scores = evaluate_labels(
        pred_regions, pred_events, true_regions, true_events, tradeoff=tradeoff
    )
    assert 0.0 <= scores.perfect_accuracy <= min(scores.region_accuracy, scores.event_accuracy)
    assert max(scores.region_accuracy, scores.event_accuracy) <= 1.0
    expected_ca = tradeoff * scores.region_accuracy + (1 - tradeoff) * scores.event_accuracy
    assert math.isclose(scores.combined_accuracy, expected_ca, rel_tol=1e-9, abs_tol=1e-9)


@given(
    predicted=st.lists(st.integers(min_value=0, max_value=20), max_size=20),
    truth=st.lists(st.integers(min_value=0, max_value=20), max_size=20),
)
def test_top_k_precision_bounds(predicted, truth):
    precision = top_k_precision(predicted, truth)
    assert 0.0 <= precision <= 1.0
    if set(truth) and set(truth) <= set(predicted):
        assert precision == 1.0


# --------------------------------------------------------------- clustering
@given(
    points=st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=200, allow_nan=False),
            st.floats(min_value=0, max_value=200, allow_nan=False),
            st.floats(min_value=0, max_value=3600, allow_nan=False),
        ),
        min_size=1,
        max_size=40,
    )
)
@settings(max_examples=40)
def test_stdbscan_labels_are_consistent(points):
    records = [
        PositioningRecord(IndoorPoint(x, y, 0), t) for x, y, t in points
    ]
    result = STDBSCAN(eps_spatial=10.0, eps_temporal=120.0, min_points=3).fit(records)
    assert len(result.cluster_ids) == len(records)
    assert len(result.density_labels) == len(records)
    for cluster_id, label in zip(result.cluster_ids, result.density_labels):
        if label == DENSITY_NOISE:
            assert cluster_id == -1
        else:
            assert cluster_id >= 0
            assert label in (DENSITY_CORE, DENSITY_BORDER)
    # Cluster ids are consecutive starting at 0.
    used = sorted({c for c in result.cluster_ids if c >= 0})
    assert used == list(range(len(used)))


# ------------------------------------------------- simulator and scenarios
@pytest.fixture(scope="module")
def pb_venue():
    """A micro venue shared by the simulator/scenario properties below."""
    from repro.indoor.builders import build_mall_space

    return build_mall_space(floors=1, shops_per_side=3)


simulator_profiles = st.sampled_from(["waypoint", "commuter", "crowd", "surge"])


@given(
    profile=simulator_profiles,
    seed=st.integers(min_value=0, max_value=10_000),
    min_stay=st.floats(min_value=5.0, max_value=40.0, allow_nan=False),
    stay_span=st.floats(min_value=0.0, max_value=120.0, allow_nan=False),
)
@settings(max_examples=15, deadline=None)
def test_simulator_invariants(pb_venue, profile, seed, min_stay, stay_span):
    """Ground truth obeys the simulator contract for every mobility profile.

    * timestamps are strictly increasing and at least one sample period
      apart (the per-second recording cadence);
    * every emitted region id exists in the venue;
    * stay durations respect ``[min_stay, max_stay]``: every stay run lasts
      at most ``max_stay`` and every run that the simulation end did not
      truncate lasts at least ``min_stay`` (both up to the one-second
      sampling quantisation).
    """
    from repro.mobility.simulator import (
        CommuterSimulator,
        CrowdSurgeSimulator,
        PeakHoursSimulator,
        WaypointSimulator,
    )

    max_stay = min_stay + stay_span
    simulator_cls = {
        "waypoint": WaypointSimulator,
        "commuter": CommuterSimulator,
        "crowd": PeakHoursSimulator,
        "surge": CrowdSurgeSimulator,
    }[profile]
    kwargs = {"surges": ((100.0, 250.0),)} if profile == "surge" else {}
    simulator = simulator_cls(
        pb_venue, min_stay=min_stay, max_stay=max_stay, seed=seed, **kwargs
    )
    trajectory = simulator.simulate_object("pb-0", duration=400.0)

    timestamps = [point.timestamp for point in trajectory.points]
    assert all(b > a for a, b in zip(timestamps, timestamps[1:]))
    assert all(b - a >= 1.0 - 1e-9 for a, b in zip(timestamps, timestamps[1:]))

    region_ids = set(pb_venue.region_ids)
    assert all(point.region_id in region_ids for point in trajectory.points)

    visits = trajectory.stay_visits()
    for region, begin, end in visits:
        assert region in region_ids
        # A recorded stay run never exceeds the sampled stay duration
        # (duration <= max_stay up to the one-second sampling quantisation).
        assert (end - begin) <= max_stay + 1.0
    # Runs the simulation end could not have truncated respect min_stay too.
    for region, begin, end in visits[:-1]:
        assert (end - begin) >= min_stay - 1.0 - 1e-9


@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=5, deadline=None)
def test_scenario_materialisation_is_seed_deterministic(seed):
    """Same (scenario, seed) → bitwise-equal datasets and fingerprints."""
    from repro.scenarios import ScenarioSpec, VenueSpec, MobilitySpec, DeviceSpec

    spec = ScenarioSpec(
        name="pb-micro",
        venue=VenueSpec("mall", params={"floors": 1, "shops_per_side": 3}),
        mobility=MobilitySpec("waypoint", min_stay=20.0, max_stay=90.0),
        device=DeviceSpec(max_period=6.0, error=3.0),
        objects=2,
        duration=400.0,
        min_duration=60.0,
    )
    first = spec.materialize(seed)
    second = spec.materialize(seed)
    assert first.fingerprint == second.fingerprint
    for a, b in zip(first.dataset.sequences, second.dataset.sequences):
        assert a.region_labels == b.region_labels
        assert a.event_labels == b.event_labels
        assert [(r.timestamp, r.x, r.y, r.floor) for r in a.sequence] == [
            (r.timestamp, r.x, r.y, r.floor) for r in b.sequence
        ]
    region_ids = set(first.space.region_ids)
    for labeled in first.dataset.sequences:
        assert set(labeled.region_labels) <= region_ids
