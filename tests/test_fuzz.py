"""Self-tests for the scenario fuzzer (:mod:`repro.scenarios.fuzz`).

Three layers:

* the *sampler* is seed-deterministic and its specs round-trip through the
  JSON artifact format;
* the *oracle layer* holds over a pinned corpus — N=25 specs from a fixed
  seed materialise with zero violations, which is the same guarantee the
  nightly fuzz job extends to fresh seeds;
* the *shrinker* reproduces a planted failure: given an oracle that trips
  on one adversarial knob, the minimal spec keeps exactly that knob and
  sheds everything else (objects, duration, mobility profile, venue).
"""

import json

import pytest

from repro.scenarios.fuzz import (
    ORACLES,
    check_spec,
    run_fuzz,
    sample_spec,
    shrink_spec,
    spec_from_dict,
    spec_to_dict,
)
from repro.scenarios.spec import MOBILITY_PROFILES, VENUE_ARCHETYPES

#: The corpus the suite pins; the nightly job fuzzes fresh seeds on top.
PINNED_SEED = 20260807
PINNED_COUNT = 25


# ----------------------------------------------------------------- sampler
class TestSampler:
    def test_sample_stream_is_seed_deterministic(self):
        import random

        first = [sample_spec(random.Random(5), i) for i in range(10)]
        second = [sample_spec(random.Random(5), i) for i in range(10)]
        other = [sample_spec(random.Random(6), i) for i in range(10)]
        assert first == second
        assert first != other

    def test_sampler_covers_the_whole_composition_space(self):
        import random

        rng = random.Random(1)
        specs = [sample_spec(rng, i) for i in range(120)]
        assert {spec.venue.archetype for spec in specs} == set(VENUE_ARCHETYPES)
        assert {spec.mobility.profile for spec in specs} == set(MOBILITY_PROFILES)
        devices = [spec.device for spec in specs]
        assert any(d.multipath_probability > 0.0 for d in devices)
        assert any(d.clock_skew > 0.0 for d in devices)
        assert any(d.clock_jitter > 0.0 for d in devices)
        assert any(d.duplicate_probability > 0.0 for d in devices)
        assert any(not d.adversarial for d in devices)

    def test_spec_dict_round_trips_through_json(self):
        import random

        rng = random.Random(9)
        for index in range(30):
            spec = sample_spec(rng, index)
            payload = json.loads(json.dumps(spec_to_dict(spec)))
            assert spec_from_dict(payload) == spec


# ------------------------------------------------------------ oracle layer
class TestOracles:
    def test_pinned_corpus_has_zero_violations(self):
        """The acceptance gate: N=25 sampled specs, every oracle green."""
        report = run_fuzz(PINNED_COUNT, PINNED_SEED, shrink=False)
        assert report.executed == PINNED_COUNT
        assert report.ok, [
            (failure.name, failure.violations) for failure in report.failures
        ]

    def test_oracle_registry_is_complete(self):
        assert list(ORACLES) == [
            "topology",
            "preprocessing",
            "streaming",
            "backends",
            "queries",
            "replay",
        ]

    def test_oracle_exceptions_are_violations(self):
        import random

        spec = sample_spec(random.Random(2), 0)

        def exploding(ctx):
            raise RuntimeError("oracle blew up")

        violations = check_spec(
            spec, oracle_names=[], extra_oracles=[("exploding", exploding)]
        )
        assert len(violations) == 1
        assert "exploding" in violations[0] and "RuntimeError" in violations[0]

    def test_time_budget_stops_sampling(self):
        report = run_fuzz(10, 3, time_budget=0.0)
        assert report.executed == 0
        assert not report.ok  # an empty run is not a passing run


# ---------------------------------------------------------------- shrinker
def _multipath_planted(ctx):
    """A planted failure: trips whenever multipath corruption is enabled."""
    if ctx.spec.device.multipath_probability > 0.0:
        return ["planted multipath failure"]
    return []


class TestShrinking:
    def test_planted_failure_is_caught_and_shrunk_to_minimal(self):
        report = run_fuzz(
            10, 7, oracle_names=[], extra_oracles=[("planted", _multipath_planted)]
        )
        failures = report.failures
        assert failures, "the sampler must hit multipath within 10 specs at seed 7"
        for failure in failures:
            assert any("planted" in v for v in failure.violations)
            shrunk = spec_from_dict(failure.shrunk)
            # The minimal spec keeps exactly the failing knob...
            assert shrunk.device.multipath_probability > 0.0
            # ...and sheds everything irrelevant to the failure.
            assert shrunk.objects == 1
            assert shrunk.duration <= 320.0
            assert shrunk.mobility.profile == "waypoint"
            assert shrunk.mobility.params == ()
            assert shrunk.venue.archetype == "mall"
            assert shrunk.device.clock_skew == 0.0
            assert shrunk.device.clock_jitter == 0.0
            assert shrunk.device.duplicate_probability == 0.0
            assert shrunk.device.dropout_probability == 0.0
            # The artifact alone still reproduces the failure.
            assert check_spec(
                shrunk,
                oracle_names=[],
                extra_oracles=[("planted", _multipath_planted)],
            )

    def test_shrink_reaches_a_fixed_point(self):
        import random

        from repro.scenarios.fuzz import _shrink_candidates

        spec = sample_spec(random.Random(11), 0)
        minimal = shrink_spec(spec, lambda candidate: True)  # everything "fails"
        # No single mutation of the result is accepted any more.
        assert shrink_spec(minimal, lambda candidate: True) == minimal
        assert list(_shrink_candidates(minimal)) == []

    def test_shrink_keeps_the_original_when_nothing_smaller_fails(self):
        import random

        spec = sample_spec(random.Random(12), 0)
        assert shrink_spec(spec, lambda candidate: False) == spec


# --------------------------------------------------------------------- CLI
class TestFuzzCli:
    def test_fuzz_cli_green_run_writes_artifact(self, tmp_path, capsys):
        from repro.scenarios.__main__ import main as scenarios_main

        artifact = tmp_path / "fuzz.json"
        assert (
            scenarios_main(["--fuzz", "2", "--seed", "3", "--fuzz-artifact", str(artifact)])
            == 0
        )
        out = capsys.readouterr().out
        assert "fuzz: 2/2 specs from seed 3" in out
        payload = json.loads(artifact.read_text())
        assert payload["ok"] is True
        assert payload["executed"] == 2
        assert payload["failures"] == []
        # Every result's spec is a loadable artifact.
        for result in payload["results"]:
            spec_from_dict(result["spec"])

    def test_fuzz_cli_rejects_nonpositive_count(self, capsys):
        from repro.scenarios.__main__ import main as scenarios_main

        with pytest.raises(ValueError, match="count"):
            scenarios_main(["--fuzz", "-1", "--seed", "3"])
        capsys.readouterr()
