"""Golden-trace regression suite over the scenario catalogue.

``tests/data/golden_scenarios.json`` commits, per registered scenario, the
content fingerprint of its materialisation at the spec's default seed
(venue geometry + every p-sequence's raw records + ground-truth labels).
These tests re-materialise every scenario and assert the digest *bitwise*,
so any drift anywhere in the floorplan builders, the mobility simulators,
the positioning-error model or the preprocessing fails tier-1 immediately —
before it silently shifts every accuracy number in the benchmarks.

After an *intentional* pipeline change, regenerate with::

    python -m repro.scenarios --write-goldens tests/data/golden_scenarios.json

and review the diff: only the scenarios your change should affect may move.
"""

import json
from pathlib import Path

import pytest

from repro.scenarios import (
    MOBILITY_PROFILES,
    VENUE_ARCHETYPES,
    get_scenario,
    scenario_names,
    scenario_specs,
)
from repro.scenarios.catalogue import MIN_ARCHETYPES, MIN_PROFILES, MIN_SCENARIOS

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_scenarios.json"


@pytest.fixture(scope="module")
def goldens():
    return json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))


@pytest.fixture()
def materialized(scenario_cache):
    """Materialise each scenario at most once for the whole *session*."""
    return scenario_cache


def test_golden_file_covers_exactly_the_registry(goldens):
    assert sorted(goldens) == scenario_names(), (
        "the golden file and the registry disagree; regenerate with "
        "python -m repro.scenarios --write-goldens tests/data/golden_scenarios.json"
    )


def test_catalogue_breadth():
    """The acceptance floor: ≥10 scenarios over ≥7 venues and ≥4 profiles."""
    specs = scenario_specs()
    assert len(specs) >= MIN_SCENARIOS
    archetypes = {spec.venue.archetype for spec in specs}
    profiles = {spec.mobility.profile for spec in specs}
    assert len(archetypes) >= MIN_ARCHETYPES
    assert archetypes <= set(VENUE_ARCHETYPES)
    assert len(profiles) >= MIN_PROFILES
    assert profiles <= set(MOBILITY_PROFILES)


def test_every_archetype_and_adversarial_regime_has_a_golden():
    """The catalogue pins every venue archetype and every adversarial regime."""
    specs = scenario_specs()
    assert {spec.venue.archetype for spec in specs} == set(VENUE_ARCHETYPES)
    devices = [spec.device for spec in specs]
    assert any(device.multipath_probability > 0.0 for device in devices)
    assert any(device.clock_skew > 0.0 or device.clock_jitter > 0.0 for device in devices)
    assert any(device.duplicate_probability > 0.0 for device in devices)


def test_update_golden_check_agrees(goldens, materialized):
    """``tools/update_golden.py --check`` logic sees no drift in-process."""
    import sys

    tools_dir = str(Path(__file__).resolve().parents[1] / "tools")
    sys.path.insert(0, tools_dir)
    try:
        from update_golden import compare
    finally:
        sys.path.remove(tools_dir)
    current = {}
    for name in scenario_names():
        scenario = materialized(name)
        current[name] = {
            "seed": scenario.seed,
            "fingerprint": scenario.fingerprint,
            "sequences": len(scenario.dataset),
            "records": scenario.dataset.total_records,
        }
    assert compare(goldens, current) == []


@pytest.mark.parametrize("name", scenario_names())
def test_scenario_matches_golden_fingerprint(name, goldens, materialized):
    golden = goldens[name]
    assert get_scenario(name).seed == golden["seed"]
    scenario = materialized(name)
    assert len(scenario.dataset) == golden["sequences"]
    assert scenario.dataset.total_records == golden["records"]
    assert scenario.fingerprint == golden["fingerprint"], (
        f"scenario {name!r} drifted from its golden trace — some change in "
        "builders/simulator/error-model/preprocessing altered the generated "
        "data; if intentional, regenerate the goldens and review the diff"
    )


@pytest.mark.parametrize("name", scenario_names())
def test_every_region_label_exists_in_the_venue(name, materialized):
    """Materialised ground truth never references a region the venue lacks."""
    scenario = materialized(name)
    region_ids = set(scenario.space.region_ids)
    for labeled in scenario.dataset.sequences:
        assert set(labeled.region_labels) <= region_ids, name
