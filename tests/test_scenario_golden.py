"""Golden-trace regression suite over the scenario catalogue.

``tests/data/golden_scenarios.json`` commits, per registered scenario, the
content fingerprint of its materialisation at the spec's default seed
(venue geometry + every p-sequence's raw records + ground-truth labels).
These tests re-materialise every scenario and assert the digest *bitwise*,
so any drift anywhere in the floorplan builders, the mobility simulators,
the positioning-error model or the preprocessing fails tier-1 immediately —
before it silently shifts every accuracy number in the benchmarks.

After an *intentional* pipeline change, regenerate with::

    python -m repro.scenarios --write-goldens tests/data/golden_scenarios.json

and review the diff: only the scenarios your change should affect may move.
"""

import json
from pathlib import Path

import pytest

from repro.scenarios import (
    MOBILITY_PROFILES,
    VENUE_ARCHETYPES,
    get_scenario,
    materialize,
    scenario_names,
    scenario_specs,
)
from repro.scenarios.catalogue import MIN_ARCHETYPES, MIN_PROFILES, MIN_SCENARIOS

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_scenarios.json"


@pytest.fixture(scope="module")
def goldens():
    return json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))


@pytest.fixture(scope="module")
def materialized():
    """Materialise each scenario at most once for the whole module."""
    cache = {}

    def get(name):
        if name not in cache:
            cache[name] = materialize(name)
        return cache[name]

    return get


def test_golden_file_covers_exactly_the_registry(goldens):
    assert sorted(goldens) == scenario_names(), (
        "the golden file and the registry disagree; regenerate with "
        "python -m repro.scenarios --write-goldens tests/data/golden_scenarios.json"
    )


def test_catalogue_breadth():
    """The acceptance floor: ≥6 scenarios over ≥3 venues and ≥3 profiles."""
    specs = scenario_specs()
    assert len(specs) >= MIN_SCENARIOS
    archetypes = {spec.venue.archetype for spec in specs}
    profiles = {spec.mobility.profile for spec in specs}
    assert len(archetypes) >= MIN_ARCHETYPES
    assert archetypes <= set(VENUE_ARCHETYPES)
    assert len(profiles) >= MIN_PROFILES
    assert profiles <= set(MOBILITY_PROFILES)


@pytest.mark.parametrize("name", scenario_names())
def test_scenario_matches_golden_fingerprint(name, goldens, materialized):
    golden = goldens[name]
    assert get_scenario(name).seed == golden["seed"]
    scenario = materialized(name)
    assert len(scenario.dataset) == golden["sequences"]
    assert scenario.dataset.total_records == golden["records"]
    assert scenario.fingerprint == golden["fingerprint"], (
        f"scenario {name!r} drifted from its golden trace — some change in "
        "builders/simulator/error-model/preprocessing altered the generated "
        "data; if intentional, regenerate the goldens and review the diff"
    )


@pytest.mark.parametrize("name", scenario_names())
def test_every_region_label_exists_in_the_venue(name, materialized):
    """Materialised ground truth never references a region the venue lacks."""
    scenario = materialized(name)
    region_ids = set(scenario.space.region_ids)
    for labeled in scenario.dataset.sequences:
        assert set(labeled.region_labels) <= region_ids, name
