"""Tests for the eight feature functions and sequence preparation."""


import numpy as np
import pytest

from repro.core.config import C2MNConfig
from repro.crf.features import FeatureExtractor
from repro.geometry.point import IndoorPoint
from repro.mobility.records import EVENT_PASS, EVENT_STAY, PositioningRecord, PositioningSequence


@pytest.fixture(scope="module")
def extractor(small_space, small_oracle):
    return FeatureExtractor(small_space, C2MNConfig.fast(), oracle=small_oracle)


@pytest.fixture(scope="module")
def prepared(extractor, small_dataset):
    labeled = small_dataset.sequences[0]
    return extractor.prepare(
        labeled.sequence,
        true_regions=labeled.region_labels,
        true_events=labeled.event_labels,
    )


class TestPreparation:
    def test_density_labels_aligned(self, prepared):
        assert len(prepared.density_labels) == len(prepared)

    def test_candidates_nonempty_and_contain_truth(self, prepared):
        for i, candidates in enumerate(prepared.candidates):
            assert candidates
            assert prepared.true_regions[i] in candidates

    def test_candidates_contain_nearest_region(self, prepared):
        for nearest, candidates in zip(prepared.nearest_regions, prepared.candidates):
            assert nearest in candidates

    def test_step_arrays_lengths(self, prepared):
        n = len(prepared)
        assert len(prepared.planar_steps) == n - 1
        assert len(prepared.elapsed_steps) == n - 1
        assert len(prepared.speeds) == n - 1
        assert len(prepared.turn_flags) == n

    def test_speeds_non_negative(self, prepared):
        assert all(speed >= 0.0 for speed in prepared.speeds)

    def test_has_ground_truth_flag(self, extractor, prepared, small_dataset):
        assert prepared.has_ground_truth
        plain = extractor.prepare(small_dataset.sequences[0].sequence)
        assert not plain.has_ground_truth


class TestMatchingFeatures:
    def test_fsm_in_unit_interval(self, extractor, prepared):
        for i in range(min(10, len(prepared))):
            for region_id in prepared.candidates[i]:
                value = extractor.spatial_matching(prepared, i, region_id)
                assert 0.0 <= value <= 1.0

    def test_fsm_higher_for_containing_region(self, extractor, prepared, small_space):
        """The region containing the estimate should overlap more than a far one."""
        found = False
        for i in range(len(prepared)):
            record = prepared.sequence[i]
            containing = small_space.region_at(record.location)
            if containing is None:
                continue
            inside = extractor.spatial_matching(prepared, i, containing.region_id)
            far_region = max(
                small_space.regions,
                key=lambda r: r.centroid.planar.distance_to(record.location.planar),
            )
            outside = extractor.spatial_matching(prepared, i, far_region.region_id)
            assert inside >= outside
            found = True
            if inside > outside:
                break
        assert found

    def test_fsm_cached(self, extractor, prepared):
        region = prepared.candidates[0][0]
        first = extractor.spatial_matching(prepared, 0, region)
        assert (0, region) in prepared.fsm_cache
        assert extractor.spatial_matching(prepared, 0, region) == first

    def test_fem_values_follow_paper_table(self, extractor, prepared):
        config = extractor.config
        for i, density in enumerate(prepared.density_labels):
            stay_value = extractor.event_matching(prepared, i, EVENT_STAY)
            pass_value = extractor.event_matching(prepared, i, EVENT_PASS)
            if density == "core":
                assert stay_value == 1.0 and pass_value == 0.0
            elif density == "noise":
                assert stay_value == 0.0 and pass_value == 1.0
            else:
                assert stay_value == config.alpha and pass_value == config.beta


class TestTransitionFeatures:
    def test_fst_equal_regions_is_one(self, extractor, small_space):
        region = small_space.regions[0].region_id
        assert extractor.space_transition(region, region) == pytest.approx(1.0)

    def test_fst_decreases_with_distance(self, extractor, small_space):
        regions = {region.name: region.region_id for region in small_space.regions}
        near = extractor.space_transition(regions["F0-S00"], regions["F0-N00"])
        far = extractor.space_transition(regions["F0-S00"], regions["F0-N03"])
        assert 0.0 < far < near <= 1.0

    def test_fet(self, extractor):
        assert extractor.event_transition(EVENT_STAY, EVENT_STAY) == 1.0
        assert extractor.event_transition(EVENT_STAY, EVENT_PASS) == 0.0


class TestSynchronizationFeatures:
    def test_fsc_in_unit_interval(self, extractor, prepared, small_space):
        ids = [region.region_id for region in small_space.regions[:3]]
        for i in range(min(5, len(prepared) - 1)):
            for a in ids:
                for b in ids:
                    value = extractor.spatial_consistency(prepared, i, a, b)
                    assert 0.0 < value <= 1.0

    def test_fsc_prefers_consistent_region_pair(self, extractor, small_space):
        """A short observed step should favour region pairs that are close."""
        records = [
            PositioningRecord(IndoorPoint(4.0, 6.0, 0), 0.0),
            PositioningRecord(IndoorPoint(6.0, 6.0, 0), 10.0),
        ]
        sequence = PositioningSequence(records)
        data = extractor.prepare(sequence)
        regions = {region.name: region.region_id for region in small_space.regions}
        same = extractor.spatial_consistency(data, 0, regions["F0-S00"], regions["F0-S00"])
        far = extractor.spatial_consistency(data, 0, regions["F0-S00"], regions["F0-N03"])
        assert same > far

    def test_fec_speed_zero_prefers_stay(self, extractor):
        records = [
            PositioningRecord(IndoorPoint(0.0, 0.0, 0), 0.0),
            PositioningRecord(IndoorPoint(0.0, 0.0, 0), 30.0),
        ]
        data = extractor.prepare(PositioningSequence(records))
        stay_stay = extractor.event_consistency(data, 0, EVENT_STAY, EVENT_STAY)
        pass_pass = extractor.event_consistency(data, 0, EVENT_PASS, EVENT_PASS)
        assert stay_stay == pytest.approx(1.0)
        assert stay_stay > pass_pass

    def test_fec_high_speed_prefers_pass(self, extractor):
        records = [
            PositioningRecord(IndoorPoint(0.0, 0.0, 0), 0.0),
            PositioningRecord(IndoorPoint(60.0, 0.0, 0), 10.0),
        ]
        data = extractor.prepare(PositioningSequence(records))
        stay_stay = extractor.event_consistency(data, 0, EVENT_STAY, EVENT_STAY)
        pass_pass = extractor.event_consistency(data, 0, EVENT_PASS, EVENT_PASS)
        assert pass_pass > stay_stay


class TestSegmentationFeatures:
    def test_fes_returns_three_bounded_components(self, extractor, prepared):
        regions = list(prepared.true_regions)
        end = min(6, len(prepared) - 1)
        features = extractor.event_segmentation(prepared, 0, end, regions, EVENT_STAY)
        assert features.shape == (3,)
        assert np.all(np.abs(features) <= 1.0 + 1e-9)

    def test_fes_sign_flips_with_event(self, extractor, prepared):
        regions = list(prepared.true_regions)
        end = min(6, len(prepared) - 1)
        stay = extractor.event_segmentation(prepared, 0, end, regions, EVENT_STAY)
        pas = extractor.event_segmentation(prepared, 0, end, regions, EVENT_PASS)
        assert np.allclose(stay, -pas)

    def test_fes_distinct_region_component_increases_with_diversity(self, extractor, prepared):
        end = min(6, len(prepared) - 1)
        uniform = [prepared.true_regions[0]] * len(prepared)
        diverse = list(range(len(prepared)))
        f_uniform = extractor.event_segmentation(prepared, 0, end, uniform, EVENT_PASS)
        f_diverse = extractor.event_segmentation(prepared, 0, end, diverse, EVENT_PASS)
        assert f_diverse[0] > f_uniform[0]

    def test_fss_returns_three_components(self, extractor, prepared):
        events = list(prepared.true_events)
        end = min(6, len(prepared) - 1)
        features = extractor.space_segmentation(prepared, 0, end, events)
        assert features.shape == (3,)

    def test_fss_penalises_event_changes(self, extractor, prepared):
        end = min(7, len(prepared) - 1)
        smooth = [EVENT_STAY] * len(prepared)
        choppy = [EVENT_STAY if i % 2 == 0 else EVENT_PASS for i in range(len(prepared))]
        f_smooth = extractor.space_segmentation(prepared, 0, end, smooth)
        f_choppy = extractor.space_segmentation(prepared, 0, end, choppy)
        assert f_smooth[0] > f_choppy[0]
        assert f_smooth[1] > f_choppy[1]

    def test_fss_boundary_pass_indicator(self, extractor, prepared):
        end = min(4, len(prepared) - 1)
        events = [EVENT_PASS] + [EVENT_STAY] * (len(prepared) - 2) + [EVENT_PASS]
        features = extractor.space_segmentation(prepared, 0, end, events)
        assert features[2] == pytest.approx(0.5 if end != len(prepared) - 1 else 1.0)

    def test_single_record_segment(self, extractor, prepared):
        regions = list(prepared.true_regions)
        events = list(prepared.true_events)
        fes = extractor.event_segmentation(prepared, 0, 0, regions, EVENT_STAY)
        fss = extractor.space_segmentation(prepared, 0, 0, events)
        assert fes.shape == (3,) and fss.shape == (3,)
        assert np.isfinite(fes).all() and np.isfinite(fss).all()


class TestCacheStatistics:
    def test_cache_statistics_keys(self, extractor):
        stats = extractor.cache_statistics()
        assert set(stats) == {"fst_cache", "region_distance_cache", "oracle_cache"}
