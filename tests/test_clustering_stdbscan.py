"""Tests for the ST-DBSCAN implementation."""

import pytest

from repro.clustering.stdbscan import (
    DENSITY_BORDER,
    DENSITY_CORE,
    DENSITY_NOISE,
    STDBSCAN,
)
from repro.geometry.point import IndoorPoint
from repro.mobility.records import PositioningRecord


def _records(points):
    """points: list of (x, y, t)."""
    return [PositioningRecord(IndoorPoint(x, y, 0), t) for x, y, t in points]


class TestParameters:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            STDBSCAN(eps_spatial=0.0)
        with pytest.raises(ValueError):
            STDBSCAN(eps_temporal=0.0)
        with pytest.raises(ValueError):
            STDBSCAN(min_points=0)


class TestClustering:
    def test_dense_cluster_is_detected(self):
        # Six records packed in space and time, plus two isolated ones.
        packed = [(0.0 + 0.1 * i, 0.0, 10.0 * i) for i in range(6)]
        isolated = [(100.0, 100.0, 0.0), (200.0, 200.0, 500.0)]
        records = _records(packed + isolated)
        result = STDBSCAN(eps_spatial=5.0, eps_temporal=60.0, min_points=3).fit(records)
        assert result.n_clusters == 1
        assert result.density_labels[:6].count(DENSITY_NOISE) == 0
        assert result.density_labels[6] == DENSITY_NOISE
        assert result.density_labels[7] == DENSITY_NOISE

    def test_core_points_have_dense_neighbourhoods(self):
        packed = [(0.0, 0.0, 5.0 * i) for i in range(8)]
        records = _records(packed)
        result = STDBSCAN(eps_spatial=2.0, eps_temporal=20.0, min_points=4).fit(records)
        assert DENSITY_CORE in result.density_labels

    def test_temporal_threshold_separates_clusters(self):
        # Two bursts at the same location but one hour apart.
        burst_a = [(0.0, 0.0, 10.0 * i) for i in range(5)]
        burst_b = [(0.0, 0.0, 3600.0 + 10.0 * i) for i in range(5)]
        records = _records(burst_a + burst_b)
        result = STDBSCAN(eps_spatial=5.0, eps_temporal=60.0, min_points=3).fit(records)
        assert result.n_clusters == 2
        first = {result.cluster_ids[i] for i in range(5)}
        second = {result.cluster_ids[i] for i in range(5, 10)}
        assert first.isdisjoint(second)

    def test_spatial_threshold_separates_clusters(self):
        burst_a = [(0.0, 0.0, 10.0 * i) for i in range(5)]
        burst_b = [(50.0, 0.0, 10.0 * i) for i in range(5)]
        records = _records(burst_a + burst_b)
        result = STDBSCAN(eps_spatial=5.0, eps_temporal=600.0, min_points=3).fit(records)
        assert result.n_clusters == 2

    def test_all_noise_when_sparse(self):
        sparse = [(10.0 * i, 0.0, 300.0 * i) for i in range(6)]
        result = STDBSCAN(eps_spatial=5.0, eps_temporal=60.0, min_points=3).fit(
            _records(sparse)
        )
        assert result.n_clusters == 0
        assert all(label == DENSITY_NOISE for label in result.density_labels)

    def test_labels_align_with_input_order(self):
        points = [(0.0, 0.0, 0.0), (100.0, 0.0, 0.0), (0.1, 0.0, 5.0), (0.2, 0.0, 10.0), (0.3, 0.0, 15.0)]
        result = STDBSCAN(eps_spatial=2.0, eps_temporal=60.0, min_points=3).fit(
            _records(points)
        )
        assert len(result.cluster_ids) == len(points)
        assert result.density_labels[1] == DENSITY_NOISE

    def test_records_in_cluster(self):
        packed = [(0.0, 0.0, 5.0 * i) for i in range(5)]
        result = STDBSCAN(eps_spatial=2.0, eps_temporal=30.0, min_points=3).fit(
            _records(packed)
        )
        members = result.records_in_cluster(0)
        assert sorted(members) == list(range(5))

    def test_accepts_positioning_sequence(self, small_dataset):
        sequence = small_dataset.sequences[0].sequence
        clusterer = STDBSCAN(eps_spatial=8.0, eps_temporal=60.0, min_points=4)
        labels = clusterer.density_labels(sequence)
        assert len(labels) == len(sequence)
        assert set(labels) <= {DENSITY_CORE, DENSITY_BORDER, DENSITY_NOISE}

    def test_stay_records_cluster_on_real_style_data(self, small_dataset):
        """On simulated data, most stay records should not be classified as noise."""
        labeled = small_dataset.sequences[0]
        clusterer = STDBSCAN(eps_spatial=8.0, eps_temporal=60.0, min_points=4)
        labels = clusterer.density_labels(labeled.sequence)
        stays = [
            labels[i]
            for i, event in enumerate(labeled.event_labels)
            if event == "stay"
        ]
        if stays:
            noise_fraction = stays.count(DENSITY_NOISE) / len(stays)
            assert noise_fraction < 0.5
