"""Tests for repro.geometry.rtree."""

import random

import pytest

from repro.geometry.point import Point
from repro.geometry.polygon import BoundingBox
from repro.geometry.rtree import RTree


def _box(x, y, size=1.0):
    return BoundingBox(x, y, x + size, y + size)


class TestRTreeBasics:
    def test_rejects_tiny_max_entries(self):
        with pytest.raises(ValueError):
            RTree(max_entries=2)

    def test_empty_tree(self):
        tree = RTree()
        assert len(tree) == 0
        assert tree.root_bbox is None
        assert tree.query_bbox(_box(0, 0)) == []
        assert tree.nearest(Point(0, 0)) == []

    def test_insert_and_query_point(self):
        tree = RTree()
        tree.insert(_box(0, 0), "a")
        tree.insert(_box(10, 10), "b")
        assert tree.query_point(Point(0.5, 0.5)) == ["a"]
        assert tree.query_point(Point(10.5, 10.5)) == ["b"]
        assert tree.query_point(Point(5.0, 5.0)) == []

    def test_query_point_with_margin(self):
        tree = RTree()
        tree.insert(_box(0, 0), "a")
        assert tree.query_point(Point(1.5, 0.5)) == []
        assert tree.query_point(Point(1.5, 0.5), margin=1.0) == ["a"]

    def test_len_tracks_inserts(self):
        tree = RTree()
        for i in range(25):
            tree.insert(_box(i * 2, 0), i)
        assert len(tree) == 25

    def test_all_payloads(self):
        tree = RTree()
        for i in range(30):
            tree.insert(_box(i * 2, 0), i)
        assert sorted(tree.all_payloads()) == list(range(30))


class TestRTreeQueries:
    @pytest.fixture()
    def grid_tree(self):
        tree = RTree(max_entries=6)
        for ix in range(10):
            for iy in range(10):
                tree.insert(_box(ix * 2.0, iy * 2.0), (ix, iy))
        return tree

    def test_bbox_query_returns_exactly_overlapping(self, grid_tree):
        found = grid_tree.query_bbox(BoundingBox(0.0, 0.0, 3.0, 3.0))
        assert sorted(found) == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_bbox_query_matches_brute_force(self, grid_tree):
        probe = BoundingBox(3.0, 5.0, 9.5, 8.0)
        brute = {
            (ix, iy)
            for ix in range(10)
            for iy in range(10)
            if _box(ix * 2.0, iy * 2.0).intersects(probe)
        }
        assert set(grid_tree.query_bbox(probe)) == brute

    def test_nearest_single(self, grid_tree):
        assert grid_tree.nearest(Point(0.1, 0.1), k=1) == [(0, 0)]

    def test_nearest_k_ordering(self, grid_tree):
        nearest = grid_tree.nearest(Point(0.5, 0.5), k=4)
        assert len(nearest) == 4
        assert nearest[0] == (0, 0)
        assert set(nearest) <= {(0, 0), (0, 1), (1, 0), (1, 1)}

    def test_nearest_k_larger_than_size(self):
        tree = RTree()
        tree.insert(_box(0, 0), "only")
        assert tree.nearest(Point(5, 5), k=10) == ["only"]

    def test_nearest_rejects_non_positive_k(self, grid_tree):
        with pytest.raises(ValueError):
            grid_tree.nearest(Point(0, 0), k=0)


class TestRTreeRandomised:
    def test_random_inserts_queries_match_brute_force(self):
        rng = random.Random(42)
        tree = RTree(max_entries=5)
        boxes = []
        for i in range(200):
            x = rng.uniform(0, 100)
            y = rng.uniform(0, 100)
            w = rng.uniform(0.5, 5.0)
            h = rng.uniform(0.5, 5.0)
            box = BoundingBox(x, y, x + w, y + h)
            boxes.append((box, i))
            tree.insert(box, i)
        for _ in range(20):
            qx, qy = rng.uniform(0, 100), rng.uniform(0, 100)
            probe = BoundingBox(qx, qy, qx + rng.uniform(1, 20), qy + rng.uniform(1, 20))
            brute = {payload for box, payload in boxes if box.intersects(probe)}
            assert set(tree.query_bbox(probe)) == brute

    def test_bulk_load_equivalent_to_inserts(self):
        entries = [(_box(i * 3.0, 0.0), i) for i in range(40)]
        loaded = RTree()
        loaded.bulk_load(entries)
        assert len(loaded) == 40
        assert set(loaded.query_bbox(BoundingBox(0.0, 0.0, 10.0, 2.0))) == {0, 1, 2, 3}
