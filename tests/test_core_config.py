"""Tests for the C2MN configuration object."""

import dataclasses

import pytest

from repro.core.config import C2MNConfig


class TestValidation:
    def test_default_is_valid(self):
        config = C2MNConfig()
        assert config.alpha == 0.8 and config.beta == 0.6

    @pytest.mark.parametrize(
        "overrides",
        [
            {"alpha": 0.5, "beta": 0.6},       # beta must be < alpha
            {"alpha": 1.2},                      # alpha must be < 1
            {"beta": 0.0},                       # beta must be > 0
            {"uncertainty_radius": 0.0},
            {"gamma_st": 1.5},
            {"gamma_ec": 0.0},
            {"gamma_sc": -0.1},
            {"sigma2": 0.0},
            {"delta": 0.0},
            {"max_iterations": 0},
            {"mcmc_samples": 0},
            {"lbfgs_iterations": 0},
            {"first_configured": "both"},
            {"max_candidates": 0},
            {"icm_sweeps": 0},
        ],
    )
    def test_invalid_values_rejected(self, overrides):
        with pytest.raises(ValueError):
            dataclasses.replace(C2MNConfig(), **overrides)

    def test_config_is_frozen(self):
        config = C2MNConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.alpha = 0.9


class TestFactories:
    def test_paper_real_matches_section_5b1(self):
        config = C2MNConfig.paper_real()
        assert config.uncertainty_radius == 15.0
        assert config.sigma2 == 0.5
        assert config.max_iterations == 90
        assert config.mcmc_samples == 800
        assert (config.eps_spatial, config.eps_temporal, config.min_points) == (8.0, 60.0, 4)

    def test_paper_synthetic_matches_section_5c(self):
        config = C2MNConfig.paper_synthetic()
        assert config.uncertainty_radius == 10.0
        assert config.sigma2 == 0.2
        assert config.max_iterations == 50
        assert config.mcmc_samples == 500

    def test_fast_is_small(self):
        config = C2MNConfig.fast()
        assert config.max_iterations <= 10
        assert config.mcmc_samples <= 50

    def test_fast_accepts_overrides(self):
        config = C2MNConfig.fast(max_iterations=7, seed=1)
        assert config.max_iterations == 7
        assert config.seed == 1


class TestViews:
    def test_with_structure_toggles_only_requested_flags(self):
        config = C2MNConfig().with_structure(use_transition=False)
        assert not config.use_transition
        assert config.use_synchronization
        assert config.use_event_segmentation
        assert config.use_space_segmentation

    def test_with_structure_preserves_other_parameters(self):
        base = C2MNConfig.fast(seed=123)
        variant = base.with_structure(use_space_segmentation=False)
        assert variant.seed == 123
        assert variant.max_iterations == base.max_iterations

    def test_with_first_configured(self):
        config = C2MNConfig().with_first_configured("region")
        assert config.first_configured == "region"
        with pytest.raises(ValueError):
            C2MNConfig().with_first_configured("neither")

    def test_is_coupled(self):
        assert C2MNConfig().is_coupled
        assert C2MNConfig().with_structure(use_event_segmentation=False).is_coupled
        decoupled = C2MNConfig().with_structure(
            use_event_segmentation=False, use_space_segmentation=False
        )
        assert not decoupled.is_coupled
