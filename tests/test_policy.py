"""Unit tests of the unified :class:`repro.runtime.ExecutionPolicy`.

Covers construction/validation, the convenience constructors, the
load-balancing bucket cap, persistence (``to_dict``/``from_dict`` and the
service save/load round trip), and the :func:`repro.runtime.resolve_policy`
deprecation shim that keeps the legacy ``workers=``/``backend=`` keywords
alive on every migrated surface.
"""

from __future__ import annotations

import pytest

from repro.runtime import (
    DEFAULT_BUCKET_SIZE,
    ExecutionPolicy,
    UNSET,
    resolve_policy,
)
from repro.service import AnnotationService


# --------------------------------------------------------------------------
# Construction and validation
# --------------------------------------------------------------------------
class TestConstruction:
    def test_defaults(self):
        policy = ExecutionPolicy()
        assert policy.backend == "thread"
        assert policy.workers is None
        assert policy.batch is True
        assert policy.bucket_size == DEFAULT_BUCKET_SIZE
        assert policy.reuse_pool is True

    def test_frozen(self):
        with pytest.raises(AttributeError):
            ExecutionPolicy().backend = "process"

    def test_hashable_and_comparable(self):
        assert ExecutionPolicy() == ExecutionPolicy()
        assert len({ExecutionPolicy(), ExecutionPolicy()}) == 1
        assert ExecutionPolicy() != ExecutionPolicy(backend="serial")

    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError):
            ExecutionPolicy(backend="gpu")

    @pytest.mark.parametrize("bad", [0, -1, -7])
    def test_rejects_non_positive_workers(self, bad):
        with pytest.raises(ValueError):
            ExecutionPolicy(workers=bad)

    @pytest.mark.parametrize("bad", [0, -3])
    def test_rejects_non_positive_bucket_size(self, bad):
        with pytest.raises(ValueError):
            ExecutionPolicy(bucket_size=bad)

    @pytest.mark.parametrize("bad", ["8", 2.5, True])
    def test_rejects_non_int_bucket_size(self, bad):
        with pytest.raises(TypeError):
            ExecutionPolicy(bucket_size=bad)

    @pytest.mark.parametrize("flag", ["batch", "reuse_pool"])
    def test_rejects_non_bool_flags(self, flag):
        with pytest.raises(TypeError):
            ExecutionPolicy(**{flag: 1})

    def test_serial_constructor(self):
        policy = ExecutionPolicy.serial()
        assert policy.backend == "serial"
        assert policy.effective_workers == 1

    def test_threads_and_processes_constructors(self):
        assert ExecutionPolicy.threads(3) == ExecutionPolicy(
            backend="thread", workers=3
        )
        assert ExecutionPolicy.processes(2) == ExecutionPolicy(
            backend="process", workers=2
        )

    def test_constructor_overrides_forward(self):
        policy = ExecutionPolicy.serial(batch=False, bucket_size=4)
        assert policy.batch is False
        assert policy.bucket_size == 4

    def test_with_replaces_and_revalidates(self):
        policy = ExecutionPolicy().with_(backend="process", workers=2)
        assert policy == ExecutionPolicy(backend="process", workers=2)
        with pytest.raises(ValueError):
            ExecutionPolicy().with_(workers=0)


# --------------------------------------------------------------------------
# The load-balancing bucket cap
# --------------------------------------------------------------------------
class TestEffectiveBucketSize:
    def test_serial_keeps_configured_size(self):
        policy = ExecutionPolicy.serial(bucket_size=32)
        assert policy.effective_bucket_size(1000) == 32

    def test_single_worker_keeps_configured_size(self):
        policy = ExecutionPolicy(backend="process", workers=1, bucket_size=32)
        assert policy.effective_bucket_size(1000) == 32

    def test_parallel_shrinks_for_load_balance(self):
        policy = ExecutionPolicy.processes(4, bucket_size=32)
        # 24 items over 4 workers x 4 shards -> at most 2 items per bucket.
        assert policy.effective_bucket_size(24) == 2

    def test_configured_size_stays_the_upper_bound(self):
        policy = ExecutionPolicy.processes(2, bucket_size=3)
        assert policy.effective_bucket_size(10_000) == 3

    def test_never_below_one(self):
        policy = ExecutionPolicy.processes(8, bucket_size=32)
        assert policy.effective_bucket_size(2) == 1


# --------------------------------------------------------------------------
# Persistence
# --------------------------------------------------------------------------
class TestPersistence:
    def test_round_trip(self):
        policy = ExecutionPolicy.processes(3, batch=False, bucket_size=7)
        assert ExecutionPolicy.from_dict(policy.to_dict()) == policy

    def test_from_dict_ignores_unknown_keys(self):
        payload = ExecutionPolicy.serial().to_dict()
        payload["from_the_future"] = 42
        assert ExecutionPolicy.from_dict(payload) == ExecutionPolicy.serial()

    def test_from_dict_defaults_missing_keys(self):
        assert ExecutionPolicy.from_dict({}) == ExecutionPolicy()
        assert ExecutionPolicy.from_dict({"backend": "serial"}).backend == "serial"

    def test_service_save_load_round_trips_policy(
        self, fitted_annotator, tmp_path
    ):
        policy = ExecutionPolicy.threads(2, bucket_size=8)
        service = AnnotationService(fitted_annotator, policy=policy)
        path = tmp_path / "service.json"
        service.save(path)
        reloaded = AnnotationService.load(path, fitted_annotator.space)
        assert reloaded.policy == policy
        assert reloaded.backend == policy.backend  # legacy mirror survives

    def test_service_load_accepts_legacy_backend_only_payload(
        self, fitted_annotator, tmp_path
    ):
        import json

        service = AnnotationService(fitted_annotator)
        path = tmp_path / "service.json"
        service.save(path)
        payload = json.loads(path.read_text())
        del payload["policy"]  # a pre-policy file only carries "backend"
        payload["backend"] = "serial"
        path.write_text(json.dumps(payload))
        reloaded = AnnotationService.load(path, fitted_annotator.space)
        assert reloaded.policy.backend == "serial"


# --------------------------------------------------------------------------
# The deprecation shim
# --------------------------------------------------------------------------
class TestResolvePolicy:
    def test_policy_passes_through(self):
        policy = ExecutionPolicy.processes(2)
        assert resolve_policy(policy) is policy

    def test_default_when_nothing_given(self):
        assert resolve_policy(None) == ExecutionPolicy()
        default = ExecutionPolicy.serial()
        assert resolve_policy(None, default=default) is default

    def test_rejects_non_policy(self):
        with pytest.raises(TypeError, match="ExecutionPolicy"):
            resolve_policy({"backend": "serial"})

    def test_mixing_policy_and_legacy_kwargs_raises(self):
        with pytest.raises(TypeError, match="not both"):
            resolve_policy(ExecutionPolicy(), workers=2)
        with pytest.raises(TypeError, match="not both"):
            resolve_policy(ExecutionPolicy(), backend="serial")

    def test_legacy_kwargs_warn_and_convert(self):
        with pytest.warns(DeprecationWarning, match="deprecated"):
            policy = resolve_policy(None, workers=2, backend="process")
        assert policy.backend == "process"
        assert policy.workers == 2

    def test_legacy_workers_none_is_meaningful(self):
        default = ExecutionPolicy.threads(4)
        with pytest.warns(DeprecationWarning):
            policy = resolve_policy(None, workers=None, default=default)
        assert policy.workers is None  # explicit None overrides the default

    def test_unset_sentinel_means_not_passed(self):
        assert resolve_policy(None, workers=UNSET, backend=UNSET) == (
            ExecutionPolicy()
        )

    def test_owner_appears_in_warning(self):
        with pytest.warns(DeprecationWarning, match="my_api"):
            resolve_policy(None, workers=2, owner="my_api()")

    def test_annotate_many_legacy_kwargs_warn_but_work(
        self, fitted_annotator, small_split
    ):
        _, test = small_split
        sequences = [labeled.sequence for labeled in test.sequences[:3]]
        expected = fitted_annotator.annotate_many(
            sequences, policy=ExecutionPolicy.serial()
        )
        with pytest.warns(DeprecationWarning):
            legacy = fitted_annotator.annotate_many(sequences, backend="serial")
        assert legacy == expected

    def test_service_annotate_batch_legacy_kwargs_warn_but_work(
        self, fitted_annotator, small_split
    ):
        _, test = small_split
        sequences = [labeled.sequence for labeled in test.sequences[:3]]
        service = AnnotationService(fitted_annotator)
        expected = AnnotationService(fitted_annotator).annotate_batch(
            sequences, policy=ExecutionPolicy.serial()
        )
        with pytest.warns(DeprecationWarning):
            legacy = service.annotate_batch(sequences, backend="serial")
        assert legacy == expected
