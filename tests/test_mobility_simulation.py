"""Tests for the waypoint simulator and the positioning-error model."""


import pytest

from repro.mobility.positioning import PositioningErrorModel
from repro.mobility.records import EVENT_PASS, EVENT_STAY
from repro.mobility.simulator import WaypointSimulator


class TestWaypointSimulator:
    @pytest.fixture(scope="class")
    def trajectory(self, small_space):
        simulator = WaypointSimulator(small_space, seed=5, min_stay=30.0, max_stay=120.0)
        return simulator.simulate_object("obj", duration=900.0)

    def test_invalid_parameters(self, small_space):
        with pytest.raises(ValueError):
            WaypointSimulator(small_space, max_speed=0.0)
        with pytest.raises(ValueError):
            WaypointSimulator(small_space, min_stay=10.0, max_stay=5.0)
        with pytest.raises(ValueError):
            WaypointSimulator(small_space, sample_period=0.0)

    def test_duration_must_be_positive(self, small_space):
        simulator = WaypointSimulator(small_space, seed=1)
        with pytest.raises(ValueError):
            simulator.simulate_object("x", duration=0.0)

    def test_ground_truth_is_time_ordered(self, trajectory):
        times = [p.timestamp for p in trajectory.points]
        assert times == sorted(times)

    def test_ground_truth_covers_duration(self, trajectory):
        assert trajectory.duration <= 900.0
        assert trajectory.duration > 400.0

    def test_events_are_valid(self, trajectory):
        assert {p.event for p in trajectory.points} <= {EVENT_STAY, EVENT_PASS}

    def test_contains_both_stays_and_passes(self, trajectory):
        events = {p.event for p in trajectory.points}
        assert EVENT_STAY in events
        assert EVENT_PASS in events

    def test_regions_are_valid(self, small_space, trajectory):
        valid = set(small_space.region_ids)
        assert all(p.region_id in valid for p in trajectory.points)

    def test_speed_respects_max(self, trajectory):
        points = trajectory.points
        for a, b in zip(points, points[1:]):
            elapsed = b.timestamp - a.timestamp
            if elapsed <= 0 or a.location.floor != b.location.floor:
                continue
            speed = a.location.planar_distance_to(b.location) / elapsed
            assert speed <= 1.7 * 1.8 + 1.0  # generous bound: jitter + waypoint snap

    def test_stay_points_inside_their_region(self, small_space, trajectory):
        for point in trajectory.points:
            if point.event == EVENT_STAY:
                region = small_space.region(point.region_id)
                # Allow the small in-place jitter to leave the region slightly.
                assert region.distance_to(point.location) < 2.0

    def test_determinism_with_same_seed(self, small_space):
        sim_a = WaypointSimulator(small_space, seed=11)
        sim_b = WaypointSimulator(small_space, seed=11)
        traj_a = sim_a.simulate_object("o", duration=300.0)
        traj_b = sim_b.simulate_object("o", duration=300.0)
        assert [p.location for p in traj_a.points] == [p.location for p in traj_b.points]

    def test_population_and_lifespans(self, small_space):
        simulator = WaypointSimulator(small_space, seed=7)
        population = simulator.simulate_population(
            3, duration=600.0, lifespan_range=(60.0, 300.0)
        )
        assert len(population) == 3
        for trajectory in population:
            assert trajectory.duration <= 300.0 + 1.0

    def test_stay_visits_merged(self, trajectory):
        visits = trajectory.stay_visits()
        assert visits
        for region_id, start, end in visits:
            assert end >= start

    def test_space_without_regions_rejected(self, small_space):
        from repro.indoor.floorplan import IndoorSpace

        bare = IndoorSpace(small_space.partitions, small_space.doors, [])
        with pytest.raises(ValueError):
            WaypointSimulator(bare)


class TestPositioningErrorModel:
    @pytest.fixture(scope="class")
    def trajectory(self, small_space):
        simulator = WaypointSimulator(small_space, seed=21, min_stay=30.0, max_stay=120.0)
        return simulator.simulate_object("obj", duration=900.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            PositioningErrorModel(max_period=0.5, min_period=1.0)
        with pytest.raises(ValueError):
            PositioningErrorModel(error=-1.0)
        with pytest.raises(ValueError):
            PositioningErrorModel(outlier_probability=1.5)

    def test_labels_align_with_records(self, trajectory, small_space):
        model = PositioningErrorModel(max_period=5.0, error=3.0, seed=1)
        labeled = model.corrupt_trajectory(trajectory, small_space)
        assert labeled is not None
        assert len(labeled.region_labels) == len(labeled.sequence)
        assert len(labeled.event_labels) == len(labeled.sequence)

    def test_sampling_respects_max_period(self, trajectory, small_space):
        model = PositioningErrorModel(max_period=7.0, error=2.0, seed=2)
        labeled = model.corrupt_trajectory(trajectory, small_space)
        records = labeled.sequence.records
        gaps = [b.timestamp - a.timestamp for a, b in zip(records, records[1:])]
        assert max(gaps) <= 7.0 + 1e-6
        assert min(gaps) >= 1.0 - 1e-6

    def test_larger_period_means_fewer_records(self, trajectory, small_space):
        dense = PositioningErrorModel(max_period=3.0, error=2.0, seed=3)
        sparse = PositioningErrorModel(max_period=15.0, error=2.0, seed=3)
        n_dense = len(dense.corrupt_trajectory(trajectory, small_space).sequence)
        n_sparse = len(sparse.corrupt_trajectory(trajectory, small_space).sequence)
        assert n_sparse < n_dense

    def test_error_bounded_without_outliers(self, trajectory, small_space):
        model = PositioningErrorModel(
            max_period=5.0, error=4.0, outlier_probability=0.0,
            false_floor_probability=0.0, seed=4,
        )
        labeled = model.corrupt_trajectory(trajectory, small_space)
        truth_points = trajectory.points
        for record in labeled.sequence.records:
            nearest = min(truth_points, key=lambda p: abs(p.timestamp - record.timestamp))
            assert nearest.location.planar_distance_to(record.location) <= 4.0 + 1e-6

    def test_zero_error_preserves_locations(self, trajectory, small_space):
        model = PositioningErrorModel(
            max_period=5.0, error=0.0, outlier_probability=0.0,
            false_floor_probability=0.0, seed=5,
        )
        labeled = model.corrupt_trajectory(trajectory, small_space)
        truth_points = trajectory.points
        for record in labeled.sequence.records:
            nearest = min(truth_points, key=lambda p: abs(p.timestamp - record.timestamp))
            assert nearest.location.planar_distance_to(record.location) == pytest.approx(0.0)

    def test_false_floor_clamped_to_existing_floors(self, trajectory, small_space):
        model = PositioningErrorModel(
            max_period=3.0, error=2.0, false_floor_probability=1.0, seed=6
        )
        labeled = model.corrupt_trajectory(trajectory, small_space)
        floors = set(small_space.floors)
        reported = {record.floor for record in labeled.sequence.records}
        assert reported <= floors or all(
            min(floors) <= floor <= max(floors) for floor in reported
        )

    def test_too_short_trajectory_returns_none(self, small_space):
        from repro.mobility.simulator import GroundTruthTrajectory

        model = PositioningErrorModel()
        assert model.corrupt_trajectory(GroundTruthTrajectory("x"), small_space) is None

    def test_corrupt_population(self, trajectory, small_space):
        model = PositioningErrorModel(seed=8)
        results = model.corrupt_population([trajectory, trajectory], small_space)
        assert len(results) == 2

    def test_determinism(self, trajectory, small_space):
        a = PositioningErrorModel(max_period=5.0, error=3.0, seed=9).corrupt_trajectory(
            trajectory, small_space
        )
        b = PositioningErrorModel(max_period=5.0, error=3.0, seed=9).corrupt_trajectory(
            trajectory, small_space
        )
        assert [r.location for r in a.sequence.records] == [
            r.location for r in b.sequence.records
        ]
