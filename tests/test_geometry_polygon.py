"""Tests for repro.geometry.polygon."""


import pytest

from repro.geometry.point import Point
from repro.geometry.polygon import BoundingBox, Polygon, Rectangle


class TestBoundingBox:
    def test_degenerate_box_rejected(self):
        with pytest.raises(ValueError):
            BoundingBox(2.0, 0.0, 1.0, 1.0)

    def test_dimensions_and_area(self):
        box = BoundingBox(0.0, 0.0, 4.0, 2.0)
        assert box.width == 4.0
        assert box.height == 2.0
        assert box.area == 8.0
        assert box.center == Point(2.0, 1.0)

    def test_contains_point_boundary_inclusive(self):
        box = BoundingBox(0.0, 0.0, 1.0, 1.0)
        assert box.contains_point(Point(0.0, 0.0))
        assert box.contains_point(Point(0.5, 0.5))
        assert not box.contains_point(Point(1.1, 0.5))

    def test_intersects_overlapping_and_touching(self):
        a = BoundingBox(0.0, 0.0, 2.0, 2.0)
        assert a.intersects(BoundingBox(1.0, 1.0, 3.0, 3.0))
        assert a.intersects(BoundingBox(2.0, 0.0, 3.0, 1.0))  # touching edge
        assert not a.intersects(BoundingBox(2.1, 2.1, 3.0, 3.0))

    def test_union_covers_both(self):
        a = BoundingBox(0.0, 0.0, 1.0, 1.0)
        b = BoundingBox(2.0, 2.0, 3.0, 4.0)
        union = a.union(b)
        assert union.min_x == 0.0 and union.max_y == 4.0
        assert union.area >= a.area and union.area >= b.area

    def test_expanded(self):
        box = BoundingBox(1.0, 1.0, 2.0, 2.0).expanded(0.5)
        assert box.min_x == 0.5 and box.max_y == 2.5

    def test_enlargement_zero_when_contained(self):
        outer = BoundingBox(0.0, 0.0, 10.0, 10.0)
        inner = BoundingBox(1.0, 1.0, 2.0, 2.0)
        assert outer.enlargement(inner) == 0.0
        assert inner.enlargement(outer) > 0.0

    def test_distance_to_point(self):
        box = BoundingBox(0.0, 0.0, 1.0, 1.0)
        assert box.distance_to_point(Point(0.5, 0.5)) == 0.0
        assert box.distance_to_point(Point(4.0, 5.0)) == pytest.approx(5.0)


class TestPolygon:
    def test_requires_three_vertices(self):
        with pytest.raises(ValueError):
            Polygon([Point(0, 0), Point(1, 1)])

    def test_triangle_area_and_centroid(self):
        triangle = Polygon([Point(0, 0), Point(4, 0), Point(0, 3)])
        assert triangle.area == pytest.approx(6.0)
        assert triangle.centroid.x == pytest.approx(4.0 / 3.0)
        assert triangle.centroid.y == pytest.approx(1.0)

    def test_area_independent_of_orientation(self):
        cw = Polygon([Point(0, 0), Point(0, 3), Point(4, 0)])
        ccw = Polygon([Point(0, 0), Point(4, 0), Point(0, 3)])
        assert cw.area == pytest.approx(ccw.area)

    def test_contains_point_inside_outside_boundary(self):
        square = Polygon([Point(0, 0), Point(2, 0), Point(2, 2), Point(0, 2)])
        assert square.contains_point(Point(1, 1))
        assert square.contains_point(Point(0, 1))  # boundary
        assert not square.contains_point(Point(3, 1))

    def test_contains_point_concave(self):
        # L-shaped polygon: the notch is outside.
        lshape = Polygon(
            [Point(0, 0), Point(3, 0), Point(3, 1), Point(1, 1), Point(1, 3), Point(0, 3)]
        )
        assert lshape.contains_point(Point(0.5, 2.0))
        assert lshape.contains_point(Point(2.0, 0.5))
        assert not lshape.contains_point(Point(2.0, 2.0))

    def test_distance_to_point(self):
        square = Polygon([Point(0, 0), Point(2, 0), Point(2, 2), Point(0, 2)])
        assert square.distance_to_point(Point(1, 1)) == 0.0
        assert square.distance_to_point(Point(5, 1)) == pytest.approx(3.0)

    def test_closest_point_to(self):
        square = Polygon([Point(0, 0), Point(2, 0), Point(2, 2), Point(0, 2)])
        closest = square.closest_point_to(Point(5.0, 1.0))
        assert closest.x == pytest.approx(2.0)
        assert closest.y == pytest.approx(1.0)
        inside = Point(1.0, 1.0)
        assert square.closest_point_to(inside) == inside

    def test_sample_grid_points_inside(self):
        square = Polygon([Point(0, 0), Point(3, 0), Point(3, 3), Point(0, 3)])
        samples = square.sample_grid_points(per_side=3)
        assert len(samples) == 9
        assert all(square.contains_point(p) for p in samples)

    def test_sample_grid_points_never_empty(self):
        thin = Polygon([Point(0, 0), Point(10, 0), Point(10, 0.001)])
        assert thin.sample_grid_points(per_side=2)

    def test_edges_count(self):
        square = Polygon([Point(0, 0), Point(2, 0), Point(2, 2), Point(0, 2)])
        assert len(square.edges()) == 4


class TestRectangle:
    def test_degenerate_rectangle_rejected(self):
        with pytest.raises(ValueError):
            Rectangle(0.0, 0.0, 0.0, 1.0)

    def test_dimensions(self):
        rect = Rectangle(1.0, 2.0, 4.0, 8.0)
        assert rect.width == 3.0
        assert rect.height == 6.0
        assert rect.area == pytest.approx(18.0)

    def test_contains_point_fast_path(self):
        rect = Rectangle(0.0, 0.0, 2.0, 2.0)
        assert rect.contains_point(Point(2.0, 2.0))
        assert not rect.contains_point(Point(2.0, 2.0), include_boundary=False)

    def test_centroid_is_center(self):
        rect = Rectangle(0.0, 0.0, 4.0, 2.0)
        assert rect.centroid == Point(2.0, 1.0)

    def test_bounding_box_matches(self):
        rect = Rectangle(1.0, 1.0, 3.0, 5.0)
        bbox = rect.bounding_box
        assert (bbox.min_x, bbox.min_y, bbox.max_x, bbox.max_y) == (1.0, 1.0, 3.0, 5.0)
