"""Batch/parallel annotation: ``annotate_many`` workers and the harness pool.

Parallel labeling must be a pure throughput knob: same results, same order
as the serial path, for any worker count.
"""

import pytest

from repro.core import C2MNAnnotator
from repro.evaluation.harness import MethodEvaluator


@pytest.fixture(scope="module")
def test_sequences(small_split):
    _, test = small_split
    return [labeled.sequence for labeled in test.sequences]


class TestPredictLabelsMany:
    def test_matches_serial_predictions(self, fitted_annotator, test_sequences):
        serial = [fitted_annotator.predict_labels(s) for s in test_sequences]
        assert fitted_annotator.predict_labels_many(test_sequences) == serial
        assert (
            fitted_annotator.predict_labels_many(test_sequences, workers=3) == serial
        )

    def test_order_preserved_under_parallelism(self, fitted_annotator, test_sequences):
        # Length is a per-sequence fingerprint: result k must belong to input k.
        results = fitted_annotator.predict_labels_many(test_sequences, workers=4)
        for sequence, (regions, events) in zip(test_sequences, results):
            assert len(regions) == len(sequence)
            assert len(events) == len(sequence)

    def test_empty_batch(self, fitted_annotator):
        assert fitted_annotator.predict_labels_many([]) == []
        assert fitted_annotator.predict_labels_many([], workers=4) == []


class TestAnnotateMany:
    def test_matches_serial_annotation(self, fitted_annotator, test_sequences):
        serial = [fitted_annotator.annotate(s) for s in test_sequences]
        assert fitted_annotator.annotate_many(test_sequences) == serial
        assert fitted_annotator.annotate_many(test_sequences, workers=3) == serial

    def test_invalid_worker_count_rejected(self, fitted_annotator, test_sequences):
        with pytest.raises(ValueError, match="workers"):
            fitted_annotator.annotate_many(test_sequences, workers=0)


class TestEvaluatorWorkers:
    def test_parallel_evaluation_matches_serial(self, fitted_annotator, small_split):
        train, test = small_split
        serial = MethodEvaluator(keep_predictions=True).evaluate(
            fitted_annotator, train.sequences, test.sequences, fit=False
        )
        parallel = MethodEvaluator(keep_predictions=True, workers=3).evaluate(
            fitted_annotator, train.sequences, test.sequences, fit=False
        )
        assert parallel.scores == serial.scores
        for serial_pred, parallel_pred in zip(serial.predictions, parallel.predictions):
            assert serial_pred.region_labels == parallel_pred.region_labels
            assert serial_pred.event_labels == parallel_pred.event_labels

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            MethodEvaluator(workers=0)


class TestEngineSwitch:
    def test_annotator_engines_decode_identically(self, small_space, small_split, fast_config):
        train, test = small_split
        reference = C2MNAnnotator(
            small_space, config=fast_config.with_engine("reference")
        )
        vectorized = C2MNAnnotator(
            small_space, config=fast_config.with_engine("vectorized")
        )
        reference.fit(train.sequences[:2])
        vectorized.fit(train.sequences[:2])
        for labeled in test.sequences[:3]:
            assert reference.predict_labels(labeled.sequence) == (
                vectorized.predict_labels(labeled.sequence)
            )

    def test_unknown_engine_rejected_by_config(self, fast_config):
        with pytest.raises(ValueError, match="engine"):
            fast_config.with_engine("turbo")
