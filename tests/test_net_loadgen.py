"""The open-loop load generator: planning determinism and a live end-to-end run."""

from __future__ import annotations

import csv

import pytest

from repro.net.loadgen import (
    DEFAULT_MIX,
    STREAM_CHUNK,
    LoadRunReport,
    _chunk_streams,
    _percentile,
    _suffix_stream_ids,
    build_plan,
    parse_mix,
    run_loadtest,
    write_run_table,
)
from repro.net.server import ServerThread
from repro.service.service import AnnotationService


def test_parse_mix_normalises_weights():
    weights = parse_mix("stream=2,annotate=1,popular=1")
    assert weights == {"stream": 0.5, "annotate": 0.25, "popular": 0.25}
    assert sum(parse_mix(DEFAULT_MIX).values()) == pytest.approx(1.0)


@pytest.mark.parametrize(
    "mix",
    ["", "stream=0", "bogus=1", "stream=abc", "stream=-1,annotate=2"],
)
def test_parse_mix_rejects_bad_input(mix):
    with pytest.raises(ValueError):
        parse_mix(mix)


def test_chunk_streams_orders_and_flags(small_split):
    _, test = small_split
    chunks = _chunk_streams(test.sequences)
    per_object = {}
    for object_id, piece, opens, finishes in chunks:
        assert 1 <= len(piece) <= STREAM_CHUNK
        assert opens == (object_id not in per_object)
        per_object.setdefault(object_id, []).extend(piece)
    # The last chunk of every object carries the finish flag, exactly once.
    finishing = [object_id for object_id, _, _, finishes in chunks if finishes]
    assert sorted(finishing) == sorted(per_object)
    # Reassembled chunks are each object's full record stream, in order.
    for labeled in test.sequences:
        rebuilt = per_object[labeled.object_id]
        assert [record["t"] for record in rebuilt] == [
            record.timestamp for record in labeled.sequence
        ]
    # Chunks are globally ordered by their first record's timestamp.
    firsts = [piece[0]["t"] for _, piece, _, _ in chunks]
    assert firsts == sorted(firsts)


def test_build_plan_is_deterministic(mall_tiny_scenario):
    build = lambda: build_plan(  # noqa: E731 — tiny local alias
        "mall-tiny", rate=25, duration=3.0, seed=9, scenario=mall_tiny_scenario
    )
    one, two = build(), build()
    assert one.arrivals == two.arrivals
    assert [[op.kind for op in group] for group in one.groups] == (
        [[op.kind for op in group] for group in two.groups]
    )
    assert one.unfinished_objects == two.unfinished_objects
    assert all(0 < arrival < 3.0 for arrival in one.arrivals)
    assert len(one.arrivals) == len(one.groups)


def test_build_plan_rejects_bad_parameters(mall_tiny_scenario):
    with pytest.raises(ValueError):
        build_plan("mall-tiny", rate=0, duration=1, scenario=mall_tiny_scenario)
    with pytest.raises(ValueError):
        build_plan("mall-tiny", rate=5, duration=0, scenario=mall_tiny_scenario)


def test_plan_stream_groups_bundle_lifecycle(mall_tiny_scenario):
    plan = build_plan(
        "mall-tiny", rate=50, duration=4.0, seed=2, scenario=mall_tiny_scenario
    )
    opened, finished = set(), set()
    for group in plan.groups:
        kinds = [op.kind for op in group]
        if "stream-push" not in kinds:
            assert len(group) == 1  # annotate and query ops ride alone
            continue
        # Within a group the lifecycle order is open < push < finish.
        assert kinds == [k for k in ("stream-open", "stream-push", "stream-finish")
                         if k in kinds]
        for op in group:
            if op.kind == "stream-open":
                assert op.object_id not in opened
                opened.add(op.object_id)
            elif op.kind == "stream-push":
                assert op.object_id in opened
            else:
                finished.add(op.object_id)
    assert set(plan.unfinished_objects) == opened - finished


def test_suffix_stream_ids_rekeys_everything(mall_tiny_scenario):
    plan = build_plan(
        "mall-tiny", rate=50, duration=4.0, seed=2, scenario=mall_tiny_scenario
    )
    _suffix_stream_ids(plan, "rep7")
    for group in plan.groups:
        for op in group:
            if op.object_id is not None:
                assert op.object_id.endswith("/rep7")
                if op.body is not None and "object_id" in op.body:
                    assert op.body["object_id"] == op.object_id
            elif op.kind == "annotate":
                for sequence in op.body["sequences"]:
                    assert sequence["object_id"].endswith("/rep7")
    assert all(oid.endswith("/rep7") for oid in plan.unfinished_objects)


def test_percentile_nearest_rank():
    values = [1.0, 2.0, 3.0, 4.0]
    assert _percentile([], 0.95) == 0.0
    assert _percentile(values, 0.50) == 2.0
    assert _percentile(values, 0.95) == 4.0
    assert _percentile([7.0], 0.99) == 7.0


def _report(**overrides) -> LoadRunReport:
    defaults = dict(
        run="mall-tiny@10rps", repetition=0, scenario="mall-tiny", seed=1,
        arrival_rate=10.0, mix=DEFAULT_MIX, duration_seconds=1.0,
        elapsed_seconds=1.1, requests=20, failures=1, throughput_rps=18.2,
        avg_latency_ms=5.0, p50_latency_ms=4.0, p95_latency_ms=9.0,
        p99_latency_ms=9.5, max_latency_ms=9.9, rss_mb=100.0,
    )
    defaults.update(overrides)
    return LoadRunReport(**defaults)


def test_report_row_has_the_contract_columns():
    row = _report().row()
    for column in ("run", "repetition", "throughput_rps", "p50_latency_ms",
                   "p95_latency_ms", "p99_latency_ms", "failure_rate", "rss_mb"):
        assert column in row
    assert row["failure_rate"] == pytest.approx(0.05)
    assert _report(requests=0, failures=0).failure_rate == 0.0


def test_write_run_table_csv(tmp_path):
    path = write_run_table(
        [_report(), _report(repetition=1)], tmp_path / "run_table.csv"
    )
    with path.open() as handle:
        rows = list(csv.DictReader(handle))
    assert len(rows) == 2
    assert {"throughput_rps", "p50_latency_ms", "p95_latency_ms",
            "p99_latency_ms", "failure_rate"} <= set(rows[0])
    assert rows[1]["repetition"] == "1"


def test_loadtest_end_to_end_zero_failures(fitted_annotator, mall_tiny_scenario):
    service = AnnotationService(fitted_annotator)
    with ServerThread(service) as server:
        reports = run_loadtest(
            "mall-tiny",
            host=server.host,
            port=server.port,
            rate=10,
            duration=1.5,
            repetitions=2,
            seed=3,
            scenario=mall_tiny_scenario,
        )
    assert len(reports) == 2
    for report in reports:
        assert report.requests > 0
        assert report.failures == 0
        assert report.failure_rate == 0.0
        assert report.throughput_rps > 0
        assert report.p50_latency_ms <= report.p95_latency_ms <= report.p99_latency_ms
    # Repetitions are independent draws: distinct seeds recorded.
    assert [report.seed for report in reports] == [3, 4]
    # The run drained every session it opened.
    assert service.live_sessions() == []
