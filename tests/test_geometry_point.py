"""Tests for repro.geometry.point."""


import pytest

from repro.geometry.point import IndoorPoint, Point, centroid_of, euclidean, squared_euclidean


class TestPoint:
    def test_distance_to_is_euclidean(self):
        assert Point(0.0, 0.0).distance_to(Point(3.0, 4.0)) == pytest.approx(5.0)

    def test_distance_to_self_is_zero(self):
        p = Point(2.5, -1.0)
        assert p.distance_to(p) == 0.0

    def test_squared_distance_matches_distance(self):
        a, b = Point(1.0, 2.0), Point(4.0, 6.0)
        assert a.squared_distance_to(b) == pytest.approx(a.distance_to(b) ** 2)

    def test_translate(self):
        assert Point(1.0, 1.0).translate(2.0, -3.0) == Point(3.0, -2.0)

    def test_midpoint(self):
        assert Point(0.0, 0.0).midpoint(Point(2.0, 4.0)) == Point(1.0, 2.0)

    def test_as_tuple_and_iter(self):
        p = Point(1.5, 2.5)
        assert p.as_tuple() == (1.5, 2.5)
        assert tuple(p) == (1.5, 2.5)

    def test_points_are_hashable_value_objects(self):
        assert len({Point(1.0, 2.0), Point(1.0, 2.0), Point(3.0, 4.0)}) == 2

    def test_points_are_ordered(self):
        assert Point(1.0, 2.0) < Point(1.0, 3.0) < Point(2.0, 0.0)


class TestIndoorPoint:
    def test_planar_projection(self):
        p = IndoorPoint(3.0, 4.0, 2)
        assert p.planar == Point(3.0, 4.0)

    def test_distance_same_floor(self):
        a = IndoorPoint(0.0, 0.0, 1)
        b = IndoorPoint(3.0, 4.0, 1)
        assert a.distance_to(b) == pytest.approx(5.0)

    def test_distance_across_floors_raises(self):
        a = IndoorPoint(0.0, 0.0, 0)
        b = IndoorPoint(0.0, 0.0, 1)
        with pytest.raises(ValueError):
            a.distance_to(b)

    def test_planar_distance_ignores_floor(self):
        a = IndoorPoint(0.0, 0.0, 0)
        b = IndoorPoint(3.0, 4.0, 5)
        assert a.planar_distance_to(b) == pytest.approx(5.0)

    def test_with_floor(self):
        p = IndoorPoint(1.0, 1.0, 0)
        assert p.with_floor(3) == IndoorPoint(1.0, 1.0, 3)

    def test_as_tuple_includes_floor(self):
        assert IndoorPoint(1.0, 2.0, 3).as_tuple() == (1.0, 2.0, 3)

    def test_default_floor_is_zero(self):
        assert IndoorPoint(0.0, 0.0).floor == 0


class TestHelpers:
    def test_euclidean_matches_math_hypot(self):
        assert euclidean((0.0, 0.0), (3.0, 4.0)) == pytest.approx(5.0)

    def test_squared_euclidean_three_dimensional(self):
        assert squared_euclidean((0.0, 0.0, 0.0), (1.0, 2.0, 2.0)) == pytest.approx(9.0)

    def test_euclidean_identical_points(self):
        assert euclidean((1.0, 2.0), (1.0, 2.0)) == 0.0

    def test_centroid_of_points(self):
        centroid = centroid_of([Point(0.0, 0.0), Point(2.0, 0.0), Point(1.0, 3.0)])
        assert centroid.x == pytest.approx(1.0)
        assert centroid.y == pytest.approx(1.0)

    def test_centroid_of_empty_raises(self):
        with pytest.raises(ValueError):
            centroid_of([])
