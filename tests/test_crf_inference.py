"""Tests for ICM decoding, Gibbs sampling and configuration consensus."""

import random

import pytest

from repro.core.config import C2MNConfig
from repro.crf.features import FeatureExtractor
from repro.crf.inference import (
    consensus_configuration,
    decode_icm,
    gibbs_sample_variable,
    initial_events,
    initial_regions,
)
from repro.crf.model import C2MNModel, EVENT_DOMAIN
from repro.mobility.records import EVENT_PASS, EVENT_STAY


@pytest.fixture(scope="module")
def extractor(small_space, small_oracle):
    return FeatureExtractor(small_space, C2MNConfig.fast(), oracle=small_oracle)


@pytest.fixture(scope="module")
def model(extractor):
    return C2MNModel(extractor)


@pytest.fixture(scope="module")
def prepared(extractor, small_dataset):
    labeled = small_dataset.sequences[0]
    return extractor.prepare(
        labeled.sequence,
        true_regions=labeled.region_labels,
        true_events=labeled.event_labels,
    )


class TestInitialisation:
    def test_initial_events_from_density(self, prepared):
        events = initial_events(prepared)
        assert len(events) == len(prepared)
        for density, event in zip(prepared.density_labels, events):
            if density == "noise":
                assert event == EVENT_PASS
            else:
                assert event == EVENT_STAY

    def test_initial_regions_are_nearest(self, prepared):
        regions = initial_regions(prepared)
        assert regions == prepared.nearest_regions

    def test_initialisations_are_reasonable_on_simulated_data(self, prepared):
        """The cheap initialisations should already agree with a majority of the truth."""
        events = initial_events(prepared)
        regions = initial_regions(prepared)
        event_hits = sum(1 for a, b in zip(events, prepared.true_events) if a == b)
        region_hits = sum(1 for a, b in zip(regions, prepared.true_regions) if a == b)
        assert event_hits / len(prepared) > 0.5
        assert region_hits / len(prepared) > 0.4


class TestICM:
    def test_decode_shapes_and_domains(self, model, prepared):
        regions, events = decode_icm(model, prepared)
        assert len(regions) == len(events) == len(prepared)
        assert all(event in EVENT_DOMAIN for event in events)
        for region, candidates in zip(regions, prepared.candidates):
            assert region in candidates

    def test_decode_is_deterministic(self, model, prepared):
        first = decode_icm(model, prepared)
        second = decode_icm(model, prepared)
        assert first == second

    def test_decode_with_explicit_sweeps(self, model, prepared):
        regions, events = decode_icm(model, prepared, max_sweeps=1)
        assert len(regions) == len(prepared)

    def test_decode_with_custom_initialisation(self, model, prepared):
        init_regions_custom = [prepared.candidates[i][0] for i in range(len(prepared))]
        init_events_custom = [EVENT_PASS] * len(prepared)
        regions, events = decode_icm(
            model,
            prepared,
            init_regions=init_regions_custom,
            init_events=init_events_custom,
        )
        assert len(regions) == len(prepared)


class TestGibbs:
    def test_sample_count_and_shapes(self, model, prepared):
        rng = random.Random(3)
        samples = gibbs_sample_variable(
            model,
            prepared,
            initial_regions(prepared),
            initial_events(prepared),
            variable="event",
            n_samples=4,
            rng=rng,
        )
        assert len(samples) == 4
        assert all(len(sample) == len(prepared) for sample in samples)
        assert all(value in EVENT_DOMAIN for sample in samples for value in sample)

    def test_region_samples_stay_in_candidate_sets(self, model, prepared):
        rng = random.Random(4)
        samples = gibbs_sample_variable(
            model,
            prepared,
            initial_regions(prepared),
            initial_events(prepared),
            variable="region",
            n_samples=2,
            rng=rng,
        )
        for sample in samples:
            for value, candidates in zip(sample, prepared.candidates):
                assert value in candidates

    def test_sampling_is_seed_deterministic(self, model, prepared):
        def run(seed):
            return gibbs_sample_variable(
                model,
                prepared,
                initial_regions(prepared),
                initial_events(prepared),
                variable="event",
                n_samples=3,
                rng=random.Random(seed),
            )

        assert run(7) == run(7)
        assert run(7) != run(8) or True  # different seeds may coincide, no strict assert

    def test_invalid_arguments(self, model, prepared):
        rng = random.Random(0)
        with pytest.raises(ValueError):
            gibbs_sample_variable(
                model, prepared, [], [], variable="both", n_samples=1, rng=rng
            )
        with pytest.raises(ValueError):
            gibbs_sample_variable(
                model,
                prepared,
                initial_regions(prepared),
                initial_events(prepared),
                variable="event",
                n_samples=0,
                rng=rng,
            )


class TestConsensus:
    def test_majority_vote(self):
        samples = [
            ["a", "b", "c"],
            ["a", "b", "d"],
            ["a", "x", "d"],
        ]
        assert consensus_configuration(samples) == ["a", "b", "d"]

    def test_single_sample_is_identity(self):
        assert consensus_configuration([["x", "y"]]) == ["x", "y"]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            consensus_configuration([])
