"""Tests for the per-figure experiment runners (at tiny scale).

The full sweeps are exercised by the benchmark harness; here we verify that
every runner produces well-formed results and respects its parameters using
the smallest useful workloads and the cheapest methods.
"""

import pytest

from repro.core.config import C2MNConfig
from repro.evaluation.experiments import (
    C2MN_FAMILY,
    TABLE4_METHODS,
    ExperimentScale,
    build_methods,
    build_real_style_dataset,
    build_synthetic_style_dataset,
    query_precisions,
    real_dataset_statistics,
    run_accuracy_comparison,
    run_first_configured_study,
    run_query_precision,
    run_training_fraction_sweep,
    run_training_time_sweep,
    synthetic_dataset_table,
)
from repro.evaluation.harness import MethodEvaluator, ground_truth_semantics
from repro.mobility.dataset import train_test_split

TINY = ExperimentScale.tiny()
FAST = C2MNConfig.fast(max_iterations=2, mcmc_samples=4, lbfgs_iterations=3)
CHEAP_METHODS = ("SMoT", "HMM+DC")


@pytest.fixture(scope="module")
def tiny_dataset():
    return build_real_style_dataset(TINY)


class TestScalesAndDatasets:
    def test_scales_ordering(self):
        assert ExperimentScale.tiny().objects <= ExperimentScale.small().objects
        assert ExperimentScale.small().objects <= ExperimentScale.medium().objects

    def test_table4_method_list_matches_paper(self):
        assert len(TABLE4_METHODS) == 10
        assert TABLE4_METHODS[-1] == "C2MN"
        assert set(C2MN_FAMILY) <= set(TABLE4_METHODS)

    def test_real_style_dataset_statistics(self, tiny_dataset):
        stats = real_dataset_statistics(tiny_dataset)
        assert stats["sequences"] == len(tiny_dataset)
        assert stats["records"] > 0
        assert stats["regions"] > 0

    def test_synthetic_dataset_table_rows(self):
        rows = synthetic_dataset_table([(5.0, 3.0), (15.0, 3.0)], scale=TINY)
        assert len(rows) == 2
        assert rows[0]["records"] > rows[1]["records"]  # sparser sampling → fewer records

    def test_build_synthetic_dataset(self):
        dataset = build_synthetic_style_dataset(max_period=8.0, error=4.0, scale=TINY)
        assert len(dataset) > 0

    def test_build_methods_instantiates_all_names(self, tiny_dataset):
        methods = build_methods(TABLE4_METHODS, tiny_dataset.space, FAST)
        assert [m.name for m in methods] == list(TABLE4_METHODS)


class TestAccuracyComparison:
    def test_rows_for_each_method(self, tiny_dataset):
        results = run_accuracy_comparison(
            tiny_dataset, methods=CHEAP_METHODS, config=FAST
        )
        assert [r.method for r in results] == list(CHEAP_METHODS)
        for result in results:
            assert 0.0 <= result.scores.region_accuracy <= 1.0
            assert 0.0 <= result.scores.perfect_accuracy <= 1.0
            assert result.scores.records > 0


class TestSweeps:
    def test_training_fraction_sweep_structure(self, tiny_dataset):
        sweep = run_training_fraction_sweep(
            tiny_dataset, fractions=(0.5, 0.7), methods=("SMoT",), config=FAST
        )
        assert set(sweep) == {"SMoT"}
        assert set(sweep["SMoT"]) == {0.5, 0.7}

    def test_training_time_sweep_structure(self, tiny_dataset):
        times = run_training_time_sweep(
            tiny_dataset, max_iterations=(1, 2), methods=("CMN",), config=FAST
        )
        assert set(times["CMN"]) == {1, 2}
        assert all(value >= 0.0 for value in times["CMN"].values())

    def test_first_configured_study_methods(self, tiny_dataset):
        times = run_first_configured_study(
            tiny_dataset, max_iterations=(1,), config=FAST
        )
        assert set(times) == {"C2MN", "C2MN@R"}


class TestQueryPrecision:
    def test_query_precision_structure(self, tiny_dataset):
        precisions = run_query_precision(
            tiny_dataset,
            query_intervals=(600.0, 1200.0),
            methods=CHEAP_METHODS,
            config=FAST,
        )
        assert set(precisions) == set(CHEAP_METHODS)
        for per_interval in precisions.values():
            assert set(per_interval) == {600.0, 1200.0}
            for tkprq, tkfrpq in per_interval.values():
                assert 0.0 <= tkprq <= 1.0
                assert 0.0 <= tkfrpq <= 1.0

    def test_query_precisions_of_ground_truth_is_one(self, tiny_dataset):
        """Using the ground-truth m-semantics as the 'prediction' gives precision 1."""
        train, test = train_test_split(tiny_dataset, train_fraction=0.7, seed=17)
        truth = ground_truth_semantics(test.sequences)
        evaluator = MethodEvaluator()
        methods = build_methods(("SMoT",), tiny_dataset.space, FAST)
        result = evaluator.evaluate(methods[0], train.sequences, test.sequences)
        # Replace the method's semantics with the ground truth.
        result.semantics = truth
        earliest = min(seq.sequence.start_time for seq in test.sequences)
        tkprq, tkfrpq = query_precisions(
            result,
            truth,
            tiny_dataset.space.region_ids,
            interval=(earliest, earliest + 900.0),
        )
        assert tkprq == pytest.approx(1.0)
        assert tkfrpq in (pytest.approx(1.0), 0.0)  # 0.0 only if no pair exists

    def test_query_precisions_indexed_equals_scan(self, tiny_dataset):
        """The indexed precision runner is a pure physical-plan change."""
        train, test = train_test_split(tiny_dataset, train_fraction=0.7, seed=17)
        truth = ground_truth_semantics(test.sequences)
        evaluator = MethodEvaluator()
        methods = build_methods(("SMoT",), tiny_dataset.space, FAST)
        result = evaluator.evaluate(methods[0], train.sequences, test.sequences)
        earliest = min(seq.sequence.start_time for seq in test.sequences)
        kwargs = dict(interval=(earliest, earliest + 900.0))
        indexed = query_precisions(
            result, truth, tiny_dataset.space.region_ids, indexed=True, **kwargs
        )
        scanned = query_precisions(
            result, truth, tiny_dataset.space.region_ids, indexed=False, **kwargs
        )
        assert indexed == scanned
