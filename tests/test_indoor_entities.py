"""Tests for repro.indoor.entities."""

import pytest

from repro.geometry.point import IndoorPoint
from repro.geometry.polygon import Rectangle
from repro.indoor.entities import Door, Partition, SemanticRegion, Staircase


@pytest.fixture()
def room():
    return Partition(partition_id=1, geometry=Rectangle(0, 0, 10, 8), floor=1, kind="room")


class TestPartition:
    def test_area_and_centroid(self, room):
        assert room.area == pytest.approx(80.0)
        assert room.centroid == IndoorPoint(5.0, 4.0, 1)

    def test_contains_requires_same_floor(self, room):
        assert room.contains(IndoorPoint(5.0, 4.0, 1))
        assert not room.contains(IndoorPoint(5.0, 4.0, 0))
        assert not room.contains(IndoorPoint(50.0, 4.0, 1))


class TestDoor:
    def test_requires_one_or_two_partitions(self):
        with pytest.raises(ValueError):
            Door(door_id=1, location=IndoorPoint(0, 0, 0), partition_ids=())
        with pytest.raises(ValueError):
            Door(door_id=1, location=IndoorPoint(0, 0, 0), partition_ids=(1, 2, 3))

    def test_connects_and_other_partition(self):
        door = Door(door_id=1, location=IndoorPoint(0, 0, 0), partition_ids=(3, 7))
        assert door.connects(3) and door.connects(7)
        assert not door.connects(5)
        assert door.other_partition(3) == 7
        assert door.other_partition(7) == 3

    def test_exterior_door_other_partition_is_none(self):
        door = Door(door_id=2, location=IndoorPoint(0, 0, 0), partition_ids=(4,))
        assert door.other_partition(4) is None

    def test_other_partition_unknown_raises(self):
        door = Door(door_id=3, location=IndoorPoint(0, 0, 0), partition_ids=(1, 2))
        with pytest.raises(ValueError):
            door.other_partition(9)

    def test_floor_property(self):
        door = Door(door_id=4, location=IndoorPoint(0, 0, 3), partition_ids=(1, 2))
        assert door.floor == 3


class TestStaircase:
    def test_upper_must_be_higher(self):
        with pytest.raises(ValueError):
            Staircase(
                staircase_id=1,
                location_lower=IndoorPoint(0, 0, 1),
                location_upper=IndoorPoint(0, 0, 1),
                partition_lower=1,
                partition_upper=2,
            )

    def test_travel_distance_positive(self):
        with pytest.raises(ValueError):
            Staircase(
                staircase_id=1,
                location_lower=IndoorPoint(0, 0, 0),
                location_upper=IndoorPoint(0, 0, 1),
                partition_lower=1,
                partition_upper=2,
                travel_distance=0.0,
            )


class TestSemanticRegion:
    @pytest.fixture()
    def region(self):
        return SemanticRegion(
            region_id=5,
            name="coffee",
            partition_ids=(1,),
            floor=2,
            geometries=[Rectangle(0, 0, 4, 4)],
        )

    def test_requires_partitions(self):
        with pytest.raises(ValueError):
            SemanticRegion(region_id=1, name="empty", partition_ids=())

    def test_area_and_centroid(self, region):
        assert region.area == pytest.approx(16.0)
        assert region.centroid == IndoorPoint(2.0, 2.0, 2)

    def test_multi_geometry_centroid_is_area_weighted(self):
        region = SemanticRegion(
            region_id=9,
            name="two-rooms",
            partition_ids=(1, 2),
            floor=0,
            geometries=[Rectangle(0, 0, 2, 2), Rectangle(2, 0, 6, 2)],
        )
        # Areas 4 and 8: centroid x = (1*4 + 4*8) / 12 = 3.0
        assert region.centroid.x == pytest.approx(3.0)

    def test_contains_and_distance(self, region):
        assert region.contains(IndoorPoint(1.0, 1.0, 2))
        assert not region.contains(IndoorPoint(1.0, 1.0, 0))
        assert region.distance_to(IndoorPoint(7.0, 0.0, 2)) == pytest.approx(3.0)
        assert region.distance_to(IndoorPoint(7.0, 0.0, 0)) == float("inf")

    def test_sample_points_inside(self, region):
        points = region.sample_points(per_side=2)
        assert points
        assert all(region.contains(p) for p in points)

    def test_equality_by_region_id(self, region):
        clone = SemanticRegion(
            region_id=5, name="other-name", partition_ids=(9,), floor=1,
            geometries=[Rectangle(0, 0, 1, 1)],
        )
        assert region == clone
        assert len({region, clone}) == 1
