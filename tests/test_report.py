"""Tests of the report pipeline: determinism, golden specs, trend flags."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.report import (
    bootstrap_ci,
    build_report,
    load_bench_reports,
    summarize,
    trends_table,
)

GOLDEN_DIR = Path(__file__).resolve().parent / "data" / "golden_report"

CREATED_AT = "2026-08-01T00:00:00+00:00"


def _envelope(suite, results, **extra):
    report = {
        "schema": "repro.bench/1",
        "suite": suite,
        "created_at": CREATED_AT,
        "python": "3.11.7",
        "platform": "test",
        "cpu_count": 4,
        "scale": "tiny",
        "workers": 4,
        "repeats": 2,
        "workload": {"sequences": 8, "records": 100},
        "results": results,
    }
    report.update(extra)
    return report


def _row(name, *, backend="serial", workers=1, speedup=1.0, seconds=0.5, **extra):
    row = {
        "name": name,
        "backend": backend,
        "workers": workers,
        "seconds": seconds,
        "speedup_vs_serial": speedup,
        "agreement": True,
    }
    row.update(extra)
    return row


def _runtime_report(*, process_speedup=6.0):
    return _envelope(
        "runtime",
        [
            _row("annotate_many", phase="steady", speedup=1.0, seconds=2.0),
            _row("annotate_many", backend="thread", workers=4,
                 phase="steady", speedup=3.5, seconds=0.57),
            _row("annotate_many", backend="process", workers=4,
                 phase="steady", speedup=process_speedup, seconds=0.33),
            _row("annotate_many_batched", phase="steady",
                 speedup=5.0, seconds=0.4),
            _row("annotate_many_warmup", backend="process", workers=4,
                 phase="warmup", speedup=2.0, seconds=1.0),
        ],
        fit_seconds=1.25,
    )


def _queries_report(*, indexed_speedup=8.0):
    observations = [0.8, 0.9, 1.0, 0.7]
    return _envelope(
        "queries",
        [
            _row("demo:tkprq:scan", speedup=1.0, seconds=0.1),
            _row("demo:tkprq:indexed", speedup=indexed_speedup, seconds=0.0125),
            _row("demo:tkfrpq:scan", speedup=1.0, seconds=0.2),
            _row("demo:tkfrpq:indexed", speedup=4.0, seconds=0.05),
        ],
        queries={"ks": [1, 5], "largest_scenario": "demo"},
        scenarios=[{
            "name": "demo", "seed": 5, "fingerprint": "abc", "objects": 40,
            "entries": 400, "postings": 300, "regions": 9,
            "index_build_seconds": 0.01, "query_count": 14, "loops": 3,
        }],
        precision=[
            {
                "scenario": "demo", "seed": 5, "fingerprint": "abc",
                "fit_seconds": 0.5, "query": query, "k": k,
                "queries": len(observations),
                "precision": observations, "recall": observations,
            }
            for query in ("tkprq", "tkfrpq")
            for k in (1, 5)
        ],
    )


def _write_corpus(root, *, process_speedup=6.0, indexed_speedup=8.0):
    """A baseline dir and a current dir holding one small corpus each."""
    baselines = root / "baselines"
    current = root / "current"
    for directory in (baselines, current):
        directory.mkdir(parents=True, exist_ok=True)
    for directory, runtime_speedup, query_speedup in (
        (baselines, 6.0, 8.0),
        (current, process_speedup, indexed_speedup),
    ):
        (directory / "BENCH_runtime.json").write_text(
            json.dumps(_runtime_report(process_speedup=runtime_speedup)))
        (directory / "BENCH_queries.json").write_text(
            json.dumps(_queries_report(indexed_speedup=query_speedup)))
    return baselines, current


def _build(root, out_name, **corpus_kwargs):
    baselines, current = _write_corpus(root, **corpus_kwargs)
    return build_report(
        bench_dir=current, baselines_dir=baselines,
        out_dir=root / out_name, seed=11,
    )


class TestDeterminism:
    def test_rebuild_is_byte_identical(self, tmp_path):
        first = _build(tmp_path, "report-a")
        second = _build(tmp_path, "report-b")
        assert [p.name for p in first.written] == [p.name for p in second.written]
        for path_a, path_b in zip(first.written, second.written):
            assert path_a.read_bytes() == path_b.read_bytes(), path_a.name

    def test_no_wall_clock_in_artifacts(self, tmp_path):
        build = _build(tmp_path, "report")
        markdown = (build.out_dir / "REPORT.md").read_text()
        # The only dates are the created_at stamps of the input reports.
        assert CREATED_AT[:10] in markdown
        import datetime
        today = datetime.date.today().isoformat()
        if today != CREATED_AT[:10]:
            assert today not in markdown


class TestGoldenSpecs:
    """The committed golden artifacts pin spec generation bitwise.

    Regenerate after an intentional pipeline change::

        PYTHONPATH=src:tests python -c "import test_report; test_report.regenerate_golden()"
    """

    @pytest.mark.parametrize("name", [
        "trends.vl.json", "runtime_speedup.vl.json", "precision.vl.json",
    ])
    def test_spec_matches_golden(self, tmp_path, name):
        build = _build(tmp_path, "report")
        generated = (build.out_dir / "specs" / name).read_bytes()
        assert generated == (GOLDEN_DIR / name).read_bytes(), (
            f"{name} drifted from the committed golden spec; if the change "
            "is intentional, regenerate via test_report.regenerate_golden()"
        )

    def test_table_matches_golden(self, tmp_path):
        build = _build(tmp_path, "report")
        generated = (build.out_dir / "data" / "trends.csv").read_bytes()
        assert generated == (GOLDEN_DIR / "trends.csv").read_bytes()


class TestBootstrapCI:
    def test_same_seed_same_interval(self):
        values = [0.7, 0.8, 0.9, 0.85, 0.75]
        assert bootstrap_ci(values, seed=3) == bootstrap_ci(values, seed=3)
        assert summarize(values, seed=3) == summarize(values, seed=3)

    def test_different_seed_differs(self):
        # Few resamples keep percentile noise visible, so distinct seeds
        # visibly draw distinct resample sets.
        values = [0.7, 0.8, 0.9, 0.85, 0.75]
        intervals = {
            bootstrap_ci(values, seed=seed, resamples=25) for seed in range(8)
        }
        assert len(intervals) > 1

    def test_interval_brackets_the_mean(self):
        values = [0.2, 0.4, 0.6, 0.8]
        stats = summarize(values, seed=1)
        assert stats["lo"] <= stats["mean"] <= stats["hi"]
        assert stats["n"] == len(values)

    def test_single_observation_degenerates_to_point(self):
        assert bootstrap_ci([0.5], seed=9) == (0.5, 0.5)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            bootstrap_ci([], seed=0)


class TestRegressionAnnotation:
    def _trends(self, tmp_path, **corpus_kwargs):
        baselines, current = _write_corpus(tmp_path, **corpus_kwargs)
        reports = load_bench_reports(current, baselines)
        _, rows = trends_table(reports)
        return rows

    def test_no_regression_at_baseline_parity(self, tmp_path):
        rows = self._trends(tmp_path)
        assert rows and not any(row["regressed"] for row in rows)

    def test_drop_below_floor_is_flagged(self, tmp_path):
        # runtime suite tolerance 0.3: floor = 6.0 * 0.7 = 4.2; 2.0 < 4.2.
        rows = self._trends(tmp_path, process_speedup=2.0)
        flagged = [row for row in rows if row["regressed"]]
        assert [row["metric"] for row in flagged] == [
            "runtime:annotate_many[process]"
        ]
        assert flagged[0]["source"] == "current"
        assert flagged[0]["floor"] == pytest.approx(4.2)
        assert flagged[0]["delta_pct"] == pytest.approx(-66.67)

    def test_drop_within_tolerance_is_not_flagged(self, tmp_path):
        rows = self._trends(tmp_path, process_speedup=4.5)  # above the 4.2 floor
        assert not any(row["regressed"] for row in rows)

    def test_baseline_rows_are_never_flagged(self, tmp_path):
        rows = self._trends(tmp_path, process_speedup=2.0, indexed_speedup=1.0)
        assert not any(
            row["regressed"] for row in rows if row["source"] == "baseline"
        )

    def test_warmup_rows_use_the_looser_default_tolerance(self, tmp_path):
        rows = self._trends(tmp_path)
        warmup = [row for row in rows if row["name"] == "annotate_many_warmup"]
        steady = [row for row in rows if row["metric"]
                  == "runtime:annotate_many[process]"]
        assert all(row["tolerance"] == 0.5 for row in warmup)
        assert all(row["tolerance"] == 0.3 for row in steady)

    def test_flagged_regressions_surface_in_the_report(self, tmp_path):
        build = _build(tmp_path, "report", process_speedup=2.0)
        assert [row["metric"] for row in build.regressions] == [
            "runtime:annotate_many[process]"
        ]
        markdown = (build.out_dir / "REPORT.md").read_text()
        assert "annotate_many" in markdown


def regenerate_golden():
    """Rewrite the committed golden artifacts from the synthetic corpus."""
    import tempfile

    root = Path(tempfile.mkdtemp())
    build = _build(root, "report")
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    for name in ("trends.vl.json", "runtime_speedup.vl.json", "precision.vl.json"):
        (GOLDEN_DIR / name).write_bytes(
            (build.out_dir / "specs" / name).read_bytes())
    (GOLDEN_DIR / "trends.csv").write_bytes(
        (build.out_dir / "data" / "trends.csv").read_bytes())
    print(f"regenerated golden artifacts under {GOLDEN_DIR}")
