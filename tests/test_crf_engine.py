"""Parity tests: the vectorized engine must reproduce the reference engine.

The vectorized engine assembles its per-node feature matrices from potential
tables precomputed once per sequence, summing the same floating-point terms
in the same order as the reference path — so the two engines must agree not
just approximately but *bit for bit* on local distributions, and therefore
label for label on ICM decodings and Gibbs samples driven by the same RNG
seed.
"""

import random

import numpy as np
import pytest

from repro.core.config import C2MNConfig
from repro.crf.engine import ENGINE_NAMES, VectorizedEngine, make_engine
from repro.crf.features import FeatureExtractor
from repro.crf.inference import (
    decode_icm,
    gibbs_sample_variable,
    initial_events,
    initial_regions,
)
from repro.crf.learning import AlternateLearner
from repro.crf.model import C2MNModel


@pytest.fixture(scope="module")
def extractor(small_space, small_oracle):
    return FeatureExtractor(small_space, C2MNConfig.fast(), oracle=small_oracle)


@pytest.fixture(scope="module")
def model(extractor):
    model = C2MNModel(extractor)
    # Non-uniform weights so argmax/sampling decisions are score-driven.
    model.weights = np.linspace(0.05, 1.2, model.layout.size)
    return model


@pytest.fixture(scope="module")
def prepared_pair(extractor, small_dataset):
    """The same sequence prepared twice, so each engine gets fresh caches."""
    labeled = small_dataset.sequences[0]
    return (
        extractor.prepare(labeled.sequence),
        extractor.prepare(labeled.sequence),
    )


class TestMakeEngine:
    def test_reference_engine_is_the_model(self, model):
        assert make_engine(model, "reference") is model

    def test_vectorized_engine_wraps_the_model(self, model):
        engine = make_engine(model, "vectorized")
        assert isinstance(engine, VectorizedEngine)
        assert engine.model is model
        assert engine.extractor is model.extractor

    def test_default_follows_config(self, model):
        assert isinstance(make_engine(model), VectorizedEngine)

    def test_unknown_engine_rejected(self, model):
        with pytest.raises(ValueError, match="engine"):
            make_engine(model, "quantum")
        assert set(ENGINE_NAMES) == {"reference", "vectorized"}


class TestFeatureMatrixParity:
    def test_bitwise_identical_matrices(self, model, prepared_pair):
        data_ref, data_vec = prepared_pair
        engine = VectorizedEngine(model)
        regions = initial_regions(data_ref)
        events = initial_events(data_ref)
        for index in range(len(data_ref)):
            for variable in ("region", "event"):
                ref_values, ref_matrix = model.feature_matrix(
                    data_ref, regions, events, index, variable
                )
                vec_values, vec_matrix = engine.feature_matrix(
                    data_vec, regions, events, index, variable
                )
                assert ref_values == vec_values
                assert np.array_equal(ref_matrix, vec_matrix), (index, variable)

    def test_bitwise_identical_distributions(self, model, prepared_pair):
        data_ref, data_vec = prepared_pair
        engine = VectorizedEngine(model)
        regions = initial_regions(data_ref)
        events = initial_events(data_ref)
        for index in range(len(data_ref)):
            for variable in ("region", "event"):
                _, ref_probs, _ = model.local_distribution(
                    data_ref, regions, events, index, variable
                )
                _, vec_probs, _ = engine.local_distribution(
                    data_vec, regions, events, index, variable
                )
                assert np.array_equal(ref_probs, vec_probs), (index, variable)

    def test_neighbour_label_outside_candidates_falls_back(self, model, prepared_pair):
        """Hand-built configurations may use regions outside the candidate set."""
        data_ref, data_vec = prepared_pair
        engine = VectorizedEngine(model)
        regions = initial_regions(data_ref)
        events = initial_events(data_ref)
        # Force a neighbour label the candidate tables cannot know about.
        all_regions = [region.region_id for region in model.extractor.space.regions]
        foreign = next(
            region_id
            for region_id in all_regions
            if region_id not in data_ref.candidates[0]
        )
        regions[0] = foreign
        _, ref_matrix = model.feature_matrix(data_ref, regions, events, 1, "region")
        _, vec_matrix = engine.feature_matrix(data_vec, regions, events, 1, "region")
        assert np.array_equal(ref_matrix, vec_matrix)


class TestDecodingParity:
    def test_icm_label_for_label(self, model, extractor, small_dataset):
        engine = VectorizedEngine(model)
        for labeled in small_dataset.sequences:
            data_ref = extractor.prepare(labeled.sequence)
            data_vec = extractor.prepare(labeled.sequence)
            assert decode_icm(model, data_ref) == decode_icm(engine, data_vec)

    def test_gibbs_sample_for_sample(self, model, extractor, small_dataset):
        engine = VectorizedEngine(model)
        for labeled in small_dataset.sequences[:3]:
            data_ref = extractor.prepare(labeled.sequence)
            data_vec = extractor.prepare(labeled.sequence)
            regions = initial_regions(data_ref)
            events = initial_events(data_ref)
            for variable in ("region", "event"):
                ref_samples = gibbs_sample_variable(
                    model,
                    data_ref,
                    regions,
                    events,
                    variable=variable,
                    n_samples=5,
                    rng=random.Random(1234),
                )
                vec_samples = gibbs_sample_variable(
                    engine,
                    data_vec,
                    regions,
                    events,
                    variable=variable,
                    n_samples=5,
                    rng=random.Random(1234),
                )
                assert ref_samples == vec_samples

    @pytest.mark.parametrize(
        "structure",
        [
            {"use_transition": False},
            {"use_synchronization": False},
            {"use_event_segmentation": False},
            {"use_space_segmentation": False},
            {"use_event_segmentation": False, "use_space_segmentation": False},
        ],
    )
    def test_icm_parity_across_structure_variants(
        self, small_space, small_oracle, small_dataset, structure
    ):
        config = C2MNConfig.fast().with_structure(**structure)
        extractor = FeatureExtractor(small_space, config, oracle=small_oracle)
        model = C2MNModel(extractor)
        model.weights = np.linspace(0.05, 1.2, model.layout.size)
        engine = VectorizedEngine(model)
        labeled = small_dataset.sequences[1]
        data_ref = extractor.prepare(labeled.sequence)
        data_vec = extractor.prepare(labeled.sequence)
        assert decode_icm(model, data_ref) == decode_icm(engine, data_vec)


class TestLearningParity:
    def test_fit_weights_identical_across_engines(
        self, small_space, small_oracle, small_dataset
    ):
        """Alternate learning (Gibbs sweeps included) must not depend on the engine.

        Each engine gets a *fresh* extractor (and distance oracle) on purpose:
        the two engines populate the shared feature/distance caches in
        different orders, so any request-order dependence in cached values
        shows up here as diverging weights.
        """
        weights = {}
        for engine_name in ENGINE_NAMES:
            config = C2MNConfig.fast(max_iterations=3, mcmc_samples=6).with_engine(
                engine_name
            )
            extractor = FeatureExtractor(small_space, config)
            model = C2MNModel(extractor)
            prepared = [
                extractor.prepare(
                    labeled.sequence,
                    true_regions=labeled.region_labels,
                    true_events=labeled.event_labels,
                )
                for labeled in small_dataset.sequences[:4]
            ]
            report = AlternateLearner(model).fit(prepared)
            weights[engine_name] = report.weights
        assert np.array_equal(weights["reference"], weights["vectorized"])


class TestOracleOrderIndependence:
    def test_region_distance_independent_of_request_direction(self, small_space):
        """The cached expected MIWD must not depend on who asks first.

        The reference engine and the potential-table builder request region
        pairs in different directions; floating-point summation order would
        otherwise leak the first caller's direction into the unordered cache
        and break bitwise engine parity (ulp-level weight divergence during
        learning).
        """
        from repro.indoor.distance import IndoorDistanceOracle

        forward = IndoorDistanceOracle(small_space)
        backward = IndoorDistanceOracle(small_space)
        region_ids = small_space.region_ids
        for pos, region_a in enumerate(region_ids):
            for region_b in region_ids[pos + 1 :]:
                first = forward.region_distance(region_a, region_b)
                second = backward.region_distance(region_b, region_a)
                assert first == second, (region_a, region_b, first - second)


class TestPotentialTables:
    def test_tables_cached_on_sequence_data(self, model, extractor, small_dataset):
        engine = VectorizedEngine(model)
        data = extractor.prepare(small_dataset.sequences[0].sequence)
        assert data.potentials is None
        tables = engine.tables(data)
        assert data.potentials is tables
        assert engine.tables(data) is tables
        assert tables.nbytes() > 0

    def test_tables_match_scalar_features(self, model, extractor, small_dataset):
        engine = VectorizedEngine(model)
        data = extractor.prepare(small_dataset.sequences[0].sequence)
        tables = engine.tables(data)
        layout = model.layout
        for i, ids in enumerate(tables.candidate_ids):
            assert ids == data.candidates[i]
            for pos, region_id in enumerate(ids):
                assert tables.candidate_pos[i][region_id] == pos
                assert tables.region_base[i][pos, layout.spatial_matching] == (
                    extractor.spatial_matching(data, i, region_id)
                )
        for i in range(len(data) - 1):
            left_ids = tables.candidate_ids[i]
            right_ids = tables.candidate_ids[i + 1]
            assert tables.fst[i].shape == (len(left_ids), len(right_ids))
            assert tables.fst[i][0, 0] == extractor.space_transition(
                left_ids[0], right_ids[0], elapsed=data.elapsed_steps[i]
            )
            assert tables.fsc[i][0, 0] == extractor.spatial_consistency(
                data, i, left_ids[0], right_ids[0]
            )

    def test_pairwise_tables_added_lazily(self, small_space, small_oracle, small_dataset):
        """Tables built for a variant without transition gain fst on demand."""
        decoupled = C2MNConfig.fast().with_structure(
            use_transition=False, use_synchronization=False
        )
        extractor = FeatureExtractor(small_space, decoupled, oracle=small_oracle)
        data = extractor.prepare(small_dataset.sequences[0].sequence)
        lean = extractor.potential_tables(
            data, transition=False, synchronization=False
        )
        assert lean.fst is None and lean.fsc is None and lean.fec is None
        full = extractor.potential_tables(data, transition=True, synchronization=True)
        assert full is lean
        assert full.fst is not None and full.fsc is not None and full.fec is not None
