"""Unit tests of the execution runtime (:mod:`repro.runtime`).

Covers the executor contract (uniform argument validation, sharding,
ordered gathering, backend equivalence, broadcast semantics), the derived
state cache (LRU behaviour, statistics, pickling) and the content
fingerprints that key it.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core import C2MNAnnotator, C2MNConfig
from repro.mobility.records import PositioningSequence
from repro.runtime import (
    BACKEND_NAMES,
    DerivedStateCache,
    Executor,
    config_fingerprint,
    fingerprint,
    map_sharded,
    map_with_workers,
    resolve_backend,
    sequence_fingerprint,
    shard_indices,
    space_fingerprint,
    validate_workers,
    weights_fingerprint,
)


def _square(value):
    """Top-level helper so the process backend can pickle it."""
    return value * value


class _Scaler:
    """Picklable object with a method, for broadcast tests."""

    def __init__(self, factor):
        self.factor = factor

    def scale(self, value, offset=0):
        return self.factor * value + offset


# --------------------------------------------------------------------------
# Argument validation
# --------------------------------------------------------------------------
class TestValidation:
    def test_validate_workers_accepts_none_and_positive(self):
        assert validate_workers(None) == 1
        assert validate_workers(1) == 1
        assert validate_workers(7) == 7

    @pytest.mark.parametrize("bad", [0, -1, -100])
    def test_validate_workers_rejects_non_positive(self, bad):
        with pytest.raises(ValueError):
            validate_workers(bad)

    @pytest.mark.parametrize("bad", [1.5, "2", True])
    def test_validate_workers_rejects_non_int(self, bad):
        with pytest.raises(TypeError):
            validate_workers(bad)

    def test_resolve_backend(self):
        for name in BACKEND_NAMES:
            assert resolve_backend(name) == name
        with pytest.raises(ValueError):
            resolve_backend("gpu")

    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    @pytest.mark.parametrize("items", [[], [3], [3, 1, 2]])
    @pytest.mark.parametrize("bad", [0, -2])
    def test_invalid_workers_rejected_for_every_batch_size(
        self, backend, items, bad
    ):
        """workers < 1 must fail uniformly — even for empty or 1-item batches
        where the historical thread-pool shim silently fell back to serial."""
        with pytest.raises(ValueError):
            Executor(backend=backend, workers=bad)
        with pytest.raises(ValueError):
            map_with_workers(_square, items, bad, backend=backend)

    def test_executor_rejects_unknown_backend(self):
        with pytest.raises(ValueError):
            Executor(backend="fiber", workers=2)

    def test_map_broadcast_rejects_unknown_method(self):
        with pytest.raises(AttributeError):
            Executor().map_broadcast(_Scaler(2), "no_such_method", [1, 2])


# --------------------------------------------------------------------------
# Sharding
# --------------------------------------------------------------------------
class TestSharding:
    @pytest.mark.parametrize("n_items", [0, 1, 2, 7, 16, 97])
    @pytest.mark.parametrize("shards", [1, 2, 3, 8, 200])
    def test_shards_cover_range_in_order(self, n_items, shards):
        bounds = shard_indices(n_items, shards)
        flattened = [i for start, stop in bounds for i in range(start, stop)]
        assert flattened == list(range(n_items))

    @pytest.mark.parametrize("n_items,shards", [(10, 3), (16, 4), (7, 7), (9, 2)])
    def test_shards_are_balanced(self, n_items, shards):
        sizes = [stop - start for start, stop in shard_indices(n_items, shards)]
        assert max(sizes) - min(sizes) <= 1
        assert len(sizes) == min(shards, n_items)
        assert all(size > 0 for size in sizes)

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            shard_indices(5, 0)


# --------------------------------------------------------------------------
# Mapping backends
# --------------------------------------------------------------------------
class TestExecutorMap:
    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    @pytest.mark.parametrize("workers", [None, 1, 2, 4])
    def test_map_matches_serial_and_keeps_order(self, backend, workers):
        items = list(range(23))
        expected = [_square(item) for item in items]
        executor = Executor(backend=backend, workers=workers)
        assert executor.map(_square, items) == expected

    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    def test_map_empty_items(self, backend):
        assert Executor(backend=backend, workers=3).map(_square, []) == []

    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    def test_map_fewer_items_than_workers(self, backend):
        assert Executor(backend=backend, workers=8).map(_square, [5, 6]) == [25, 36]

    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    @pytest.mark.parametrize("workers", [None, 2, 3])
    def test_map_broadcast_matches_serial(self, backend, workers):
        items = list(range(17))
        scaler = _Scaler(3)
        expected = [scaler.scale(item, offset=1) for item in items]
        executor = Executor(backend=backend, workers=workers)
        assert executor.map_broadcast(scaler, "scale", items, offset=1) == expected

    def test_map_sharded_convenience(self):
        assert map_sharded(_square, [1, 2, 3], workers=2, backend="process") == [
            1,
            4,
            9,
        ]

    def test_map_with_workers_threads_by_default(self):
        items = list(range(9))
        assert map_with_workers(_square, items, None) == [_square(i) for i in items]
        assert map_with_workers(_square, items, 3) == [_square(i) for i in items]
        assert map_with_workers(_square, items, 2, backend="process") == [
            _square(i) for i in items
        ]


# --------------------------------------------------------------------------
# Derived-state cache
# --------------------------------------------------------------------------
class TestDerivedStateCache:
    def test_get_or_build_builds_once(self):
        cache = DerivedStateCache()
        calls = []

        def build():
            calls.append(1)
            return "value"

        assert cache.get_or_build("k", build) == "value"
        assert cache.get_or_build("k", build) == "value"
        assert len(calls) == 1
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_lru_eviction_order(self):
        cache = DerivedStateCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"; "b" becomes least recent
        cache.put("c", 3)
        assert "b" not in cache
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.stats.evictions == 1

    def test_get_miss_returns_none(self):
        cache = DerivedStateCache()
        assert cache.get("absent") is None
        assert cache.stats.misses == 1

    def test_put_overwrites(self):
        cache = DerivedStateCache()
        cache.put("k", 1)
        cache.put("k", 2)
        assert cache.get("k") == 2
        assert len(cache) == 1

    def test_clear(self):
        cache = DerivedStateCache()
        cache.put("k", 1)
        cache.clear()
        assert len(cache) == 0

    def test_invalid_max_entries(self):
        with pytest.raises(ValueError):
            DerivedStateCache(max_entries=0)

    def test_pickle_ships_settings_not_entries(self):
        cache = DerivedStateCache(max_entries=7)
        cache.put("k", object())
        clone = pickle.loads(pickle.dumps(cache))
        assert clone.max_entries == 7
        assert len(clone) == 0
        clone.put("x", 1)  # the clone must be fully functional (lock restored)
        assert clone.get("x") == 1


# --------------------------------------------------------------------------
# Fingerprints
# --------------------------------------------------------------------------
class TestFingerprints:
    def test_fingerprint_part_boundaries(self):
        assert fingerprint("ab", "c") != fingerprint("a", "bc")
        assert fingerprint("ab", "c") == fingerprint("ab", "c")

    def test_config_fingerprint_tracks_content(self):
        base = C2MNConfig.fast()
        assert config_fingerprint(base) == config_fingerprint(C2MNConfig.fast())
        changed = C2MNConfig.fast(icm_sweeps=base.icm_sweeps + 1)
        assert config_fingerprint(base) != config_fingerprint(changed)

    def test_sequence_fingerprint_tracks_records(self, small_split):
        _, test = small_split
        first = test.sequences[0].sequence
        second = test.sequences[1].sequence
        assert sequence_fingerprint(first) == sequence_fingerprint(first)
        assert sequence_fingerprint(first) != sequence_fingerprint(second)
        shifted = PositioningSequence(
            list(first.records)[1:], object_id=first.object_id
        )
        assert sequence_fingerprint(first) != sequence_fingerprint(shifted)

    def test_weights_fingerprint(self):
        import numpy as np

        a = np.array([1.0, 2.0, 3.0])
        assert weights_fingerprint(a) == weights_fingerprint(a.copy())
        assert weights_fingerprint(a) != weights_fingerprint(a + 1e-9)

    def test_space_fingerprint_tracks_venue(self, small_space, office_space):
        from repro.indoor import build_mall_space

        rebuilt = build_mall_space(floors=1, shops_per_side=4)
        assert space_fingerprint(small_space) == space_fingerprint(rebuilt)
        assert space_fingerprint(small_space) != space_fingerprint(office_space)


# --------------------------------------------------------------------------
# Cache wired into the annotator
# --------------------------------------------------------------------------
class TestAnnotatorCache:
    def test_cached_decode_is_identical_and_hits(self, small_space, small_split):
        train, test = small_split
        config = C2MNConfig.fast(
            max_iterations=1, mcmc_samples=2, lbfgs_iterations=1, icm_sweeps=2
        )
        plain = C2MNAnnotator(small_space, config=config)
        plain.fit(train.sequences[:2])

        cached = C2MNAnnotator(small_space, config=config)
        assert cached.cache is None
        cache = cached.enable_cache()
        assert cached.enable_cache() is cache  # idempotent
        cached._restore_weights(plain.weights)

        sequences = [labeled.sequence for labeled in test.sequences]
        expected = plain.predict_labels_many(sequences)
        first = cached.predict_labels_many(sequences)
        second = cached.predict_labels_many(sequences)
        assert first == expected
        assert second == expected
        assert cache.stats.misses == len(sequences)
        assert cache.stats.hits == len(sequences)

    def test_shared_cache_keeps_venues_apart(self, small_space, office_space):
        """One cache shared by annotators on different venues must never
        serve one venue's prepared state to the other."""
        config = C2MNConfig.fast()
        shared = DerivedStateCache()
        mall = C2MNAnnotator(small_space, config=config, cache=shared)
        office = C2MNAnnotator(office_space, config=config, cache=shared)
        assert mall._config_key != office._config_key

    def test_pickled_cached_annotator_starts_cold_but_decodes_identically(
        self, fitted_annotator, small_split
    ):
        _, test = small_split
        sequence = test.sequences[0].sequence
        expected = fitted_annotator.predict_labels(sequence)

        cached = pickle.loads(pickle.dumps(fitted_annotator))
        cache = cached.enable_cache()
        assert cached.predict_labels(sequence) == expected
        assert cache.stats.misses == 1

        clone = pickle.loads(pickle.dumps(cached))
        assert len(clone.cache) == 0  # entries never ship through the pipe
        assert clone.cache.max_entries == cache.max_entries
        assert clone.predict_labels(sequence) == expected
