"""Tests for clique templates, weight layout and segment utilities."""

import numpy as np
import pytest

from repro.crf.cliques import (
    N_WEIGHTS,
    CliqueTemplates,
    WeightLayout,
    segment_containing,
    segments_of_labels,
)


class TestWeightLayout:
    def test_size(self):
        assert WeightLayout().size == N_WEIGHTS == 12

    def test_indexes_cover_all_weights_exactly_once(self):
        layout = WeightLayout()
        all_indexes = sorted(layout.region_relevant + layout.event_relevant)
        assert all_indexes == list(range(N_WEIGHTS))

    def test_region_and_event_indexes_disjoint(self):
        layout = WeightLayout()
        assert set(layout.region_relevant).isdisjoint(layout.event_relevant)

    def test_indexes_for(self):
        layout = WeightLayout()
        assert layout.indexes_for("region") == layout.region_relevant
        assert layout.indexes_for("event") == layout.event_relevant
        with pytest.raises(ValueError):
            layout.indexes_for("both")

    def test_initial_weights(self):
        weights = WeightLayout().initial_weights(0.25)
        assert weights.shape == (N_WEIGHTS,)
        assert np.all(weights == 0.25)


class TestCliqueTemplates:
    def test_default_is_fully_coupled(self):
        assert CliqueTemplates().coupled

    def test_decoupled_when_no_segmentation(self):
        templates = CliqueTemplates(event_segmentation=False, space_segmentation=False)
        assert not templates.coupled

    def test_single_segmentation_category_keeps_coupling(self):
        assert CliqueTemplates(event_segmentation=False).coupled
        assert CliqueTemplates(space_segmentation=False).coupled


class TestSegments:
    def test_empty_labels(self):
        assert segments_of_labels([]) == []

    def test_single_label(self):
        assert segments_of_labels(["a"]) == [(0, 0)]

    def test_runs(self):
        assert segments_of_labels(["a", "a", "b", "a"]) == [(0, 1), (2, 2), (3, 3)]

    def test_all_equal(self):
        assert segments_of_labels([1, 1, 1, 1]) == [(0, 3)]

    def test_segments_partition_the_sequence(self):
        labels = [1, 1, 2, 2, 2, 3, 1, 1]
        segments = segments_of_labels(labels)
        covered = []
        for start, end in segments:
            covered.extend(range(start, end + 1))
        assert covered == list(range(len(labels)))

    def test_segment_containing_matches_segments(self):
        labels = ["x", "x", "y", "y", "y", "x"]
        segments = segments_of_labels(labels)
        for start, end in segments:
            for i in range(start, end + 1):
                assert segment_containing(labels, i) == (start, end)

    def test_segment_containing_out_of_range(self):
        with pytest.raises(IndexError):
            segment_containing(["a"], 5)
