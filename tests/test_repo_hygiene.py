"""Guard against committed build artifacts (bytecode, caches).

Runs the same check as ``tools/check_hygiene.py`` inside the tier-1 suite so
a stray ``git add -A`` of ``__pycache__`` fails fast, locally and in CI.
Skipped when the checkout is not a git repository (e.g. an sdist).
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

from check_hygiene import violations  # noqa: E402


def _tracked_files():
    try:
        output = subprocess.check_output(
            ["git", "ls-files"], cwd=REPO_ROOT, text=True, stderr=subprocess.DEVNULL
        )
    except (OSError, subprocess.CalledProcessError):
        pytest.skip("not a git checkout")
    return [line for line in output.splitlines() if line]


def test_no_generated_artifacts_tracked():
    bad = violations(_tracked_files())
    assert not bad, (
        "generated artifacts are committed (remove with git rm -r --cached): "
        + ", ".join(bad)
    )


def test_gitignore_covers_bytecode():
    gitignore = (REPO_ROOT / ".gitignore").read_text()
    assert "__pycache__/" in gitignore
    assert "*.py[cod]" in gitignore


def test_violation_patterns():
    assert violations(["src/repro/__pycache__/x.pyc"]) == ["src/repro/__pycache__/x.pyc"]
    assert violations(["a/b.pyc", "a/b.py"]) == ["a/b.pyc"]
    assert violations([".pytest_cache/v/cache"]) == [".pytest_cache/v/cache"]
    assert violations(["src/repro/core/annotator.py", "README.md"]) == []
