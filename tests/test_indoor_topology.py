"""Tests for repro.indoor.topology and repro.indoor.distance."""

import math

import pytest

from repro.geometry.point import IndoorPoint
from repro.indoor.distance import IndoorDistanceOracle
from repro.indoor.topology import AccessibilityGraph


class TestAccessibilityGraph:
    def test_every_door_is_a_node(self, small_space, small_graph):
        assert small_graph.number_of_doors == len(small_space.doors)

    def test_graph_is_connected_single_floor(self, small_graph):
        assert small_graph.is_connected()

    def test_graph_is_connected_across_floors(self, two_floor_space):
        graph = AccessibilityGraph(two_floor_space)
        assert graph.is_connected()

    def test_door_distance_zero_to_self(self, small_space, small_graph):
        door = small_space.doors[0]
        assert small_graph.door_distance(door.door_id, door.door_id) == 0.0

    def test_door_distance_symmetric(self, small_space, small_graph):
        doors = small_space.doors
        a, b = doors[0].door_id, doors[-1].door_id
        assert small_graph.door_distance(a, b) == pytest.approx(
            small_graph.door_distance(b, a)
        )

    def test_door_distance_triangle_inequality(self, small_space, small_graph):
        doors = [door.door_id for door in small_space.doors[:3]]
        d_ab = small_graph.door_distance(doors[0], doors[1])
        d_bc = small_graph.door_distance(doors[1], doors[2])
        d_ac = small_graph.door_distance(doors[0], doors[2])
        assert d_ac <= d_ab + d_bc + 1e-9

    def test_shortest_door_path_endpoints(self, small_space, small_graph):
        a = small_space.doors[0].door_id
        b = small_space.doors[-1].door_id
        path = small_graph.shortest_door_path(a, b)
        assert path is not None
        assert path[0] == a and path[-1] == b

    def test_unknown_door_raises(self, small_graph):
        with pytest.raises(KeyError):
            small_graph.door_distance(99999, 0)

    def test_precompute_all_pairs_fills_cache(self, small_space):
        graph = AccessibilityGraph(small_space)
        graph.precompute_all_pairs()
        assert graph.memory_entries() >= graph.number_of_doors

    def test_distances_from_returns_copy(self, small_space, small_graph):
        door = small_space.doors[0].door_id
        distances = small_graph.distances_from(door)
        distances[door] = -1.0
        assert small_graph.door_distance(door, door) == 0.0


class TestIndoorDistanceOracle:
    def test_same_point_distance_zero(self, small_oracle):
        p = IndoorPoint(5.0, 5.0, 0)
        assert small_oracle.point_distance(p, p) == 0.0

    def test_same_partition_is_euclidean(self, small_space, small_oracle):
        shop = next(p for p in small_space.partitions if p.kind == "shop")
        bbox = shop.geometry.bounding_box
        a = IndoorPoint(bbox.min_x + 1.0, bbox.min_y + 1.0, shop.floor)
        b = IndoorPoint(bbox.min_x + 3.0, bbox.min_y + 4.0, shop.floor)
        assert small_oracle.point_distance(a, b) == pytest.approx(
            a.planar.distance_to(b.planar)
        )

    def test_cross_partition_at_least_euclidean(self, small_space, small_oracle):
        shops = [p for p in small_space.partitions if p.kind == "shop"]
        a_part, b_part = shops[0], shops[-1]
        a = a_part.centroid
        b = b_part.centroid
        distance = small_oracle.point_distance(a, b)
        assert distance >= a.planar.distance_to(b.planar) - 1e-9
        assert math.isfinite(distance)

    def test_point_distance_symmetric(self, small_space, small_oracle):
        shops = [p for p in small_space.partitions if p.kind == "shop"]
        a = shops[0].centroid
        b = shops[3].centroid
        assert small_oracle.point_distance(a, b) == pytest.approx(
            small_oracle.point_distance(b, a), rel=1e-6
        )

    def test_region_distance_zero_for_same_region(self, small_space, small_oracle):
        region = small_space.regions[0]
        assert small_oracle.region_distance(region.region_id, region.region_id) == 0.0

    def test_region_distance_symmetric_and_cached(self, small_space, small_oracle):
        a = small_space.regions[0].region_id
        b = small_space.regions[-1].region_id
        d_ab = small_oracle.region_distance(a, b)
        size_after_first = small_oracle.cache_size()
        d_ba = small_oracle.region_distance(b, a)
        assert d_ab == pytest.approx(d_ba)
        assert small_oracle.cache_size() == size_after_first  # second lookup served from cache

    def test_adjacent_regions_closer_than_distant_ones(self, small_space, small_oracle):
        # Regions are named F{floor}-{S|N}{column}; same column south/north are
        # across the hallway, far columns are further away.
        regions = {region.name: region.region_id for region in small_space.regions}
        near = small_oracle.region_distance(regions["F0-S00"], regions["F0-N00"])
        far = small_oracle.region_distance(regions["F0-S00"], regions["F0-N03"])
        assert near < far

    def test_region_point_distance_finite(self, small_space, small_oracle):
        region = small_space.regions[0]
        point = small_space.regions[-1].centroid
        assert math.isfinite(small_oracle.region_point_distance(region.region_id, point))

    def test_cross_floor_distance_includes_staircase(self, two_floor_space):
        oracle = IndoorDistanceOracle(two_floor_space)
        lower = next(r for r in two_floor_space.regions if r.floor == 0)
        upper = next(r for r in two_floor_space.regions if r.floor == 1)
        distance = oracle.region_distance(lower.region_id, upper.region_id)
        assert math.isfinite(distance)
        assert distance > 0.0
