"""Atomic persistence: a partial write must never destroy the previous file.

The old code path (bare ``Path.write_text``) truncated the target before
writing, so a crash mid-write corrupted the file *and* lost the last good
version.  These tests stage that crash — an exploding serialiser, a failed
``os.replace`` — against :func:`repro.persistence.atomic.atomic_write_text`
and every save surface that now routes through it, asserting the previous
content always survives byte-for-byte and no temp files are left behind.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.mobility.records import EVENT_STAY, MSemantics
from repro.persistence import atomic_write_text
from repro.service.store import SemanticsStore


def _leftovers(directory):
    return [path for path in directory.iterdir() if path.suffix == ".tmp"]


class TestAtomicWriteText:
    def test_writes_content_and_returns_target(self, tmp_path):
        target = tmp_path / "out.json"
        returned = atomic_write_text(target, '{"ok": true}')
        assert returned == target
        assert target.read_text() == '{"ok": true}'
        assert _leftovers(tmp_path) == []

    def test_replaces_existing_content_atomically(self, tmp_path):
        target = tmp_path / "out.json"
        target.write_text("old")
        atomic_write_text(target, "new")
        assert target.read_text() == "new"
        assert _leftovers(tmp_path) == []

    def test_failed_replace_preserves_previous_file(self, tmp_path, monkeypatch):
        target = tmp_path / "out.json"
        target.write_text("the last good version")

        def exploding_replace(src, dst):
            raise OSError("disk pulled mid-rename")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError, match="disk pulled"):
            atomic_write_text(target, "half-written garbage")
        monkeypatch.undo()
        assert target.read_text() == "the last good version"
        assert _leftovers(tmp_path) == []  # aborted temp file was unlinked

    def test_fsync_mode_still_writes(self, tmp_path):
        target = tmp_path / "out.json"
        atomic_write_text(target, "durable", fsync=True)
        assert target.read_text() == "durable"

    def test_temp_file_lands_in_target_directory(self, tmp_path, monkeypatch):
        """Same-directory temp file: the final rename can't cross devices."""
        target = tmp_path / "deep" / "out.json"
        target.parent.mkdir()
        observed = {}
        original_replace = os.replace

        def spying_replace(src, dst):
            observed["src_dir"] = os.path.dirname(src)
            return original_replace(src, dst)

        monkeypatch.setattr(os, "replace", spying_replace)
        atomic_write_text(target, "x")
        assert observed["src_dir"] == str(target.parent)


class TestStoreSaveIsAtomic:
    @pytest.fixture()
    def populated_store(self):
        store = SemanticsStore()
        store.publish(
            "obj-a",
            [MSemantics(region_id=1, start_time=0.0, end_time=5.0, event=EVENT_STAY)],
        )
        return store

    def test_save_round_trips(self, populated_store, tmp_path):
        path = tmp_path / "store.json"
        populated_store.save(path)
        assert SemanticsStore.load(path).as_dict() == populated_store.as_dict()

    def test_crash_mid_save_keeps_previous_good_file(
        self, populated_store, tmp_path, monkeypatch
    ):
        path = tmp_path / "store.json"
        populated_store.save(path)
        good_bytes = path.read_bytes()

        def exploding_replace(src, dst):
            raise OSError("simulated crash")

        monkeypatch.setattr(os, "replace", exploding_replace)
        populated_store.publish(
            "obj-b",
            [MSemantics(region_id=2, start_time=6.0, end_time=9.0, event=EVENT_STAY)],
        )
        with pytest.raises(OSError, match="simulated crash"):
            populated_store.save(path)
        monkeypatch.undo()
        # The file on disk is still the previous complete version — it
        # parses, loads, and contains exactly the old objects.
        assert path.read_bytes() == good_bytes
        reloaded = SemanticsStore.load(path)
        assert sorted(reloaded.objects()) == ["obj-a"]
        assert _leftovers(tmp_path) == []

    def test_every_save_surface_routes_through_atomic_write(self):
        """Greppable regression guard: no persistence module writes JSON
        with bare ``write_text`` anymore (truncate-then-write is the bug
        this PR removes)."""
        import inspect

        import repro.persistence.serializers as serializers
        import repro.service.service as service_module
        import repro.service.store as store_module
        import repro.store.wal as wal_module

        for module in (serializers, service_module, store_module, wal_module):
            source = inspect.getsource(module)
            for line in source.splitlines():
                stripped = line.strip()
                if stripped.startswith("#") or '"""' in stripped:
                    continue
                assert ".write_text(" not in stripped, (module.__name__, stripped)


class TestServiceSaveIsAtomic:
    def test_service_save_crash_preserves_previous(
        self, fitted_annotator, tmp_path, monkeypatch
    ):
        from repro.service import AnnotationService

        service = AnnotationService(fitted_annotator)
        path = tmp_path / "service.json"
        service.save(path)
        good = json.loads(path.read_text())

        def exploding_replace(src, dst):
            raise OSError("simulated crash")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError, match="simulated crash"):
            service.save(path)
        monkeypatch.undo()
        assert json.loads(path.read_text()) == good
        assert _leftovers(tmp_path) == []
