"""Tests of the sharded store: partitioning, scatter-gather, store fixes.

The central contract — scatter-gather TkPRQ/TkFRPQ answers over any shard
count are bit-identical to the single-store evaluation — is asserted over
the whole scenario catalogue (2/4/8 shards, indexed and scan paths), over
hand-built edge cases, and by a hypothesis property over random streams
with shard counts 1–8.  Alongside live the tests of this PR's store
fixes: incremental index removal under interleaved publish/clear, and the
lock-safe ``live_index`` read under concurrent attach/detach.
"""

from __future__ import annotations

import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.evaluation.harness import ground_truth_semantics
from repro.index import SemanticsIndex, plan_query
from repro.mobility.records import EVENT_PASS, EVENT_STAY, MSemantics
from repro.queries import TkFRPQ, TkPRQ
from repro.scenarios import scenario_names
from repro.service.store import SemanticsStore
from repro.store import (
    HashPartitioner,
    PrefixPartitioner,
    ShardedSemanticsStore,
    partitioner_from_dict,
    scatter_top_k_pairs,
    scatter_top_k_regions,
)


def _stay(region, start, end):
    return MSemantics(region_id=region, start_time=start, end_time=end, event=EVENT_STAY)


def _pass(region, start, end):
    return MSemantics(region_id=region, start_time=start, end_time=end, event=EVENT_PASS)


#: Query shapes exercising every planner-relevant case (mirrors test_index).
QUERY_SHAPES = [
    dict(),
    dict(start=0.0, end=150.0),
    dict(start=None, end=150.0),
    dict(start=150.0, end=None),
    dict(query_regions={1, 3}),
    dict(start=50.0, end=450.0, query_regions={1, 2}),
    dict(query_regions={99}),
    dict(start=1e9, end=2e9),
    dict(start=200.0, end=100.0),  # degenerate: defined by the scan
]


def _single_store(per_object):
    store = SemanticsStore()
    for object_id, entries in per_object.items():
        store.publish(object_id, entries)
    return store


def _sharded_store(per_object, shards, *, partitioner=None, indexed=False):
    store = ShardedSemanticsStore(shards, partitioner=partitioner)
    for object_id, entries in per_object.items():
        store.publish(object_id, entries)
    if indexed:
        store.attach_index()
    return store


def _assert_equivalent(sharded, reference, ks=(1, 2, 3, 10)):
    for shape in QUERY_SHAPES:
        for k in ks:
            prq = TkPRQ(k, **shape)
            frpq = TkFRPQ(k, **shape)
            assert prq.evaluate(sharded) == prq.evaluate(reference), (shape, k)
            assert frpq.evaluate(sharded) == frpq.evaluate(reference), (shape, k)


# --------------------------------------------------------------------------
# Partitioners
# --------------------------------------------------------------------------
class TestPartitioners:
    def test_hash_partitioner_is_deterministic_and_total(self):
        partitioner = HashPartitioner()
        for shards in (1, 2, 4, 8, 13):
            for position in range(200):
                object_id = f"obj-{position}"
                shard = partitioner.shard_for(object_id, shards)
                assert 0 <= shard < shards
                assert shard == partitioner.shard_for(object_id, shards)

    def test_hash_partitioner_spreads_load(self):
        partitioner = HashPartitioner()
        buckets = [0] * 4
        for position in range(2000):
            buckets[partitioner.shard_for(f"obj-{position}", 4)] += 1
        assert min(buckets) > 300  # roughly balanced, not pathological

    def test_prefix_partitioner_groups_by_venue(self):
        partitioner = PrefixPartitioner()
        home = partitioner.shard_for("mall-3/visitor-17", 8)
        assert partitioner.shard_for("mall-3/visitor-94", 8) == home
        assert partitioner.shard_for("mall-3/anything", 8) == home
        # Ids without the separator still place (whole-id hash).
        assert 0 <= partitioner.shard_for("loner", 8) < 8

    def test_partitioner_round_trips_through_dict(self):
        for partitioner in (HashPartitioner(), PrefixPartitioner("::")):
            rebuilt = partitioner_from_dict(partitioner.to_dict())
            assert rebuilt == partitioner

    def test_unknown_partitioner_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown partitioner kind"):
            partitioner_from_dict({"kind": "round-robin"})

    def test_empty_separator_rejected(self):
        with pytest.raises(ValueError, match="separator"):
            PrefixPartitioner("")


# --------------------------------------------------------------------------
# Sharded store surface
# --------------------------------------------------------------------------
class TestShardedStoreSurface:
    @pytest.fixture()
    def per_object(self):
        return {
            "a": [_stay(1, 0, 100), _pass(2, 100, 110), _stay(3, 110, 200)],
            "b": [_stay(1, 0, 50), _stay(2, 60, 120)],
            "c": [_stay(1, 300, 400), _stay(3, 420, 500), _stay(2, 510, 600)],
            "d": [_pass(5, 10, 20)],
        }

    def test_reads_match_single_store(self, per_object):
        reference = _single_store(per_object)
        sharded = _sharded_store(per_object, 3)
        assert sorted(sharded.objects()) == sorted(reference.objects())
        assert len(sharded) == len(reference)
        assert sharded.total_semantics == reference.total_semantics
        assert sharded.as_dict() == reference.as_dict()
        for object_id in per_object:
            assert sharded.semantics_for(object_id) == reference.semantics_for(object_id)
        assert sharded.semantics_for("missing") == []

    def test_every_object_lives_in_exactly_one_shard(self, per_object):
        sharded = _sharded_store(per_object, 4)
        placements = {
            object_id: [
                sid
                for sid, shard in enumerate(sharded.shard_stores())
                if object_id in shard.objects()
            ]
            for object_id in per_object
        }
        assert all(len(shards) == 1 for shards in placements.values())
        assert placements["a"] == [sharded.shard_for("a")]

    def test_clear_routes_to_the_owning_shard(self, per_object):
        sharded = _sharded_store(per_object, 4)
        sharded.clear("b")
        assert "b" not in sharded.objects()
        assert len(sharded) == len(per_object) - 1
        sharded.clear()
        assert len(sharded) == 0

    def test_attach_detach_index_covers_all_shards(self, per_object):
        sharded = _sharded_store(per_object, 3)
        assert not sharded.is_indexed
        indexes = sharded.attach_index()
        assert len(indexes) == 3
        assert sharded.is_indexed
        assert all(shard.is_indexed for shard in sharded.shard_stores())
        sharded.detach_index()
        assert not sharded.is_indexed

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ValueError, match="shards"):
            ShardedSemanticsStore(0)

    def test_planner_routes_sharded_input_to_scatter(self, per_object):
        sharded = _sharded_store(per_object, 2)
        plan = plan_query(sharded)
        assert plan.shards is not None
        assert len(plan.shards) == 2
        assert not plan.use_index
        assert "scatter" in plan.reason
        # explain() surfaces the same plan through the query objects.
        assert TkPRQ(3).explain(sharded).shards is not None

    def test_planner_still_routes_plain_inputs_to_scan_or_index(self, per_object):
        assert plan_query(list(per_object.values())).shards is None
        index = SemanticsIndex.from_semantics(per_object.values())
        assert plan_query(index).use_index


# --------------------------------------------------------------------------
# Scatter-gather equivalence
# --------------------------------------------------------------------------
class TestScatterGatherEquivalence:
    @pytest.fixture()
    def per_object(self):
        # Ties at rank k and regions present in only some shards.
        return {
            f"obj-{position}": [
                _stay(position % 5, 10 * position, 10 * position + 5),
                _stay((position * 3) % 7, 10 * position + 6, 10 * position + 9),
            ]
            for position in range(40)
        }

    @pytest.mark.parametrize("shards", [1, 2, 4, 8])
    @pytest.mark.parametrize("indexed", [False, True])
    def test_handbuilt_equivalence(self, per_object, shards, indexed):
        reference = _single_store(per_object)
        sharded = _sharded_store(per_object, shards, indexed=indexed)
        _assert_equivalent(sharded, reference)

    @pytest.mark.parametrize("shards", [2, 4])
    def test_prefix_partitioned_equivalence(self, per_object, shards):
        renamed = {
            f"venue-{position % 3}/{object_id}": entries
            for position, (object_id, entries) in enumerate(per_object.items())
        }
        reference = _single_store(renamed)
        sharded = _sharded_store(
            renamed, shards, partitioner=PrefixPartitioner(), indexed=True
        )
        _assert_equivalent(sharded, reference)

    def test_mixed_index_state_falls_back_to_scan_merge(self, per_object):
        reference = _single_store(per_object)
        sharded = _sharded_store(per_object, 3)
        sharded.shard_stores()[0].attach_index()  # one shard indexed, two not
        _assert_equivalent(sharded, reference)

    def test_gather_functions_reject_bad_k(self, per_object):
        sharded = _sharded_store(per_object, 2)
        with pytest.raises(ValueError, match="k must be"):
            scatter_top_k_regions(sharded.shard_stores(), 0)
        with pytest.raises(ValueError, match="k must be"):
            scatter_top_k_pairs(sharded.shard_stores(), 0)

    def test_empty_store_answers_empty(self):
        sharded = ShardedSemanticsStore(4)
        assert TkPRQ(5).evaluate(sharded) == []
        assert TkFRPQ(5).evaluate(sharded) == []
        sharded.attach_index()
        assert TkPRQ(5).evaluate(sharded) == []
        assert TkFRPQ(5).evaluate(sharded) == []

    @pytest.mark.parametrize("scenario_name", scenario_names())
    @pytest.mark.parametrize("shards", [2, 4, 8])
    def test_catalogue_equivalence(self, scenario_cache, scenario_name, shards):
        """Scatter-gather == single store on every catalogue scenario."""
        scenario = scenario_cache(scenario_name)
        truth = ground_truth_semantics(scenario.dataset.sequences)
        per_object = {
            f"{scenario_name}/{position}": entries
            for position, entries in enumerate(truth)
        }
        reference = _single_store(per_object)
        reference.attach_index()
        scan_sharded = _sharded_store(per_object, shards)
        indexed_sharded = _sharded_store(per_object, shards, indexed=True)
        _assert_equivalent(scan_sharded, reference, ks=(1, 3, 10))
        _assert_equivalent(indexed_sharded, reference, ks=(1, 3, 10))


# --------------------------------------------------------------------------
# Property: random streams, shard counts 1-8
# --------------------------------------------------------------------------
_entry = st.tuples(
    st.integers(min_value=0, max_value=9),        # region
    st.floats(min_value=0, max_value=900),        # start
    st.floats(min_value=0.1, max_value=80),       # duration
    st.booleans(),                                # stay?
)
_stream = st.lists(
    st.tuples(st.integers(min_value=0, max_value=30), st.lists(_entry, max_size=4)),
    max_size=25,
)


@settings(max_examples=60, deadline=None)
@given(stream=_stream, shards=st.integers(min_value=1, max_value=8), k=st.integers(min_value=1, max_value=6))
def test_property_scatter_matches_single_scan(stream, shards, k):
    """For random publish streams, the sharded evaluation (indexed and not)
    equals the single-store scan, for TkPRQ and TkFRPQ at any k."""
    reference = SemanticsStore()
    sharded = ShardedSemanticsStore(shards)
    for object_number, raw_entries in stream:
        object_id = f"obj-{object_number}"
        clock = 0.0
        entries = []
        for region, start, duration, is_stay in raw_entries:
            begin = clock + start
            entries.append(
                MSemantics(
                    region_id=region,
                    start_time=begin,
                    end_time=begin + duration,
                    event=EVENT_STAY if is_stay else EVENT_PASS,
                )
            )
            clock = begin + duration
        if not entries:
            continue
        reference.publish(object_id, entries)
        sharded.publish(object_id, entries)
    shapes = [dict(), dict(start=100.0, end=700.0), dict(query_regions={1, 2, 3})]
    for shape in shapes:
        prq = TkPRQ(k, **shape)
        frpq = TkFRPQ(k, **shape)
        expected_regions = prq.evaluate(reference)
        expected_pairs = frpq.evaluate(reference)
        assert prq.evaluate(sharded) == expected_regions
        assert frpq.evaluate(sharded) == expected_pairs
    sharded.attach_index()
    for shape in shapes:
        prq = TkPRQ(k, **shape)
        frpq = TkFRPQ(k, **shape)
        assert prq.evaluate(sharded) == prq.evaluate(reference)
        assert frpq.evaluate(sharded) == frpq.evaluate(reference)


# --------------------------------------------------------------------------
# Store fixes riding along: incremental remove + locked live_index
# --------------------------------------------------------------------------
class TestIncrementalRemove:
    def test_interleaved_publish_clear_matches_rebuilt_index(self):
        """After any interleaving of publish/clear, the incrementally
        maintained index answers bit-identically to one rebuilt from
        scratch — and to the scan."""
        store = SemanticsStore()
        store.attach_index()
        script = [
            ("publish", "a", [_stay(1, 0, 10), _stay(2, 12, 20)]),
            ("publish", "b", [_stay(1, 5, 15), _pass(3, 16, 18)]),
            ("clear", "a", None),
            ("publish", "c", [_stay(2, 30, 40), _stay(2, 50, 60), _stay(4, 70, 80)]),
            ("publish", "a", [_stay(4, 100, 110)]),
            ("clear", "missing", None),
            ("publish", "d", [_stay(1, 200, 210), _stay(3, 220, 230)]),
            ("clear", "c", None),
            ("publish", "b", [_stay(2, 300, 310)]),
        ]
        for step, (action, object_id, entries) in enumerate(script):
            if action == "publish":
                store.publish(object_id, entries)
            else:
                store.clear(object_id)
            rebuilt = SemanticsIndex.from_semantics(store.as_dict())
            live = store.live_index
            for shape in QUERY_SHAPES:
                for k in (1, 2, 5):
                    prq = TkPRQ(k, **shape)
                    frpq = TkFRPQ(k, **shape)
                    scan = prq.evaluate(store.as_dict())
                    assert prq.evaluate(live) == scan, (step, shape)
                    assert prq.evaluate(rebuilt) == scan, (step, shape)
                    assert frpq.evaluate(live) == frpq.evaluate(rebuilt), (step, shape)
            # Internal counters match a fresh rebuild exactly (no zombie
            # zero-count entries left by the decrement path).
            assert live.conversion_counters() == rebuilt.conversion_counters()
            assert live.transition_counts() == rebuilt.transition_counts()
            assert live.stats() == rebuilt.stats()

    def test_remove_unknown_object_is_a_noop(self):
        index = SemanticsIndex.from_semantics({"a": [_stay(1, 0, 10)]})
        assert index.remove("missing") is False
        assert index.remove("a") is True
        assert index.stats() == {"regions": 0, "objects": 0, "postings": 0, "entries": 0}

    def test_clear_all_resets_index(self):
        store = SemanticsStore()
        store.attach_index()
        store.publish("a", [_stay(1, 0, 10)])
        store.clear()
        assert store.live_index.stats()["objects"] == 0
        assert TkPRQ(3).evaluate(store) == []


class TestLiveIndexLocking:
    def test_concurrent_attach_detach_while_querying(self):
        """Hammer attach/detach from one thread while another queries; no
        crashes, and every answer matches the scan truth."""
        store = SemanticsStore()
        for position in range(30):
            store.publish(
                f"obj-{position}",
                [_stay(position % 4, 10 * position, 10 * position + 8)],
            )
        expected = TkPRQ(3).evaluate(store.as_dict())
        stop = threading.Event()
        errors = []

        def churn():
            while not stop.is_set():
                store.attach_index()
                store.detach_index()

        def query():
            try:
                while not stop.is_set():
                    assert TkPRQ(3).evaluate(store) == expected
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        workers = [threading.Thread(target=churn) for _ in range(2)]
        workers += [threading.Thread(target=query) for _ in range(2)]
        for worker in workers:
            worker.start()
        import time as _time

        _time.sleep(0.5)
        stop.set()
        for worker in workers:
            worker.join()
        assert errors == []

    def test_concurrent_publish_clear_with_live_index(self):
        """Publish and clear concurrently against an indexed store; the
        final index equals a fresh rebuild of the final contents."""
        store = SemanticsStore()
        store.attach_index()

        def publisher(prefix):
            for position in range(50):
                store.publish(
                    f"{prefix}-{position}",
                    [_stay(position % 5, position, position + 1)],
                )
                if position % 7 == 0:
                    store.clear(f"{prefix}-{position}")

        workers = [
            threading.Thread(target=publisher, args=(f"w{n}",)) for n in range(4)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        rebuilt = SemanticsIndex.from_semantics(store.as_dict())
        live = store.live_index
        assert live.stats() == rebuilt.stats()
        for k in (1, 3, 10):
            assert TkPRQ(k).evaluate(live) == TkPRQ(k).evaluate(rebuilt)
            assert TkFRPQ(k).evaluate(live) == TkFRPQ(k).evaluate(rebuilt)
