"""Tests for the C2MN model: feature vectors, local conditionals, scoring."""

import numpy as np
import pytest

from repro.core.config import C2MNConfig
from repro.crf.features import FeatureExtractor
from repro.crf.model import C2MNModel, EVENT_DOMAIN
from repro.mobility.records import EVENT_PASS, EVENT_STAY


@pytest.fixture(scope="module")
def extractor(small_space, small_oracle):
    return FeatureExtractor(small_space, C2MNConfig.fast(), oracle=small_oracle)


@pytest.fixture(scope="module")
def model(extractor):
    return C2MNModel(extractor)


@pytest.fixture(scope="module")
def prepared(extractor, small_dataset):
    labeled = small_dataset.sequences[0]
    return extractor.prepare(
        labeled.sequence,
        true_regions=labeled.region_labels,
        true_events=labeled.event_labels,
    )


@pytest.fixture(scope="module")
def labels(prepared):
    return list(prepared.true_regions), list(prepared.true_events)


class TestModelConstruction:
    def test_default_weights_shape(self, model):
        assert model.weights.shape == (12,)

    def test_weights_setter_validates_shape(self, extractor):
        m = C2MNModel(extractor)
        with pytest.raises(ValueError):
            m.weights = np.zeros(5)
        m.weights = np.arange(12, dtype=float)
        assert m.weights[3] == 3.0

    def test_weights_are_copied(self, extractor):
        initial = np.ones(12)
        m = C2MNModel(extractor, weights=initial)
        initial[0] = 99.0
        assert m.weights[0] == 1.0

    def test_templates_follow_config(self, small_space, small_oracle):
        config = C2MNConfig.fast(use_transition=False, use_space_segmentation=False)
        m = C2MNModel(FeatureExtractor(small_space, config, oracle=small_oracle))
        assert not m.templates.transition
        assert not m.templates.space_segmentation
        assert m.templates.synchronization
        assert m.is_coupled  # event segmentation still active

    def test_invalid_weight_shape_rejected_at_init(self, extractor):
        with pytest.raises(ValueError):
            C2MNModel(extractor, weights=np.zeros(3))


class TestFeatureVectors:
    def test_region_feature_vector_shape_and_finiteness(self, model, prepared, labels):
        regions, events = labels
        vec = model.region_feature_vector(prepared, regions, events, 1, regions[1])
        assert vec.shape == (12,)
        assert np.isfinite(vec).all()

    def test_event_feature_vector_shape_and_finiteness(self, model, prepared, labels):
        regions, events = labels
        vec = model.event_feature_vector(prepared, regions, events, 1, EVENT_STAY)
        assert vec.shape == (12,)
        assert np.isfinite(vec).all()

    def test_region_vector_only_uses_region_relevant_slots(self, model, prepared, labels):
        regions, events = labels
        layout = model.layout
        vec = model.region_feature_vector(prepared, regions, events, 2, regions[2])
        event_slots = list(layout.event_relevant)
        assert np.allclose(vec[event_slots], 0.0)

    def test_event_vector_only_uses_event_relevant_slots(self, model, prepared, labels):
        regions, events = labels
        layout = model.layout
        vec = model.event_feature_vector(prepared, regions, events, 2, EVENT_PASS)
        region_slots = list(layout.region_relevant)
        assert np.allclose(vec[region_slots], 0.0)

    def test_disabled_templates_leave_zero_slots(self, small_space, small_oracle, small_dataset):
        config = C2MNConfig.fast(use_transition=False, use_synchronization=False)
        extractor = FeatureExtractor(small_space, config, oracle=small_oracle)
        model = C2MNModel(extractor)
        labeled = small_dataset.sequences[0]
        data = extractor.prepare(
            labeled.sequence,
            true_regions=labeled.region_labels,
            true_events=labeled.event_labels,
        )
        regions, events = list(data.true_regions), list(data.true_events)
        layout = model.layout
        r_vec = model.region_feature_vector(data, regions, events, 1, regions[1])
        e_vec = model.event_feature_vector(data, regions, events, 1, events[1])
        assert r_vec[layout.space_transition] == 0.0
        assert r_vec[layout.spatial_consistency] == 0.0
        assert e_vec[layout.event_transition] == 0.0
        assert e_vec[layout.event_consistency] == 0.0

    def test_boundary_nodes_have_no_right_neighbour_contribution(self, model, prepared, labels):
        regions, events = labels
        last = len(prepared) - 1
        vec_last = model.region_feature_vector(prepared, regions, events, last, regions[last])
        vec_mid = model.region_feature_vector(prepared, regions, events, 1, regions[1])
        # Transition slot at the last node sums only one pair, so it cannot
        # exceed the middle node's two-pair sum when regions repeat.
        assert vec_last[model.layout.space_transition] <= vec_mid[model.layout.space_transition] + 1.0


class TestLocalDistribution:
    def test_region_distribution_is_normalised(self, model, prepared, labels):
        regions, events = labels
        values, probabilities, vectors = model.local_distribution(
            prepared, regions, events, 0, "region"
        )
        assert len(values) == len(probabilities) == vectors.shape[0]
        assert probabilities.sum() == pytest.approx(1.0)
        assert np.all(probabilities >= 0.0)

    def test_event_distribution_domain(self, model, prepared, labels):
        regions, events = labels
        values, probabilities, _ = model.local_distribution(
            prepared, regions, events, 0, "event"
        )
        assert tuple(values) == EVENT_DOMAIN
        assert probabilities.sum() == pytest.approx(1.0)

    def test_unknown_variable_rejected(self, model, prepared, labels):
        regions, events = labels
        with pytest.raises(ValueError):
            model.local_distribution(prepared, regions, events, 0, "both")

    def test_best_label_is_in_domain(self, model, prepared, labels):
        regions, events = labels
        best_region = model.best_label(prepared, regions, events, 0, "region")
        best_event = model.best_label(prepared, regions, events, 0, "event")
        assert best_region in prepared.candidates[0]
        assert best_event in EVENT_DOMAIN

    def test_weights_change_distribution(self, extractor, prepared, labels):
        regions, events = labels
        model_a = C2MNModel(extractor, weights=np.full(12, 0.1))
        model_b = C2MNModel(extractor, weights=np.full(12, 5.0))
        _, p_a, _ = model_a.local_distribution(prepared, regions, events, 0, "region")
        _, p_b, _ = model_b.local_distribution(prepared, regions, events, 0, "region")
        assert not np.allclose(p_a, p_b)


class TestConfigurationScore:
    def test_score_is_dot_product_of_features(self, model, prepared, labels):
        regions, events = labels
        features = model.configuration_features(prepared, regions, events)
        assert model.configuration_score(prepared, regions, events) == pytest.approx(
            float(model.weights @ features)
        )

    def test_features_finite(self, model, prepared, labels):
        regions, events = labels
        features = model.configuration_features(prepared, regions, events)
        assert np.isfinite(features).all()

    def test_truth_scores_at_least_as_high_as_flipped_events(self, model, prepared):
        """The ground truth should not score worse than the all-events-flipped configuration."""
        regions_true = list(prepared.true_regions)
        events_true = list(prepared.true_events)
        flipped_events = [
            EVENT_PASS if event == EVENT_STAY else EVENT_STAY for event in events_true
        ]
        good = model.configuration_score(prepared, regions_true, events_true)
        bad = model.configuration_score(prepared, regions_true, flipped_events)
        assert good >= bad - 1e-6
