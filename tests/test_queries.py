"""Tests for TkPRQ, TkFRPQ and top-k precision."""

import pytest

from repro.mobility.records import EVENT_PASS, EVENT_STAY, MSemantics
from repro.queries import (
    TkFRPQ,
    TkPRQ,
    count_region_pairs,
    count_region_visits,
    top_k_precision,
)


def _stay(region, start, end):
    return MSemantics(region_id=region, start_time=start, end_time=end, event=EVENT_STAY)


def _pass(region, start, end):
    return MSemantics(region_id=region, start_time=start, end_time=end, event=EVENT_PASS)


@pytest.fixture()
def objects():
    """Three objects with known stay patterns."""
    return [
        [_stay(1, 0, 100), _pass(2, 100, 110), _stay(3, 110, 200)],
        [_stay(1, 0, 50), _stay(2, 60, 120)],
        [_stay(1, 300, 400), _stay(3, 420, 500), _stay(2, 510, 600)],
    ]


class TestCountRegionVisits:
    def test_counts_only_stays(self, objects):
        counts = count_region_visits(objects)
        assert counts[1] == 3
        assert counts[2] == 2  # the pass at region 2 does not count
        assert counts[3] == 2

    def test_time_window_filters(self, objects):
        counts = count_region_visits(objects, start=0, end=150)
        assert counts[1] == 2  # the third object's visit starts at t=300
        assert counts[3] == 1

    def test_query_region_filter(self, objects):
        counts = count_region_visits(objects, query_regions={1})
        assert set(counts) == {1}


class TestTkPRQ:
    def test_invalid_k(self):
        with pytest.raises(ValueError):
            TkPRQ(0)

    def test_top_regions_ordering(self, objects):
        assert TkPRQ(2).top_regions(objects) == [1, 2]  # ties broken by region id

    def test_k_larger_than_regions(self, objects):
        assert len(TkPRQ(10).top_regions(objects)) == 3

    def test_evaluate_returns_counts(self, objects):
        results = TkPRQ(1).evaluate(objects)
        assert results == [(1, 3)]

    def test_window_changes_answer(self, objects):
        late = TkPRQ(1, start=250, end=700).top_regions(objects)
        assert late == [1] or late == [2] or late == [3]
        counts = count_region_visits(objects, start=250, end=700)
        assert counts[1] == 1 and counts[2] == 1 and counts[3] == 1


class TestCountRegionPairs:
    def test_pairs_require_both_stays_by_same_object(self, objects):
        counts = count_region_pairs(objects)
        assert counts[(1, 3)] == 2  # objects 0 and 2
        assert counts[(1, 2)] == 2  # objects 1 and 2
        assert counts[(2, 3)] == 1  # object 2 only

    def test_pairs_are_unordered_and_sorted(self, objects):
        counts = count_region_pairs(objects)
        assert all(a < b for a, b in counts)

    def test_region_filter(self, objects):
        counts = count_region_pairs(objects, query_regions={1, 3})
        assert set(counts) == {(1, 3)}


class TestTkFRPQ:
    def test_invalid_k(self):
        with pytest.raises(ValueError):
            TkFRPQ(0)

    def test_top_pairs(self, objects):
        top = TkFRPQ(2).top_pairs(objects)
        assert len(top) == 2
        assert set(top) == {(1, 2), (1, 3)}

    def test_evaluate_counts(self, objects):
        results = dict(TkFRPQ(3).evaluate(objects))
        assert results[(2, 3)] == 1


class TestTopKPrecision:
    def test_perfect_match(self):
        assert top_k_precision([1, 2, 3], [3, 2, 1]) == 1.0

    def test_partial_match(self):
        assert top_k_precision([1, 2, 4], [1, 2, 3]) == pytest.approx(2 / 3)

    def test_no_match(self):
        assert top_k_precision([7, 8], [1, 2]) == 0.0

    def test_empty_truth(self):
        assert top_k_precision([1, 2], []) == 0.0

    def test_shorter_prediction_is_penalised(self):
        assert top_k_precision([1], [1, 2, 3, 4]) == pytest.approx(0.25)

    def test_works_with_pairs(self):
        assert top_k_precision([(1, 2), (3, 4)], [(1, 2), (5, 6)]) == pytest.approx(0.5)
