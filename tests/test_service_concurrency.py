"""Threaded stress tests of the service layer's mutation paths.

The HTTP front door calls the service from a thread pool, so session
registry churn, batch publishes and store queries all race.  These tests
hammer those paths from real threads and assert the invariants the service
lock is meant to protect: no lost or duplicated publishes, stream order per
session, idempotent finish.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

from repro.mobility.records import PositioningSequence
from repro.service.service import AnnotationService


def _reference_store(annotator, sequences):
    """Serial replay of ``sequences``; returns {object_id: semantics}."""
    service = AnnotationService(annotator)
    for labeled in sequences:
        session = service.session(labeled.object_id)
        session.extend(list(labeled.sequence))
        session.finish()
    return {
        labeled.object_id: service.store.semantics_for(labeled.object_id)
        for labeled in sequences
    }


def test_concurrent_mixed_workload_matches_serial(fitted_annotator, small_split):
    _, test = small_split
    sequences = list(test.sequences)
    reference = _reference_store(fitted_annotator, sequences)
    service = AnnotationService(fitted_annotator)
    errors = []
    barrier = threading.Barrier(len(sequences) + 2)

    def stream_worker(labeled):
        try:
            barrier.wait(timeout=30)
            session = service.session(labeled.object_id)
            for record in labeled.sequence:
                session.add(record)
            session.finish()
        except Exception as error:  # noqa: BLE001 — collected for the assert
            errors.append(error)

    def batch_worker():
        try:
            barrier.wait(timeout=30)
            for round_id in range(3):
                # Distinct ids per publish: re-publishing an id would
                # (correctly) violate the store's per-object time order.
                renamed = [
                    PositioningSequence(
                        list(labeled.sequence),
                        object_id=f"{labeled.object_id}/batch{round_id}",
                        sort=False,
                    )
                    for labeled in sequences[:1]
                ]
                service.annotate_batch(renamed)
                service.query_popular_regions(5)
        except Exception as error:  # noqa: BLE001
            errors.append(error)

    def query_worker():
        try:
            barrier.wait(timeout=30)
            for _ in range(10):
                service.query_popular_regions(3)
                service.query_frequent_pairs(3)
                service.live_sessions()
                len(service.store)
        except Exception as error:  # noqa: BLE001
            errors.append(error)

    with ThreadPoolExecutor(max_workers=len(sequences) + 2) as pool:
        for labeled in sequences:
            pool.submit(stream_worker, labeled)
        pool.submit(batch_worker)
        pool.submit(query_worker)

    assert errors == []
    assert service.live_sessions() == []
    for labeled in sequences:
        assert service.store.semantics_for(labeled.object_id) == (
            reference[labeled.object_id]
        )


def test_concurrent_finish_is_idempotent(fitted_annotator, small_split):
    _, test = small_split
    labeled = test.sequences[0]
    reference = _reference_store(fitted_annotator, [labeled])[labeled.object_id]

    service = AnnotationService(fitted_annotator)
    session = service.session(labeled.object_id)
    session.extend(list(labeled.sequence))

    flushes = []
    barrier = threading.Barrier(8)

    def finisher():
        barrier.wait(timeout=30)
        flushes.append(session.finish())

    threads = [threading.Thread(target=finisher) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)

    # Exactly one finish wins; the rest flush nothing, nothing is duplicated.
    non_empty = [flush for flush in flushes if flush]
    assert len(non_empty) <= 1
    assert service.store.semantics_for(labeled.object_id) == reference
    assert service.get_session(labeled.object_id) is None


def test_concurrent_finish_all_races_http_style_finishes(
    fitted_annotator, small_split
):
    _, test = small_split
    sequences = list(test.sequences)
    reference = _reference_store(fitted_annotator, sequences)

    service = AnnotationService(fitted_annotator)
    sessions = {}
    for labeled in sequences:
        session = service.session(labeled.object_id)
        session.extend(list(labeled.sequence))
        sessions[labeled.object_id] = session

    barrier = threading.Barrier(len(sequences) + 1)
    errors = []

    def finish_one(object_id):
        try:
            barrier.wait(timeout=30)
            sessions[object_id].finish()
        except Exception as error:  # noqa: BLE001
            errors.append(error)

    def drain_all():
        try:
            barrier.wait(timeout=30)
            service.finish_all()
        except Exception as error:  # noqa: BLE001
            errors.append(error)

    threads = [
        threading.Thread(target=finish_one, args=(labeled.object_id,))
        for labeled in sequences
    ] + [threading.Thread(target=drain_all)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)

    assert errors == []
    assert service.live_sessions() == []
    for labeled in sequences:
        assert service.store.semantics_for(labeled.object_id) == (
            reference[labeled.object_id]
        )


def test_session_registry_churn_under_threads(fitted_annotator, small_split):
    _, test = small_split
    labeled = test.sequences[0]
    service = AnnotationService(fitted_annotator)
    errors = []

    def churn(worker: int):
        try:
            for round_id in range(5):
                object_id = f"churn-{worker}-{round_id}"
                session = service.session(object_id)
                session.extend(list(labeled.sequence))
                assert service.get_session(object_id) is session
                session.finish()
                assert service.get_session(object_id) is None
        except Exception as error:  # noqa: BLE001
            errors.append(error)

    with ThreadPoolExecutor(max_workers=6) as pool:
        for worker in range(6):
            pool.submit(churn, worker)

    assert errors == []
    assert service.live_sessions() == []
    # Every churned object published exactly one stream's worth of semantics.
    reference = _reference_store(fitted_annotator, [labeled])[labeled.object_id]
    for worker in range(6):
        for round_id in range(5):
            assert service.store.semantics_for(f"churn-{worker}-{round_id}") == (
                reference
            )
