"""Tests for metrics, the evaluation harness and reporting."""

import pytest

from repro.baselines import SMoTAnnotator
from repro.evaluation.harness import EvaluationResult, MethodEvaluator, ground_truth_semantics
from repro.evaluation.metrics import evaluate_labels, score_sequences
from repro.evaluation.reporting import format_series, format_table
from repro.geometry.point import IndoorPoint
from repro.mobility.records import (
    EVENT_PASS,
    EVENT_STAY,
    LabeledSequence,
    PositioningRecord,
    PositioningSequence,
)


def _labeled(regions, events):
    records = [
        PositioningRecord(IndoorPoint(float(i), 0.0, 0), float(i) * 10.0)
        for i in range(len(regions))
    ]
    return LabeledSequence(PositioningSequence(records), list(regions), list(events))


class TestEvaluateLabels:
    def test_all_correct(self):
        scores = evaluate_labels([1, 2], [EVENT_STAY, EVENT_PASS], [1, 2], [EVENT_STAY, EVENT_PASS])
        assert scores.region_accuracy == 1.0
        assert scores.event_accuracy == 1.0
        assert scores.combined_accuracy == 1.0
        assert scores.perfect_accuracy == 1.0
        assert scores.records == 2

    def test_partial_correct_with_lambda(self):
        scores = evaluate_labels(
            [1, 9, 3, 4],
            [EVENT_STAY, EVENT_STAY, EVENT_PASS, EVENT_PASS],
            [1, 2, 3, 4],
            [EVENT_STAY, EVENT_STAY, EVENT_STAY, EVENT_PASS],
            tradeoff=0.7,
        )
        assert scores.region_accuracy == pytest.approx(0.75)
        assert scores.event_accuracy == pytest.approx(0.75)
        assert scores.combined_accuracy == pytest.approx(0.75)
        assert scores.perfect_accuracy == pytest.approx(0.5)

    def test_perfect_accuracy_never_exceeds_individual_accuracies(self):
        scores = evaluate_labels(
            [1, 2, 9], [EVENT_STAY, EVENT_PASS, EVENT_PASS],
            [1, 2, 3], [EVENT_PASS, EVENT_PASS, EVENT_PASS],
        )
        assert scores.perfect_accuracy <= min(scores.region_accuracy, scores.event_accuracy)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            evaluate_labels([1], [EVENT_STAY], [1, 2], [EVENT_STAY, EVENT_PASS])

    def test_invalid_tradeoff_rejected(self):
        with pytest.raises(ValueError):
            evaluate_labels([1], [EVENT_STAY], [1], [EVENT_STAY], tradeoff=1.5)

    def test_empty_input(self):
        scores = evaluate_labels([], [], [], [])
        assert scores.records == 0
        assert scores.combined_accuracy == 0.0

    def test_as_dict(self):
        scores = evaluate_labels([1], [EVENT_STAY], [1], [EVENT_STAY])
        assert set(scores.as_dict()) == {"RA", "EA", "CA", "PA", "records"}


class TestScoreSequences:
    def test_micro_average_over_sequences(self):
        predicted = [_labeled([1, 1], [EVENT_STAY, EVENT_STAY]), _labeled([2], [EVENT_PASS])]
        truth = [_labeled([1, 2], [EVENT_STAY, EVENT_STAY]), _labeled([2], [EVENT_PASS])]
        scores = score_sequences(predicted, truth)
        assert scores.records == 3
        assert scores.region_accuracy == pytest.approx(2 / 3)
        assert scores.event_accuracy == pytest.approx(1.0)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            score_sequences([_labeled([1], [EVENT_STAY])], [_labeled([1, 2], [EVENT_STAY] * 2)])

    def test_empty(self):
        assert score_sequences([], []).records == 0


class TestMethodEvaluator:
    def test_evaluate_smot(self, small_space, small_split):
        train, test = small_split
        evaluator = MethodEvaluator()
        result = evaluator.evaluate(SMoTAnnotator(small_space), train.sequences, test.sequences)
        assert isinstance(result, EvaluationResult)
        assert result.method == "SMoT"
        assert result.scores.records > 0
        assert result.training_seconds >= 0.0
        assert result.labeling_seconds > 0.0
        assert len(result.predictions) == len(test.sequences)
        assert len(result.semantics) == len(test.sequences)

    def test_row_format(self, small_space, small_split):
        train, test = small_split
        result = MethodEvaluator().evaluate(
            SMoTAnnotator(small_space), train.sequences, test.sequences
        )
        row = result.row()
        assert set(row) == {"method", "RA", "EA", "CA", "PA", "train_s", "label_s"}

    def test_keep_predictions_false(self, small_space, small_split):
        train, test = small_split
        result = MethodEvaluator(keep_predictions=False).evaluate(
            SMoTAnnotator(small_space), train.sequences, test.sequences
        )
        assert result.predictions == [] and result.semantics == []

    def test_evaluate_many(self, small_space, small_split):
        train, test = small_split
        results = MethodEvaluator().evaluate_many(
            [SMoTAnnotator(small_space), SMoTAnnotator(small_space)],
            train.sequences,
            test.sequences,
        )
        assert len(results) == 2

    def test_ground_truth_semantics(self, small_split):
        _, test = small_split
        truth = ground_truth_semantics(test.sequences)
        assert len(truth) == len(test.sequences)
        assert all(truth_semantics for truth_semantics in truth)


class TestReporting:
    def test_format_table_alignment_and_title(self):
        rows = [
            {"method": "C2MN", "RA": 0.9492, "EA": 0.9691},
            {"method": "CMN", "RA": 0.886, "EA": 0.8983},
        ]
        text = format_table(rows, title="Table IV")
        lines = text.splitlines()
        assert lines[0] == "Table IV"
        assert "method" in lines[1] and "RA" in lines[1]
        assert "0.9492" in text and "CMN" in text

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="Empty")

    def test_format_table_missing_cells(self):
        rows = [{"a": 1, "b": 2}, {"a": 3}]
        text = format_table(rows)
        assert "3" in text

    def test_format_series(self):
        series = {
            "C2MN": {5: 0.92, 10: 0.90},
            "SMoT": {5: 0.80, 15: 0.70},
        }
        text = format_series(series, x_label="T")
        lines = text.splitlines()
        assert lines[0].startswith("T")
        assert len(lines) == 2 + 3  # header + separator + three x values
