"""Streaming annotation: live sessions feeding live top-k queries.

Run with::

    python examples/streaming_service.py

The script trains a C2MN annotator, wraps it in an
:class:`repro.service.AnnotationService`, and then *replays* several held-out
positioning sequences as if their objects were walking through the mall right
now: records are interleaved across objects in timestamp order and pushed
into one :class:`StreamSession` per object.  Each session re-decodes a
sliding tail window and publishes m-semantics to the shared store the moment
the window moves past them — so the Top-k Popular Region Query (TkPRQ) can
be answered mid-stream, over traffic that is still in flight.

At the end the service is saved to JSON and reloaded, demonstrating that a
trained model ships without retraining.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.core import C2MNAnnotator, C2MNConfig
from repro.indoor import build_mall_space
from repro.mobility.dataset import generate_dataset, train_test_split
from repro.service import AnnotationService


def main() -> None:
    print("== Building the venue, the dataset and the trained service ==")
    space = build_mall_space(floors=1, shops_per_side=4)
    dataset = generate_dataset(
        space,
        objects=8,
        duration=900.0,
        max_period=8.0,
        error=4.0,
        min_duration=240.0,
        seed=17,
        name="streaming-mall",
    )
    train, test = train_test_split(dataset, train_fraction=0.5, seed=11)

    annotator = C2MNAnnotator(space, config=C2MNConfig.fast())
    report = annotator.fit(train.sequences)
    print(f"trained in {report.elapsed_seconds:.1f}s ({report.iterations} steps)")

    service = AnnotationService(annotator)
    print(f"service: window={service.window} records, store empty")

    print("\n== Replaying held-out objects as live, interleaved traffic ==")
    # One session per moving object; records merged across objects by time.
    sessions = {}
    feed = []
    for labeled in test.sequences:
        object_id = labeled.sequence.object_id
        sessions[object_id] = service.session(object_id)
        feed.extend((record.timestamp, object_id, record) for record in labeled.sequence)
    feed.sort(key=lambda item: item[0])
    print(f"{len(sessions)} live sessions, {len(feed)} records to ingest")

    checkpoints = {len(feed) // 3, (2 * len(feed)) // 3}
    for i, (_, object_id, record) in enumerate(feed, start=1):
        sessions[object_id].add(record)
        if i in checkpoints:
            top = service.popular_regions(3)
            published = service.store.total_semantics
            print(
                f"  after {i:4d} records ({published} m-semantics published, "
                f"sessions still open) TkPRQ top-3: "
                + ", ".join(
                    f"{space.region(region).name} x{count}" for region, count in top
                )
            )

    flushed = service.finish_all()
    print(f"closed all sessions, flushed {len(flushed)} trailing m-semantics")

    print("\n== Final queries over the fully ingested traffic ==")
    for region, count in service.popular_regions(5):
        print(f"  {space.region(region).name:<24} {count} stay visits")
    pairs = service.frequent_pairs(3)
    if pairs:
        print("frequent pairs: " + ", ".join(
            f"({space.region(a).name}, {space.region(b).name}) x{n}"
            for (a, b), n in pairs
        ))

    print("\n== Shipping the trained service ==")
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "service.json"
        service.save(path)
        restored = AnnotationService.load(path, space)
        sequence = test.sequences[0].sequence
        identical = restored.annotator.predict_labels(sequence) == (
            annotator.predict_labels(sequence)
        )
        print(f"saved -> {path.name}, reloaded; decodes identical: {identical}")


if __name__ == "__main__":
    main()
