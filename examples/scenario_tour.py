"""A tour of the scenario catalogue.

Run with::

    python examples/scenario_tour.py

The script walks the declarative scenario subsystem end to end:

1. list the registered catalogue (venues × mobility profiles × devices);
2. materialise one scenario deterministically and inspect its fingerprint;
3. register a custom scenario (a hospital night ward on the concourse
   archetype with commuter staff and patchy coverage) and materialise it;
4. evaluate an annotation method on a scenario *by name* through the
   evaluation harness;
5. replay a scenario through the streaming service as live traffic.
"""

from __future__ import annotations

from repro.core.variants import make_annotator
from repro.evaluation.harness import MethodEvaluator
from repro.runtime import ExecutionPolicy
from repro.scenarios import (
    DeviceSpec,
    MobilitySpec,
    ScenarioSpec,
    VenueSpec,
    materialize,
    register_scenario,
    scenario_specs,
    unregister_scenario,
)
from repro.service import replay_scenario


def main() -> None:
    print("== 1. The registered catalogue ==")
    for spec in scenario_specs():
        row = spec.summary()
        print(
            f"  {row['name']:22s} venue={row['venue']:9s} "
            f"mobility={row['mobility']:9s} objects={row['objects']}"
        )

    print("\n== 2. Deterministic materialisation ==")
    scenario = materialize("transit-morning-peak")
    stats = scenario.statistics()
    print(f"  {scenario.name}: {stats['sequences']:.0f} sequences, "
          f"{stats['records']:.0f} records over {stats['regions']:.0f} regions")
    print(f"  fingerprint {scenario.fingerprint}")
    again = materialize("transit-morning-peak")
    print(f"  re-materialised fingerprint matches: {again.fingerprint == scenario.fingerprint}")

    print("\n== 3. Registering a custom scenario ==")
    register_scenario(ScenarioSpec(
        name="hospital-night-ward",
        venue=VenueSpec("concourse", params={"halls": 2, "bays_per_hall": 4}),
        mobility=MobilitySpec(
            "commuter",
            min_stay=60.0,
            max_stay=600.0,
            params={"anchor_count": 1, "anchor_affinity": 0.9},
        ),
        device=DeviceSpec(
            max_period=12.0,
            error=5.0,
            dropout_probability=0.15,
            dropout_duration=(60.0, 180.0),
        ),
        objects=5,
        duration=1200.0,
        min_duration=180.0,
        seed=101,
        description="Night nurses bound to their ward, sparse patchy positioning.",
    ))
    ward = materialize("hospital-night-ward")
    print(f"  {ward.name}: {len(ward.dataset)} sequences, "
          f"{ward.dataset.total_records} records, fingerprint {ward.fingerprint[:16]}…")

    print("\n== 4. Evaluating a method on a scenario by name ==")
    method = make_annotator("SMoT", ward.space)
    result = MethodEvaluator(policy=ExecutionPolicy.serial()).evaluate_scenario(
        method, ward
    )
    print(f"  SMoT on hospital-night-ward: RA={result.scores.region_accuracy:.3f} "
          f"EA={result.scores.event_accuracy:.3f}")

    print("\n== 5. Replaying a scenario through the streaming service ==")
    service, report = replay_scenario("mall-tiny", window=24)
    top = service.popular_regions(3)
    print(f"  streamed {report.records} records of {report.objects} objects "
          f"at {report.records_per_second:.0f} records/s, "
          f"published {report.published} m-semantics")
    print(f"  live top-3 popular regions: {top}")

    unregister_scenario("hospital-night-ward")
    print("\ndone.")


if __name__ == "__main__":
    main()
