"""A tour of the HTTP front door and the open-loop load-testing harness.

Run with::

    python examples/serve_tour.py

The script walks the network layer end to end:

1. fit a fast C2MN on a catalogue scenario's training half, wrap it in an
   `AnnotationService` and host it on a background `ServerThread`;
2. batch-annotate a held-out p-sequence over HTTP and verify the JSON
   answer is bitwise-identical to the in-process call;
3. stream another object through the session endpoints in chunks, with
   live TkPRQ answers over HTTP while the session is still open;
4. read the `/metrics` counters the server accumulated;
5. drive the same server with the open-loop Poisson load generator and
   print the resulting `run_table.csv` row.
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path
from urllib.parse import quote
from urllib.request import Request, urlopen

from repro.core.annotator import C2MNAnnotator
from repro.core.config import C2MNConfig
from repro.mobility.dataset import train_test_split
from repro.net import ServerThread, run_loadtest, write_run_table
from repro.net.wire import record_to_wire, sequence_to_wire
from repro.persistence.serializers import semantics_to_dicts
from repro.scenarios import materialize
from repro.service import AnnotationService


def _call(server, method, path, body=None):
    request = Request(
        f"{server.address}{path}",
        data=None if body is None else json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
        method=method,
    )
    with urlopen(request) as response:
        return json.loads(response.read())


def main() -> None:
    print("== 1. Train on a catalogue scenario and open the front door ==")
    scenario = materialize("mall-tiny")
    train, test = train_test_split(scenario.dataset, train_fraction=0.5, seed=5)
    annotator = C2MNAnnotator(
        scenario.space,
        config=C2MNConfig.fast(max_iterations=3, mcmc_samples=6, lbfgs_iterations=4),
    )
    annotator.fit(train.sequences)
    service = AnnotationService(annotator)

    with ServerThread(service) as server:
        print(f"  serving {scenario.name} on {server.address}")
        health = _call(server, "GET", "/healthz")
        print(f"  /healthz: {health}")

        print("\n== 2. HTTP annotate == in-process annotate, bitwise ==")
        sequence = test.sequences[0].sequence
        reply = _call(
            server, "POST", "/v1/annotate",
            {"sequences": [sequence_to_wire(sequence)]},
        )
        expected = semantics_to_dicts(annotator.annotate(sequence))
        assert reply["semantics"] == [json.loads(json.dumps(expected))]
        print(f"  {sequence.object_id}: {len(reply['semantics'][0])} m-semantics, "
              "identical over the wire")

        print("\n== 3. Streaming a live object through the session endpoints ==")
        streamed = test.sequences[1].sequence
        # Object ids may contain "/" (the load generator's repetition
        # suffixes do), so they are URL-encoded in the path.
        target = quote(f"{streamed.object_id}/live", safe="")
        _call(server, "POST", "/v1/sessions",
              {"object_id": f"{streamed.object_id}/live"})
        records = [record_to_wire(record) for record in streamed]
        finalized = 0
        for offset in range(0, len(records), 32):
            chunk = _call(server, "POST", f"/v1/sessions/{target}/records",
                          {"records": records[offset:offset + 32]})
            finalized += len(chunk["finalized"])
        top = _call(server, "GET", "/v1/queries/popular-regions?k=3")
        print(f"  mid-stream TkPRQ(3): {top['results']}")
        flushed = _call(server, "POST", f"/v1/sessions/{target}/finish")
        print(f"  {finalized} m-semantics finalized in flight, "
              f"{len(flushed['flushed'])} flushed at finish")

        print("\n== 4. What the server measured about itself ==")
        metrics = _call(server, "GET", "/metrics")
        for endpoint, counters in sorted(metrics["requests"].items()):
            latency = metrics["latency_ms"][endpoint]["sum"]
            print(f"  {endpoint:24s} {counters['count']:4d} requests  "
                  f"{counters['errors']} errors  {latency:8.1f} ms total")

        print("\n== 5. Open-loop load test against the same server ==")
        reports = run_loadtest(
            scenario.name,
            host=server.host,
            port=server.port,
            rate=10.0,
            duration=3.0,
            seed=7,
            scenario=scenario,
            run_tag="tour",
        )
        path = write_run_table(reports, Path(tempfile.mkdtemp()) / "run_table.csv")
        for report in reports:
            print(f"  {report.run}: {report.requests} requests, "
                  f"{report.throughput_rps:.1f} rps, "
                  f"p50 {report.p50_latency_ms:.1f} ms, "
                  f"p95 {report.p95_latency_ms:.1f} ms, "
                  f"failures {report.failures} ({report.failure_rate:.2%})")
        assert all(report.failures == 0 for report in reports)
        print(f"  wrote {path}")

    print("\nserver drained and stopped")


if __name__ == "__main__":
    main()
