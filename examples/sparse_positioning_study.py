"""Robustness study: annotation quality under sparse and noisy positioning.

Run with::

    python examples/sparse_positioning_study.py

Section V-C of the paper studies how the maximum positioning period T and the
positioning error μ affect annotation quality on a synthetic multi-floor
building.  This example reproduces a scaled-down version of that study: it
sweeps T (temporal sparsity) with a fixed μ, trains C2MN and two baselines on
each generated dataset, and prints the perfect-accuracy series — the
qualitative expectation is that every method degrades as reports get sparser
but C2MN degrades the slowest.
"""

from __future__ import annotations

from repro.core import C2MNConfig
from repro.core.variants import make_annotator
from repro.evaluation.harness import MethodEvaluator
from repro.evaluation.reporting import format_series
from repro.indoor import build_office_building
from repro.mobility.dataset import generate_dataset, train_test_split
from repro.runtime import ExecutionPolicy

METHODS = ("SMoT", "HMM+DC", "C2MN")
PERIODS = (5.0, 10.0, 15.0)
ERROR = 5.0


def main() -> None:
    space = build_office_building(floors=2, rooms_per_side=6, region_fraction=0.7)
    print(f"venue: {space}")

    config = C2MNConfig.fast(uncertainty_radius=10.0)
    # Decode each test batch through the batched serial policy; swap in
    # ExecutionPolicy.processes(4) to fan the sweep out over cores.
    evaluator = MethodEvaluator(
        keep_predictions=False, policy=ExecutionPolicy.serial()
    )
    series = {name: {} for name in METHODS}

    for period in PERIODS:
        dataset = generate_dataset(
            space,
            objects=10,
            duration=1800.0,
            max_period=period,
            error=ERROR,
            min_duration=300.0,
            seed=31,
            name=f"T{period:g}",
        )
        train, test = train_test_split(dataset, train_fraction=0.7, seed=37)
        print(
            f"T = {period:>4.0f}s: {dataset.total_records} records over "
            f"{len(dataset)} sequences ({len(train)} train / {len(test)} test)"
        )
        for name in METHODS:
            method = make_annotator(name, space, config=config)
            result = evaluator.evaluate(method, train.sequences, test.sequences)
            series[name][period] = result.scores.perfect_accuracy

    print("\nPerfect accuracy vs maximum positioning period T (cf. Figure 14):")
    print(format_series(series, x_label="T(s)"))

    best_at_sparsest = max(series, key=lambda name: series[name][PERIODS[-1]])
    print(f"\nmost robust method at T={PERIODS[-1]:.0f}s: {best_at_sparsest}")


if __name__ == "__main__":
    main()
