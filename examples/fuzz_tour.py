"""A tour of the scenario fuzzer.

Run with::

    python examples/fuzz_tour.py

The script walks the invariant-first testing surface end to end:

1. sample a handful of specs from the fuzzer's seed-deterministic
   generator and show how they spread over the composition space;
2. run a small fuzz sweep and confirm every oracle holds;
3. plant a failure (an oracle that trips on any multipath corruption)
   and watch the shrinker reduce the first red spec to a minimal repro;
4. round-trip the minimal spec through the JSON artifact format and
   re-check it — the artifact alone reproduces the failure.
"""

from __future__ import annotations

import json
import random

from repro.scenarios.fuzz import (
    ORACLES,
    check_spec,
    run_fuzz,
    sample_spec,
    spec_from_dict,
    spec_to_dict,
)


def main() -> None:
    print("== 1. Sampling the spec space ==")
    rng = random.Random(2026)
    for index in range(6):
        spec = sample_spec(rng, index)
        knobs = []
        if spec.device.multipath_probability > 0:
            knobs.append("multipath")
        if spec.device.clock_skew > 0 or spec.device.clock_jitter > 0:
            knobs.append("clock")
        if spec.device.duplicate_probability > 0:
            knobs.append("duplicates")
        print(
            f"  {spec.name}: venue={spec.venue.archetype:9s} "
            f"mobility={spec.mobility.profile:9s} objects={spec.objects} "
            f"duration={spec.duration:.0f}s adversarial={knobs or '-'}"
        )

    print("\n== 2. A small green sweep ==")
    print(f"  oracles: {', '.join(ORACLES)}")
    report = run_fuzz(3, seed=11, progress=lambda r: print(f"    {r.name}: ok={r.ok}"))
    print(f"  {report.executed} specs, all green: {report.ok}")

    print("\n== 3. Planting a failure and shrinking it ==")

    def planted(ctx):
        if ctx.spec.device.multipath_probability > 0.0:
            return ["planted multipath failure"]
        return []

    red = run_fuzz(10, 7, oracle_names=[], extra_oracles=[("planted", planted)])
    failure = red.failures[0]
    original = spec_from_dict(failure.spec)
    shrunk = spec_from_dict(failure.shrunk)
    print(f"  first failure: {failure.name} — {failure.violations}")
    print(
        f"  original: venue={original.venue.archetype} "
        f"mobility={original.mobility.profile} objects={original.objects} "
        f"duration={original.duration:.0f}s"
    )
    print(
        f"  shrunk:   venue={shrunk.venue.archetype} "
        f"mobility={shrunk.mobility.profile} objects={shrunk.objects} "
        f"duration={shrunk.duration:.0f}s "
        f"multipath={shrunk.device.multipath_probability}"
    )

    print("\n== 4. The artifact reproduces the failure on its own ==")
    artifact = json.loads(json.dumps(spec_to_dict(shrunk)))
    reloaded = spec_from_dict(artifact)
    violations = check_spec(
        reloaded, oracle_names=[], extra_oracles=[("planted", planted)]
    )
    print(f"  reloaded spec still fails: {violations}")

    print("\ndone.")


if __name__ == "__main__":
    main()
