"""A tour of the semantic-region index and the top-k query engine.

Run with::

    python examples/query_tour.py

The script walks the index layer end to end:

1. materialise a catalogue scenario and bulk-build a `SemanticsIndex`
   over its ground-truth m-semantics;
2. answer TkPRQ/TkFRPQ through the index and verify the answers are
   bit-identical to the linear scan;
3. let the query planner explain which physical plan each input takes
   (including the degenerate-interval scan fallback);
4. attach a live index to a streaming `AnnotationService` and watch the
   queries stay index-backed while traffic keeps publishing;
5. time indexed vs scan latency on a replicated store.
"""

from __future__ import annotations

import time

from repro.core.annotator import C2MNAnnotator
from repro.core.config import C2MNConfig
from repro.evaluation.harness import ground_truth_semantics
from repro.index import SemanticsIndex
from repro.mobility.dataset import train_test_split
from repro.queries import TkFRPQ, TkPRQ
from repro.runtime import ExecutionPolicy
from repro.scenarios import materialize
from repro.service import AnnotationService


def main() -> None:
    print("== 1. Bulk-build an index over a materialised scenario ==")
    scenario = materialize("transit-morning-peak")
    semantics = ground_truth_semantics(scenario.dataset.sequences)
    index = SemanticsIndex.from_semantics(semantics)
    print(f"  {scenario.name}: {index!r}")

    print("\n== 2. Index answers == scan answers, bitwise ==")
    t0 = min(ms.start_time for entries in semantics for ms in entries)
    t1 = max(ms.end_time for entries in semantics for ms in entries)
    mid = (t0 + t1) / 2
    prq = TkPRQ(3, start=t0, end=mid)
    frpq = TkFRPQ(3, start=t0, end=mid)
    top_regions = prq.evaluate(index)
    top_pairs = frpq.evaluate(index)
    assert top_regions == prq.evaluate(semantics)
    assert top_pairs == frpq.evaluate(semantics)
    print(f"  TkPRQ(3, first half):  {top_regions}")
    print(f"  TkFRPQ(3, first half): {top_pairs}")

    print("\n== 3. The planner explains itself ==")
    print(f"  index input:        {prq.explain(index).reason}")
    print(f"  plain list input:   {prq.explain(semantics).reason}")
    degenerate = TkPRQ(3, start=mid, end=t0)
    print(f"  degenerate window:  {degenerate.explain(index).reason}")

    print("\n== 4. A live service with an attached index ==")
    train, test = train_test_split(scenario.dataset, train_fraction=0.5, seed=5)
    annotator = C2MNAnnotator(
        scenario.space,
        config=C2MNConfig.fast(max_iterations=2, mcmc_samples=4, lbfgs_iterations=3),
    )
    annotator.fit(train.sequences)
    # The policy governs every annotate_batch call on this service: batched
    # serial here; ExecutionPolicy.processes(4) shards buckets over cores.
    service = AnnotationService(
        annotator, indexed=True, policy=ExecutionPolicy.serial()
    )
    service.annotate_batch([labeled.sequence for labeled in test.sequences[:-1]])
    print(f"  store: {service.store!r}")
    print(f"  index: {service.index!r}")
    print(f"  query_popular_regions(3): {service.query_popular_regions(3)}")
    session = service.session("walk-in")
    for record in test.sequences[-1].sequence:
        session.add(record)
    session.finish()
    print(f"  ... after one streamed object: {service.query_popular_regions(3)}")

    print("\n== 5. Indexed vs scan latency (replicated store) ==")
    replicated = {
        f"copy{copy}/obj{position}": entries
        for copy in range(10)
        for position, entries in enumerate(semantics)
    }
    big_index = SemanticsIndex.from_semantics(replicated)
    queries = [
        TkPRQ(5),
        TkPRQ(5, start=t0, end=mid),
        TkFRPQ(5),
        TkFRPQ(5, start=mid, end=t1),
    ]
    started = time.perf_counter()
    scan_answers = [query.evaluate(replicated) for query in queries]
    scan_seconds = time.perf_counter() - started
    started = time.perf_counter()
    indexed_answers = [query.evaluate(big_index) for query in queries]
    indexed_seconds = time.perf_counter() - started
    assert indexed_answers == scan_answers
    print(f"  {big_index.total_postings} postings, {len(replicated)} objects")
    print(f"  scan:    {1e3 * scan_seconds:7.2f} ms")
    print(f"  indexed: {1e3 * indexed_seconds:7.2f} ms "
          f"({scan_seconds / indexed_seconds:.1f}x faster, identical answers)")


if __name__ == "__main__":
    main()
