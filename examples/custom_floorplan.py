"""Using the library with a hand-built floorplan instead of the builders.

Run with::

    python examples/custom_floorplan.py

Downstream users will usually have their own venue: this example shows how to
describe a small airport-lounge floorplan directly with partitions, doors and
semantic regions, how to inspect the indoor topology (door graph, walking
distances), and how the annotation pipeline runs on top of it unchanged.
"""

from __future__ import annotations

from repro.core import C2MNAnnotator, C2MNConfig
from repro.geometry.point import IndoorPoint
from repro.geometry.polygon import Rectangle
from repro.indoor import AccessibilityGraph, IndoorDistanceOracle, IndoorSpace
from repro.indoor.entities import Door, Partition, SemanticRegion
from repro.mobility.dataset import generate_dataset, train_test_split


def build_lounge() -> IndoorSpace:
    """A departure lounge: corridor, cafe, duty-free, bookshop and two gates."""
    partitions = [
        Partition(0, Rectangle(0, 10, 60, 18), floor=0, kind="hallway"),   # corridor
        Partition(1, Rectangle(0, 0, 15, 10), floor=0, kind="room"),       # cafe
        Partition(2, Rectangle(15, 0, 35, 10), floor=0, kind="room"),      # duty-free
        Partition(3, Rectangle(35, 0, 45, 10), floor=0, kind="room"),      # bookshop
        Partition(4, Rectangle(0, 18, 30, 30), floor=0, kind="room"),      # gate A
        Partition(5, Rectangle(30, 18, 60, 30), floor=0, kind="room"),     # gate B
    ]
    doors = [
        Door(0, IndoorPoint(7.5, 10, 0), (1, 0)),
        Door(1, IndoorPoint(25.0, 10, 0), (2, 0)),
        Door(2, IndoorPoint(40.0, 10, 0), (3, 0)),
        Door(3, IndoorPoint(15.0, 18, 0), (4, 0)),
        Door(4, IndoorPoint(45.0, 18, 0), (5, 0)),
    ]
    regions = [
        SemanticRegion(0, "cafe", (1,), floor=0, category="food"),
        SemanticRegion(1, "duty-free", (2,), floor=0, category="retail"),
        SemanticRegion(2, "bookshop", (3,), floor=0, category="retail"),
        SemanticRegion(3, "gate-A", (4,), floor=0, category="gate"),
        SemanticRegion(4, "gate-B", (5,), floor=0, category="gate"),
    ]
    return IndoorSpace(partitions, doors, regions, name="departure-lounge")


def main() -> None:
    space = build_lounge()
    print(f"venue: {space}")

    graph = AccessibilityGraph(space)
    oracle = IndoorDistanceOracle(space, graph)
    print(f"door graph: {graph.number_of_doors} doors, {graph.number_of_edges} edges")

    cafe, gate_b = space.region(0), space.region(4)
    walking = oracle.region_distance(cafe.region_id, gate_b.region_id)
    straight = cafe.centroid.planar.distance_to(gate_b.centroid.planar)
    print(
        f"cafe → gate-B: straight-line {straight:.1f} m, "
        f"expected indoor walking distance {walking:.1f} m"
    )

    dataset = generate_dataset(
        space,
        objects=10,
        duration=1500.0,
        max_period=6.0,
        error=3.0,
        min_duration=200.0,
        seed=43,
        name="lounge",
    )
    train, test = train_test_split(dataset, train_fraction=0.7, seed=47)

    annotator = C2MNAnnotator(space, config=C2MNConfig.fast(uncertainty_radius=8.0), oracle=oracle)
    annotator.fit(train.sequences)

    held_out = test.sequences[0]
    print(f"\nannotating {held_out.object_id} ({len(held_out)} records):")
    for ms in annotator.annotate(held_out.sequence)[:10]:
        print(
            f"  ({space.region(ms.region_id).name}, "
            f"[{ms.start_time:6.1f}s, {ms.end_time:6.1f}s], {ms.event})"
        )


if __name__ == "__main__":
    main()
