"""Mall analytics: popular regions, frequent region pairs and conversion rates.

Run with::

    python examples/mall_analytics.py

The paper's introduction motivates m-semantics with two analytics scenarios:

* a mall operator wants the most popular shops (TkPRQ) and the shop pairs
  most often visited together (TkFRPQ);
* a shop owner wants the *conversion rate* — how many of the people who were
  in the shop actually stayed (stay) versus merely walked through (pass).

This example trains C2MN, annotates a held-out crowd, and answers all three
questions from the produced m-semantics, comparing against the ground truth.
"""

from __future__ import annotations

from collections import defaultdict

from repro.core import C2MNAnnotator, C2MNConfig
from repro.evaluation.harness import ground_truth_semantics
from repro.indoor import build_mall_space
from repro.mobility.dataset import generate_dataset, train_test_split
from repro.mobility.records import EVENT_STAY
from repro.queries import TkFRPQ, TkPRQ, top_k_precision


def conversion_rates(semantics_per_object, space):
    """Per region: number of stays, passes and the stay/(stay+pass) rate."""
    stays = defaultdict(int)
    passes = defaultdict(int)
    for semantics in semantics_per_object:
        for ms in semantics:
            if ms.event == EVENT_STAY:
                stays[ms.region_id] += 1
            else:
                passes[ms.region_id] += 1
    rows = []
    for region_id in sorted(set(stays) | set(passes)):
        total = stays[region_id] + passes[region_id]
        rows.append(
            (
                space.region(region_id).name,
                stays[region_id],
                passes[region_id],
                stays[region_id] / total if total else 0.0,
            )
        )
    rows.sort(key=lambda row: -row[3])
    return rows


def main() -> None:
    space = build_mall_space(floors=2, shops_per_side=5)
    dataset = generate_dataset(
        space,
        objects=16,
        duration=2400.0,
        max_period=8.0,
        error=4.0,
        min_duration=300.0,
        seed=19,
        name="mall-analytics",
    )
    train, test = train_test_split(dataset, train_fraction=0.7, seed=23)

    annotator = C2MNAnnotator(space, config=C2MNConfig.fast())
    annotator.fit(train.sequences)

    predicted = [annotator.annotate(labeled.sequence) for labeled in test.sequences]
    truth = ground_truth_semantics(test.sequences)

    print("== Top-5 popular regions (TkPRQ) ==")
    prq = TkPRQ(5)
    predicted_top = prq.evaluate(predicted)
    truth_top = prq.evaluate(truth)
    print(f"{'from C2MN annotations':<38}{'from ground truth'}")
    for (pred_region, pred_count), (true_region, true_count) in zip(predicted_top, truth_top):
        left = f"{space.region(pred_region).name} ({pred_count} visits)"
        right = f"{space.region(true_region).name} ({true_count} visits)"
        print(f"  {left:<36}{right}")
    print(
        "TkPRQ precision:",
        round(top_k_precision([r for r, _ in predicted_top], [r for r, _ in truth_top]), 3),
    )

    print("\n== Top-5 frequent region pairs (TkFRPQ) ==")
    frpq = TkFRPQ(5)
    predicted_pairs = frpq.top_pairs(predicted)
    truth_pairs = frpq.top_pairs(truth)
    for pair in predicted_pairs:
        names = " + ".join(space.region(r).name for r in pair)
        marker = "(also in ground truth)" if pair in truth_pairs else ""
        print(f"  {names} {marker}")
    print("TkFRPQ precision:", round(top_k_precision(predicted_pairs, truth_pairs), 3))

    print("\n== Conversion rates (stay vs pass) per region, top 8 ==")
    print(f"  {'region':<12}{'stays':>6}{'passes':>8}{'conversion':>12}")
    for name, stay_count, pass_count, rate in conversion_rates(predicted, space)[:8]:
        print(f"  {name:<12}{stay_count:>6}{pass_count:>8}{rate:>12.2f}")


if __name__ == "__main__":
    main()
