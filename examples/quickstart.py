"""Quickstart: train C2MN on simulated mall data and annotate a p-sequence.

Run with::

    python examples/quickstart.py

The script builds a small shopping-mall floorplan, simulates indoor mobility
with a Wi-Fi-like positioning-error model, trains the coupled conditional
Markov network on the labeled training split, and prints the m-semantics
(region, time period, event) annotated for one held-out positioning sequence
— the exact when-where-what output motivated in the paper's introduction.
"""

from __future__ import annotations

from repro.core import C2MNAnnotator, C2MNConfig
from repro.evaluation.metrics import evaluate_labels
from repro.indoor import build_mall_space
from repro.mobility.dataset import generate_dataset, train_test_split


def main() -> None:
    print("== Building the venue and the dataset ==")
    space = build_mall_space(floors=2, shops_per_side=5)
    print(f"venue: {space}")

    dataset = generate_dataset(
        space,
        objects=12,
        duration=1800.0,
        max_period=8.0,
        error=4.0,
        min_duration=300.0,
        seed=7,
        name="quickstart-mall",
    )
    stats = dataset.statistics()
    print(
        f"dataset: {stats['sequences']:.0f} sequences, {stats['records']:.0f} records, "
        f"~{stats['avg_sampling_interval']:.1f}s between reports"
    )

    train, test = train_test_split(dataset, train_fraction=0.7, seed=11)
    print(f"split: {len(train)} training / {len(test)} test sequences")

    print("\n== Training C2MN (alternate learning) ==")
    annotator = C2MNAnnotator(space, config=C2MNConfig.fast())
    report = annotator.fit(train.sequences)
    print(
        f"trained in {report.elapsed_seconds:.1f}s, {report.iterations} alternate steps, "
        f"converged={report.converged}"
    )
    print(f"learned template weights: {annotator.weights.round(3)}")

    print("\n== Annotating a held-out positioning sequence ==")
    held_out = test.sequences[0]
    regions, events = annotator.predict_labels(held_out.sequence)
    scores = evaluate_labels(
        regions, events, held_out.region_labels, held_out.event_labels
    )
    print(
        f"labeling accuracy on this sequence: RA={scores.region_accuracy:.3f} "
        f"EA={scores.event_accuracy:.3f} PA={scores.perfect_accuracy:.3f}"
    )

    semantics = annotator.annotate(held_out.sequence)
    print(f"\nm-semantics ({len(semantics)} entries):")
    for ms in semantics[:12]:
        region = space.region(ms.region_id)
        print(
            f"  ({region.name}, [{ms.start_time:7.1f}s, {ms.end_time:7.1f}s], {ms.event})"
            f"  [{ms.record_count} records]"
        )
    if len(semantics) > 12:
        print(f"  ... and {len(semantics) - 12} more")


if __name__ == "__main__":
    main()
