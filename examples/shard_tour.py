"""A tour of the durable, sharded semantics store.

Run with::

    python examples/shard_tour.py

The script walks the storage layer end to end:

1. partition a scenario's ground-truth m-semantics across shards and
   verify scatter-gather top-k answers are bit-identical to one store;
2. let the query planner explain the scatter plan;
3. open a durable store (per-shard WAL + snapshots), publish, and read
   the durability stats a service exposes on ``/healthz``;
4. stage a crash — tear the final WAL record by hand — and recover,
   watching replay stop at the last intact record;
5. round-trip the layout through a service save file.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.evaluation.harness import ground_truth_semantics
from repro.queries import TkFRPQ, TkPRQ
from repro.scenarios import materialize
from repro.service.store import SemanticsStore
from repro.store import (
    DurabilityConfig,
    PrefixPartitioner,
    ShardedSemanticsStore,
)


def main() -> None:
    print("== 1. Scatter-gather == single store, bitwise ==")
    scenario = materialize("transit-morning-peak")
    semantics = ground_truth_semantics(scenario.dataset.sequences)
    per_object = {
        f"station-{position % 4}/rider-{position}": entries
        for position, entries in enumerate(semantics)
    }

    single = SemanticsStore()
    sharded = ShardedSemanticsStore(4, partitioner=PrefixPartitioner())
    for object_id, entries in per_object.items():
        single.publish(object_id, entries)
        sharded.publish(object_id, entries)
    sharded.attach_index()

    prq, frpq = TkPRQ(3), TkFRPQ(3)
    top_regions = prq.evaluate(sharded)
    top_pairs = frpq.evaluate(sharded)
    assert top_regions == prq.evaluate(single)
    assert top_pairs == frpq.evaluate(single)
    print(f"  {scenario.name}: {len(sharded)} objects over 4 shards")
    print(f"  TkPRQ(3):  {top_regions}")
    print(f"  TkFRPQ(3): {top_pairs}")

    print("\n== 2. The planner explains the scatter plan ==")
    print(f"  sharded input: {prq.explain(sharded).reason}")
    print(f"  single input:  {prq.explain(single).reason}")

    with tempfile.TemporaryDirectory(prefix="shard-tour-") as tmp:
        root = Path(tmp) / "store"

        print("\n== 3. Durable publishes: per-shard WAL + snapshots ==")
        durable = ShardedSemanticsStore(
            2,
            durability=DurabilityConfig(root=root, mode="async", snapshot_every=64),
        )
        for object_id, entries in per_object.items():
            durable.publish(object_id, entries)
        durable.flush()  # barrier: every record fsync'd past this point
        stats = durable.wal_stats()
        print(f"  mode={stats['mode']}, pending after flush: {stats['pending_records']}")
        print(f"  health: {durable.health_stats()['objects_per_shard']} objects/shard")
        expected = prq.evaluate(durable)
        durable.close()

        print("\n== 4. Crash, torn WAL record, recovery ==")
        wal = next(
            path for path in root.glob("shard-*/wal.jsonl") if path.stat().st_size
        )
        with open(wal, "ab") as handle:
            handle.write(b'{"seq": 9999, "op": "publish", "oid": "torn-mid-append')
        recovered = ShardedSemanticsStore.open(root)
        print(f"  recovery: {recovered.last_recovery}")
        assert prq.evaluate(recovered) == expected
        assert "torn-mid-append" not in recovered.objects()
        print("  answers after recovery: bit-identical")

        print("\n== 5. The layout rides in service save files ==")
        config = recovered.to_config()
        recovered.close()
        print(f"  store config: kind={config['kind']}, shards={config['shards']}, "
              f"partitioner={config['partitioner']['kind']}")
        reopened = ShardedSemanticsStore.from_config(config)
        assert len(reopened) == len(per_object)
        reopened.close()
        print("  from_config(): recovered again from the same root")


if __name__ == "__main__":
    main()
