"""A tour of the report pipeline: bench corpus -> figures + trends.

Run with::

    python examples/report_tour.py

The script builds a miniature version of the committed ``docs/report/``:

1. run a *fresh* tiny query benchmark for one scenario (the "current"
   run of the trend axis);
2. feed it, together with the committed baselines under
   ``benchmarks/baselines/``, through ``repro.report.build_report`` into
   a temporary output directory;
3. walk the artifacts — tidy CSVs, Vega-Lite specs, ``REPORT.md`` — and
   show how the trend table compares the fresh numbers against the
   baseline tolerance band;
4. rebuild into a second directory and verify the output is
   byte-identical (the determinism CI relies on to diff the committed
   report).
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

from repro.bench import run_query_benchmarks
from repro.report import build_report

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINES = REPO_ROOT / "benchmarks" / "baselines"


def build(bench_dir: Path, out_dir: Path):
    return build_report(
        bench_dir=bench_dir, baselines_dir=BASELINES, out_dir=out_dir, seed=7
    )


def main() -> None:
    root = Path(tempfile.mkdtemp(prefix="report-tour-"))

    print("== 1. A fresh 'current' bench run (tiny query suite, one scenario) ==")
    bench_dir = root / "bench"
    bench_dir.mkdir()
    report = run_query_benchmarks(["mall-tiny"], repeats=2, seed=3)
    (bench_dir / "BENCH_queries.json").write_text(json.dumps(report, indent=2))
    print(f"  {len(report['results'])} result rows, "
          f"{len(report.get('precision', []))} precision cells")

    print("\n== 2. Build the report: fresh run vs committed baselines ==")
    build_a = build(bench_dir, root / "report")
    for path in build_a.written:
        print(f"  wrote {path.relative_to(root)}")

    print("\n== 3. The trend axis: baseline -> current, per headline metric ==")
    trends_header, trends_rows = build_a.tables["trends"]
    current = [row for row in trends_rows if row["source"] == "current"]
    for row in current[:6]:
        flag = "REGRESSED" if row["regressed"] else "ok"
        floor = f"{row['floor']:.3f}" if isinstance(row["floor"], float) else "n/a"
        print(f"  {row['suite']:8s} {row['metric']:34s} "
              f"speedup {row['speedup']:8.3f} floor {floor:>8s}  {flag}")
    print(f"  ({len(current)} current-run metrics, "
          f"{len(build_a.regressions)} regression(s) flagged)")

    print("\n== 4. Determinism: a second build is byte-identical ==")
    build_b = build(bench_dir, root / "report-again")
    for path_a, path_b in zip(build_a.written, build_b.written):
        assert path_a.read_bytes() == path_b.read_bytes(), path_a.name
    print(f"  {len(build_a.written)} artifacts compared equal")

    spec = json.loads((root / "report" / "specs" / "trends.vl.json").read_text())
    print("\nPaste any spec into https://vega.github.io/editor/ — e.g. "
          f"trends.vl.json encodes {spec['usermeta']['rows']} trend points.")


if __name__ == "__main__":
    main()
