"""Top-k Popular Region Query (TkPRQ).

Section V-B4: "A Top-k Popular Region Query (TkPRQ) finds k regions from Q
that have the most number of visits", where a *visit* is a stay event.  The
query is evaluated over a set of per-object m-semantics sequences within a
query time interval ``[start, end]``; an m-semantics contributes a visit to
its region when it is a stay and its time period intersects the interval.

``semantics_per_object`` accepts any iterable of per-object sequences — a
list (as returned by ``annotate_many``), a mapping keyed by object id, a
live :class:`repro.service.store.SemanticsStore`, or a
:class:`repro.index.SemanticsIndex` — so the query runs identically over
batch output and in-flight streaming traffic.  Evaluation goes through the
:mod:`repro.index.planner`: when the input is an index (or a store with one
attached) the inverted postings answer the query with threshold-style
early termination; otherwise the linear scan below does.  Both routes are
bit-identical.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.index.planner import QueryPlan, plan_query
from repro.mobility.records import EVENT_STAY, MSemantics


def per_object_sequences(
    semantics_per_object: Iterable[Sequence[MSemantics]],
) -> Iterable[Sequence[MSemantics]]:
    """Normalise the query input: mappings contribute their values."""
    if isinstance(semantics_per_object, Mapping):
        return semantics_per_object.values()
    return semantics_per_object


def count_region_visits(
    semantics_per_object: Iterable[Sequence[MSemantics]],
    *,
    start: Optional[float] = None,
    end: Optional[float] = None,
    query_regions: Optional[Set[int]] = None,
) -> Counter:
    """Count stay visits per region within the query interval.

    Consecutive stays at the same region by the same object count as one visit
    per m-semantics entry, exactly as produced by the label-and-merge step.
    """
    counts: Counter = Counter()
    for semantics in per_object_sequences(semantics_per_object):
        for ms in semantics:
            if ms.event != EVENT_STAY:
                continue
            if query_regions is not None and ms.region_id not in query_regions:
                continue
            if start is not None and ms.end_time < start:
                continue
            if end is not None and ms.start_time > end:
                continue
            counts[ms.region_id] += 1
    return counts


class TkPRQ:
    """Top-k Popular Region Query over a collection of annotated objects."""

    def __init__(
        self,
        k: int,
        *,
        query_regions: Optional[Set[int]] = None,
        start: Optional[float] = None,
        end: Optional[float] = None,
    ):
        if k < 1:
            raise ValueError("k must be at least 1")
        self.k = k
        self.query_regions = set(query_regions) if query_regions is not None else None
        self.start = start
        self.end = end

    def explain(
        self, semantics_per_object: Iterable[Sequence[MSemantics]]
    ) -> QueryPlan:
        """The physical plan :meth:`evaluate` would take for this input."""
        return plan_query(semantics_per_object, self.start, self.end)

    def evaluate(
        self, semantics_per_object: Iterable[Sequence[MSemantics]]
    ) -> List[Tuple[int, int]]:
        """Return the top-k ``(region_id, visit_count)`` pairs, most visited first.

        Ties are broken by region id so the result is deterministic.  When
        the input carries a :class:`repro.index.SemanticsIndex` the answer
        comes from the postings with early termination; the scan is the
        fallback and the semantic reference.
        """
        plan = plan_query(semantics_per_object, self.start, self.end)
        if plan.shards is not None:
            from repro.store.gather import scatter_top_k_regions

            return scatter_top_k_regions(
                plan.shards,
                self.k,
                start=self.start,
                end=self.end,
                query_regions=self.query_regions,
            )
        if plan.use_index:
            return plan.index.top_k_regions(
                self.k,
                start=self.start,
                end=self.end,
                query_regions=self.query_regions,
            )
        counts = count_region_visits(
            semantics_per_object,
            start=self.start,
            end=self.end,
            query_regions=self.query_regions,
        )
        ranked = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
        return ranked[: self.k]

    def top_regions(
        self, semantics_per_object: Iterable[Sequence[MSemantics]]
    ) -> List[int]:
        """Return only the region ids of the top-k answer."""
        return [region for region, _ in self.evaluate(semantics_per_object)]
