"""Top-k precision of query answers from annotated vs ground-truth m-semantics.

Section V-B4 measures "the ratio of true top-k regions (or region pairs) in
the returned top-k results".  This is plain top-k precision between two
ranked answers treated as sets.
"""

from __future__ import annotations

from typing import Sequence, Set, TypeVar

T = TypeVar("T")


def top_k_precision(predicted: Sequence[T], truth: Sequence[T]) -> float:
    """Return ``|predicted ∩ truth| / |truth|`` (0.0 when the truth is empty).

    The denominator is the size of the ground-truth answer so that a method
    returning fewer than k entries (because its annotations produced fewer
    candidates) is penalised rather than rewarded.
    """
    truth_set: Set[T] = set(truth)
    if not truth_set:
        return 0.0
    predicted_set: Set[T] = set(predicted)
    return len(predicted_set & truth_set) / len(truth_set)
