"""Semantics-oriented queries over annotated m-semantics (Section V-B4).

* :mod:`repro.queries.tkprq` — Top-k Popular Region Query: the k regions
  with the most stay visits within a query time interval.
* :mod:`repro.queries.tkfrpq` — Top-k Frequent Region Pair Query: the k most
  frequent pairs of regions visited (stayed at) by the same object.
* :mod:`repro.queries.precision` — top-k precision of query answers computed
  from annotated m-semantics against answers computed from the ground truth.

All queries accept any per-object collection of m-semantics: a list (batch
``annotate_many`` output), a mapping keyed by object id, a live
:class:`repro.service.SemanticsStore` fed by streaming sessions, or a
:class:`repro.index.SemanticsIndex`.  Inputs carrying an index are answered
by the inverted-postings engine via the :mod:`repro.index.planner`;
everything else takes the linear scan.  The two routes are bit-identical.
"""

from repro.queries.tkprq import TkPRQ, count_region_visits
from repro.queries.tkfrpq import TkFRPQ, count_region_pairs
from repro.queries.precision import top_k_precision

__all__ = [
    "TkPRQ",
    "count_region_visits",
    "TkFRPQ",
    "count_region_pairs",
    "top_k_precision",
]
