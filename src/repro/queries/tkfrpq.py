"""Top-k Frequent Region Pair Query (TkFRPQ).

Section V-B4: "A Top-k Frequent Region Pair Query (TkFRPQ) finds k most
frequent pairs of regions from Q x Q that both have been visited by the same
object."  A pair's frequency is the number of objects that stayed at both of
its regions within the query interval.
"""

from __future__ import annotations

from collections import Counter
from itertools import combinations
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.index.planner import QueryPlan, plan_query
from repro.mobility.records import EVENT_STAY, MSemantics
from repro.queries.tkprq import per_object_sequences

RegionPair = Tuple[int, int]


def count_region_pairs(
    semantics_per_object: Iterable[Sequence[MSemantics]],
    *,
    start: Optional[float] = None,
    end: Optional[float] = None,
    query_regions: Optional[Set[int]] = None,
) -> Counter:
    """Count, per unordered region pair, the objects that stayed at both regions.

    Accepts the same input shapes as
    :func:`repro.queries.tkprq.count_region_visits` — iterables, mappings or
    a live semantics store.
    """
    counts: Counter = Counter()
    for semantics in per_object_sequences(semantics_per_object):
        visited: Set[int] = set()
        for ms in semantics:
            if ms.event != EVENT_STAY:
                continue
            if query_regions is not None and ms.region_id not in query_regions:
                continue
            if start is not None and ms.end_time < start:
                continue
            if end is not None and ms.start_time > end:
                continue
            visited.add(ms.region_id)
        for pair in combinations(sorted(visited), 2):
            counts[pair] += 1
    return counts


class TkFRPQ:
    """Top-k Frequent Region Pair Query over a collection of annotated objects."""

    def __init__(
        self,
        k: int,
        *,
        query_regions: Optional[Set[int]] = None,
        start: Optional[float] = None,
        end: Optional[float] = None,
    ):
        if k < 1:
            raise ValueError("k must be at least 1")
        self.k = k
        self.query_regions = set(query_regions) if query_regions is not None else None
        self.start = start
        self.end = end

    def explain(
        self, semantics_per_object: Iterable[Sequence[MSemantics]]
    ) -> QueryPlan:
        """The physical plan :meth:`evaluate` would take for this input."""
        return plan_query(semantics_per_object, self.start, self.end)

    def evaluate(
        self, semantics_per_object: Iterable[Sequence[MSemantics]]
    ) -> List[Tuple[RegionPair, int]]:
        """Return the top-k ``((region_a, region_b), count)`` entries.

        Index-backed inputs answer from the per-object region sets (full
        range) or interval-pruned postings (bounded); the scan is the
        fallback and the semantic reference.  Both are bit-identical.
        """
        plan = plan_query(semantics_per_object, self.start, self.end)
        if plan.shards is not None:
            from repro.store.gather import scatter_top_k_pairs

            return scatter_top_k_pairs(
                plan.shards,
                self.k,
                start=self.start,
                end=self.end,
                query_regions=self.query_regions,
            )
        if plan.use_index:
            return plan.index.top_k_pairs(
                self.k,
                start=self.start,
                end=self.end,
                query_regions=self.query_regions,
            )
        counts = count_region_pairs(
            semantics_per_object,
            start=self.start,
            end=self.end,
            query_regions=self.query_regions,
        )
        ranked = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
        return ranked[: self.k]

    def top_pairs(
        self, semantics_per_object: Iterable[Sequence[MSemantics]]
    ) -> List[RegionPair]:
        """Return only the region pairs of the top-k answer."""
        return [pair for pair, _ in self.evaluate(semantics_per_object)]
