"""Streaming annotation of one object's positioning records.

:class:`StreamSession` turns the batch ``predict_labels`` of any
:class:`repro.core.protocol.Annotator` into an online API: positioning
records are pushed one at a time (:meth:`StreamSession.add`), the session
re-decodes a sliding tail window of the sequence, and m-semantics are
*finalized* — published to the :class:`repro.service.store.SemanticsStore` —
once the window has moved past them, so queries and analytics see an
object's when-where-what while it is still moving.

How the window works
--------------------

With window ``W`` and guard ``g`` (``0 <= g < W``), after the ``n``-th record
arrives the session decodes the last ``min(n, W)`` records as a standalone
sub-sequence and *commits* the decoded labels of positions ``[s+g, n)`` where
``s = n - W`` (all of them while ``s == 0``).  The guard band discards the
first ``g`` decoded labels of a partial window: those positions sit at the
left edge of the decode, where ICM lacks left context, and they were already
committed by an earlier decode in which they sat deeper inside the window.
Every record's label therefore settles with at least ``g`` records of left
context and up to ``W - g - 1`` records of right context.

Positions left of the commit range are *frozen* — no later decode touches
them — and complete equal-label runs of frozen records are merged into
m-semantics (Figure 2) and published.  The run containing the newest frozen
record is held back, since upcoming records may extend it.

Memory stays bounded: once a record is both published and outside every
future decode window, it is dropped from the session (the store holds the
durable output), so a windowed session retains O(window + pending-run)
records no matter how long the stream runs.  Pass ``keep_history=True`` to
retain everything — e.g. to compare streamed labels against a batch decode.

Exactness
---------

Decoding a tail window is an approximation with a precise limit: when the
window is at least the sequence length (or the session is created with
``exact=True``), every step decodes the full sequence and the stream yields,
after :meth:`StreamSession.finish`, *exactly* the m-semantics of batch
``annotate`` on the whole p-sequence.  The windowed path trades that for
per-record cost bounded by ``O(W)`` instead of ``O(n)``;
``benchmarks/test_perf_streaming.py`` measures the gap and
``tests/test_service.py`` pins the record-level agreement.
"""

from __future__ import annotations

import threading
from typing import Callable, List, Optional, Tuple

from repro.core.protocol import Annotator
from repro.geometry.point import IndoorPoint
from repro.mobility.records import MSemantics, PositioningRecord, PositioningSequence
from repro.service.store import SemanticsStore


class StreamSession:
    """Online annotation of one object; create via ``AnnotationService.session``."""

    def __init__(
        self,
        annotator: Annotator,
        object_id: str,
        store: SemanticsStore,
        *,
        window: int = 48,
        guard: Optional[int] = None,
        exact: bool = False,
        keep_history: bool = False,
        on_finish: Optional[Callable[["StreamSession"], None]] = None,
    ):
        if window < 2:
            raise ValueError("window must be at least 2 records")
        if guard is None:
            guard = window // 4
        if not 0 <= guard < window:
            raise ValueError("guard must satisfy 0 <= guard < window")
        if not annotator.is_fitted:
            raise ValueError("streaming requires a fitted annotator")
        self.annotator = annotator
        self.object_id = object_id
        self.store = store
        self.window = window
        self.guard = guard
        self.exact = exact
        self.keep_history = keep_history
        # Retained suffix of the stream; absolute position i lives at list
        # index i - _offset.  _offset stays 0 when keep_history is set.
        self._records: List[PositioningRecord] = []
        self._regions: List[int] = []
        self._events: List[str] = []
        self._offset = 0
        self._total = 0
        self._published_records = 0
        self._decodes = 0
        self._closed = False
        self._on_finish = on_finish
        # Makes finish() atomic: a drain (AnnotationService.finish_all) racing
        # a client-initiated finish must flush the pending runs exactly once.
        # Record ingestion stays unlocked — records of one session must be
        # fed from one caller at a time (the HTTP layer enforces this with a
        # per-session lock).
        self._finish_lock = threading.Lock()

    # ------------------------------------------------------------ properties
    @property
    def record_count(self) -> int:
        """Total records ingested over the session's lifetime."""
        return self._total

    @property
    def retained_record_count(self) -> int:
        """Records currently held in memory (bounded unless ``keep_history``)."""
        return len(self._records)

    @property
    def published_record_count(self) -> int:
        """Records whose m-semantics have been finalized and published."""
        return self._published_records

    @property
    def decode_count(self) -> int:
        """How many (windowed or full) decodes the session has run."""
        return self._decodes

    @property
    def is_closed(self) -> bool:
        return self._closed

    @property
    def labels(self) -> Tuple[List[int], List[str]]:
        """Snapshot of the retained record-level labels (frozen + provisional).

        Covers positions ``labels_start .. record_count``; with
        ``keep_history=True`` (or an exact session) that is the full stream.
        """
        return list(self._regions), list(self._events)

    @property
    def labels_start(self) -> int:
        """Absolute position of the first retained record/label."""
        return self._offset

    @property
    def sequence(self) -> PositioningSequence:
        """The retained records as a p-sequence (raises when empty)."""
        return PositioningSequence(
            self._records, object_id=self.object_id, sort=False
        )

    # -------------------------------------------------------------- streaming
    def add(self, record: PositioningRecord) -> List[MSemantics]:
        """Ingest one positioning record; return the m-semantics it finalized.

        Records must arrive in time order.  The returned (possibly empty)
        list has also been published to the store.
        """
        if self._closed:
            raise ValueError("cannot add records to a finished session")
        if self._records and record.timestamp < self._records[-1].timestamp:
            raise ValueError("streaming records must arrive in time order")
        self._records.append(record)
        self._regions.append(0)
        self._events.append("pass")
        self._total += 1
        self._decode_tail()
        finalized = self._finalize(upto=self._frozen_boundary())
        self._compact()
        return finalized

    def add_point(
        self, x: float, y: float, timestamp: float, *, floor: int = 0
    ) -> List[MSemantics]:
        """Convenience wrapper building the :class:`PositioningRecord` inline."""
        return self.add(
            PositioningRecord(location=IndoorPoint(x, y, floor), timestamp=timestamp)
        )

    def extend(self, records) -> List[MSemantics]:
        """Ingest many records; return everything they finalized, in order."""
        finalized: List[MSemantics] = []
        for record in records:
            finalized.extend(self.add(record))
        return finalized

    def finish(self) -> List[MSemantics]:
        """Close the stream and flush the remaining m-semantics.

        The labels committed by the last decode stand; every still-pending
        run is merged, published and returned.  For ``exact`` sessions (or a
        window at least the sequence length) the concatenation of everything
        published equals batch ``annotate`` on the full sequence.
        """
        with self._finish_lock:
            if self._closed:
                return []
            self._closed = True
            flushed = self._finalize(upto=self._total)
        if self._on_finish is not None:
            self._on_finish(self)
        return flushed

    # ------------------------------------------------------------- internals
    def _window_start(self, n: int) -> int:
        if self.exact or self.window >= n:
            return 0
        return n - self.window

    def _frozen_boundary(self) -> int:
        """First position a future decode may still overwrite."""
        start = self._window_start(self._total)
        return 0 if start == 0 else start + self.guard

    def _decode_tail(self) -> None:
        """Re-decode the tail window and commit labels outside the guard band."""
        n = self._total
        start = self._window_start(n)
        tail = PositioningSequence(
            self._records[start - self._offset :], object_id=self.object_id, sort=False
        )
        regions, events = self.annotator.predict_labels(tail)
        self._decodes += 1
        commit_from = 0 if start == 0 else start + self.guard
        for i in range(commit_from, n):
            self._regions[i - self._offset] = regions[i - start]
            self._events[i - self._offset] = events[i - start]

    def _finalize(self, *, upto: int) -> List[MSemantics]:
        """Merge and publish the complete runs in ``[published, upto)``.

        Unless the session is closed, the run touching ``upto`` is held back:
        later records may extend it (same labels) or settle its end time.
        """
        start = self._published_records
        if upto <= start:
            return []
        offset = self._offset
        finalized: List[MSemantics] = []
        run_start = start
        for i in range(start + 1, upto + 1):
            run_ends = (
                i == upto
                or self._regions[i - offset] != self._regions[run_start - offset]
                or self._events[i - offset] != self._events[run_start - offset]
            )
            if not run_ends:
                continue
            # The final run is only safe once nothing can extend it.
            if i == upto and not (self._closed and upto == self._total):
                break
            finalized.append(
                MSemantics(
                    region_id=self._regions[run_start - offset],
                    start_time=self._records[run_start - offset].timestamp,
                    end_time=self._records[i - 1 - offset].timestamp,
                    event=self._events[run_start - offset],
                    record_count=i - run_start,
                )
            )
            run_start = i
        if finalized:
            self.store.publish(self.object_id, finalized)
            self._published_records = run_start
        return finalized

    def _compact(self) -> None:
        """Drop records that are published *and* outside every future window.

        Future decodes read from the current window start onward and future
        finalization reads from the first unpublished record onward, so
        everything before the older of the two can go.  The store holds the
        durable m-semantics; ``keep_history=True`` disables dropping.
        """
        if self.keep_history:
            return
        drop_to = min(self._published_records, self._window_start(self._total))
        cut = drop_to - self._offset
        if cut <= 0:
            return
        del self._records[:cut]
        del self._regions[:cut]
        del self._events[:cut]
        self._offset = drop_to

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        mode = "exact" if self.exact else f"window={self.window},guard={self.guard}"
        return (
            f"StreamSession({self.object_id!r}, {mode}, records={self._total}, "
            f"published={self._published_records}, closed={self._closed})"
        )
