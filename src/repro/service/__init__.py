"""Streaming annotation service: live sessions, semantics store, persistence.

The batch API (:mod:`repro.core`) needs a complete p-sequence before anything
is annotated.  This subsystem serves *in-flight* traffic instead:

* :class:`AnnotationService` wraps any fitted
  :class:`repro.core.protocol.Annotator` plus a :class:`SemanticsStore`;
* ``service.session(object_id)`` returns a :class:`StreamSession` that
  ingests positioning records one at a time, re-decodes a sliding tail
  window (full-sequence decode stays available as the exact fallback) and
  finalizes m-semantics once the window has moved past them;
* finalized m-semantics land in the shared :class:`SemanticsStore`, over
  which the paper's TkPRQ/TkFRPQ and the behaviour analytics run live —
  attach a :class:`repro.index.SemanticsIndex` with
  ``service.enable_index()`` and those queries answer from incrementally
  maintained postings instead of scanning the store;
* ``service.save(path)`` / ``AnnotationService.load(path, space)`` ship a
  trained model without retraining;
* :func:`replay_scenario` replays a registered scenario's traffic through
  streaming sessions in global timestamp order — the stress/soak path of
  the scenario catalogue.

See ``examples/streaming_service.py`` for an end-to-end tour and
``docs/ARCHITECTURE.md`` for how the window/guard mechanics work.
"""

from repro.service.service import AnnotationService
from repro.service.session import StreamSession
from repro.service.store import SemanticsStore
from repro.service.replay import ReplayReport, replay_scenario

__all__ = [
    "AnnotationService",
    "StreamSession",
    "SemanticsStore",
    "ReplayReport",
    "replay_scenario",
]
