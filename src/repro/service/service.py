"""The deployable annotation surface: sessions, store, live queries, save/load.

:class:`AnnotationService` wraps a fitted :class:`repro.core.protocol.Annotator`
together with a :class:`repro.service.store.SemanticsStore` and exposes:

* :meth:`AnnotationService.session` — a :class:`StreamSession` per moving
  object, ingesting positioning records one at a time and publishing
  m-semantics to the store as they become final;
* :meth:`AnnotationService.annotate_batch` — the batch path through the same
  store, for backfills and offline workloads;
* :meth:`AnnotationService.query_popular_regions` /
  :meth:`query_frequent_pairs` — the paper's TkPRQ and TkFRPQ evaluated
  live over everything published so far, in-flight sessions included;
  with :meth:`enable_index` the store carries a live
  :class:`repro.index.SemanticsIndex` and these answer from the postings
  (bit-identically) instead of scanning every published m-semantics;
* :meth:`AnnotationService.save` / :meth:`AnnotationService.load` — JSON
  persistence of the trained model and service settings (built on
  :mod:`repro.persistence`), so a trained service ships without retraining.

Only the model and settings are persisted; the store *contents* and active
sessions are runtime state (persist a plain store separately with
``service.store.save(path)``).  The store *shape* is persisted: a service
backed by a :class:`repro.store.ShardedSemanticsStore` records its shard
count, partitioner and durability config, so :meth:`AnnotationService.load`
reopens the same sharded layout — and, when the store is durable, recovers
its contents from the per-shard WAL + snapshots.
"""

from __future__ import annotations

import copy
import json
import threading
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.core.protocol import Annotator
from repro.crf.batch import bucket_indices
from repro.index import SemanticsIndex
from repro.mobility.records import MSemantics, PositioningSequence
from repro.runtime import (
    ExecutionPolicy,
    Executor,
    UNSET,
    resolve_policy,
    sequence_fingerprint,
)
from repro.queries.tkfrpq import RegionPair, TkFRPQ
from repro.queries.tkprq import TkPRQ
from repro.service.session import StreamSession
from repro.service.store import SemanticsStore

PathLike = Union[str, Path]

SERVICE_FORMAT = "repro.annotation-service/1"


class AnnotationService:
    """Streaming + batch annotation over one venue, backed by one store."""

    DEFAULT_WINDOW = 48

    def __init__(
        self,
        annotator: Annotator,
        *,
        store: Optional[SemanticsStore] = None,
        window: int = DEFAULT_WINDOW,
        guard: Optional[int] = None,
        policy: Optional[ExecutionPolicy] = None,
        backend: str = UNSET,
        indexed: bool = False,
    ):
        if not annotator.is_fitted:
            raise ValueError(
                "AnnotationService requires a fitted annotator; "
                "fit() it or load() a persisted one"
            )
        if window < 2:
            raise ValueError("window must be at least 2 records")
        self.annotator = annotator
        self.store = store if store is not None else SemanticsStore()
        self.window = window
        self.guard = guard
        self.policy = resolve_policy(
            policy, backend=backend, owner="AnnotationService()"
        )
        # Legacy attribute, mirrored from the policy for older callers.
        self.backend = self.policy.backend
        self._sessions: Dict[str, StreamSession] = {}
        # Guards the service-level mutable state (the session registry and
        # index toggling) against concurrent callers — the HTTP front door
        # (:mod:`repro.net.server`) runs handlers on a thread pool, so
        # session create/evict and enable/disable_index must be atomic.
        # Re-entrant because finishing a session evicts it via callback
        # while ``finish_all`` holds the lock.  The lock intentionally does
        # NOT serialise decoding: per-session record ingestion is the
        # caller's ordering responsibility (the HTTP layer keeps one lock
        # per session) and the store has its own lock for publishes.
        self._lock = threading.RLock()
        if indexed:
            self.store.attach_index()

    # -------------------------------------------------------------- sessions
    def session(
        self,
        object_id: str,
        *,
        window: Optional[int] = None,
        guard: Optional[int] = None,
        exact: bool = False,
        keep_history: bool = False,
    ) -> StreamSession:
        """Open a streaming session for one object.

        One live session per object id; finished sessions are evicted from
        the service automatically, so long-running services hold only the
        in-flight ones.  ``window``/``guard`` default to the service-level
        settings; ``exact=True`` re-decodes the full sequence on every
        record (the exact but O(n)-per-record fallback);
        ``keep_history=True`` makes the session retain all records and
        labels instead of dropping published, out-of-window prefixes.
        """
        with self._lock:
            existing = self._sessions.get(object_id)
            if existing is not None and not existing.is_closed:
                raise ValueError(f"object {object_id!r} already has a live session")
            session = StreamSession(
                self.annotator,
                object_id,
                self.store,
                window=window if window is not None else self.window,
                guard=guard if guard is not None else self.guard,
                exact=exact,
                keep_history=keep_history,
                on_finish=self._evict_session,
            )
            self._sessions[object_id] = session
            return session

    def _evict_session(self, session: StreamSession) -> None:
        with self._lock:
            if self._sessions.get(session.object_id) is session:
                del self._sessions[session.object_id]

    def get_session(self, object_id: str) -> Optional[StreamSession]:
        """The live session of one object, or None (finished sessions evict)."""
        with self._lock:
            session = self._sessions.get(object_id)
            return session if session is not None and not session.is_closed else None

    def live_sessions(self) -> List[StreamSession]:
        """The currently open sessions."""
        with self._lock:
            return [s for s in self._sessions.values() if not s.is_closed]

    def finish_all(self) -> List[MSemantics]:
        """Finish every live session; return everything that flushed.

        Safe against concurrent session churn: the snapshot is taken under
        the service lock and sessions that finish concurrently flush empty.
        """
        flushed: List[MSemantics] = []
        for session in self.live_sessions():
            flushed.extend(session.finish())
        return flushed

    # ----------------------------------------------------------------- batch
    def annotate_batch(
        self,
        sequences: Sequence[PositioningSequence],
        *,
        policy: Optional[ExecutionPolicy] = None,
        workers: Optional[int] = UNSET,
        backend: Optional[str] = UNSET,
    ) -> List[List[MSemantics]]:
        """Annotate complete p-sequences and publish them to the store.

        The batch counterpart of the streaming path — same store, same
        query surface — for backfilling historical traffic.  ``policy``
        defaults to the service-level :class:`ExecutionPolicy`; a process
        policy shards length buckets across the persistent worker pool
        (the annotator is broadcast through shared memory), which is how
        large backfills use every core.  Results are published through a
        **chunked streaming gather**: each bucket's m-semantics land in the
        store as soon as that bucket finishes decoding, so queries see a
        long backfill progressively instead of after one big barrier.
        Streaming sessions always decode in-process: their incremental
        windows are far too small to amortise inter-process dispatch.

        The legacy ``workers=``/``backend=`` keywords still work but emit
        a :class:`DeprecationWarning`.
        """
        policy = resolve_policy(
            policy,
            workers=workers,
            backend=backend,
            default=self.policy,
            owner="annotate_batch()",
        )
        sequences = list(sequences)
        results: List[List[MSemantics]] = [[] for _ in sequences]
        executor = Executor(policy=policy)

        def publish(position: int, entries: List[MSemantics]) -> None:
            results[position] = entries
            self.store.publish(sequences[position].object_id, entries)

        if policy.batch:
            # Coalesce identical sequences (replayed traffic decodes once),
            # then bucket the distinct ones by length for dispatch.
            keys = [sequence_fingerprint(sequence) for sequence in sequences]
            slot_of: Dict[str, int] = {}
            positions_of: List[List[int]] = []
            for position, key in enumerate(keys):
                if key not in slot_of:
                    slot_of[key] = len(positions_of)
                    positions_of.append([])
                positions_of[slot_of[key]].append(position)
            uniques = [sequences[group[0]] for group in positions_of]
            buckets = bucket_indices(
                [len(unique) for unique in uniques],
                policy.effective_bucket_size(len(uniques)),
            )
            items = [[uniques[slot] for slot in bucket] for bucket in buckets]
            for start, stop, chunk in executor.map_broadcast_stream(
                self.annotator, "annotate_bucket", items
            ):
                # Decoding runs unlocked (it is pure compute); each
                # completed bucket's publishes are grouped under the
                # service lock so they land atomically with respect to
                # enable/disable_index and other batches.
                with self._lock:
                    for bucket, bucket_result in zip(buckets[start:stop], chunk):
                        for slot, entries in zip(bucket, bucket_result):
                            for extra, position in enumerate(positions_of[slot]):
                                publish(
                                    position,
                                    entries if extra == 0
                                    else copy.deepcopy(entries),
                                )
        else:
            for start, stop, chunk in executor.map_broadcast_stream(
                self.annotator, "annotate", sequences
            ):
                with self._lock:
                    for position, entries in zip(range(start, stop), chunk):
                        publish(position, entries)
        return results

    # ---------------------------------------------------------- live queries
    def enable_index(self) -> SemanticsIndex:
        """Attach a live semantic-region index to this service's store.

        Subsequent ``query_*`` calls are answered from the index (updated on
        every publish, under the store's lock discipline) instead of a full
        scan; results stay bit-identical.  Idempotent.
        """
        with self._lock:
            return self.store.attach_index()

    def disable_index(self) -> None:
        """Detach the store's index; queries fall back to the linear scan."""
        with self._lock:
            self.store.detach_index()

    @property
    def index(self) -> Optional[SemanticsIndex]:
        """The store's live index, if enabled (None for sharded stores,
        which carry one index per shard instead of a single one)."""
        return getattr(self.store, "live_index", None)

    def query_popular_regions(
        self,
        k: int,
        *,
        query_regions: Optional[Set[int]] = None,
        start: Optional[float] = None,
        end: Optional[float] = None,
    ) -> List[Tuple[int, int]]:
        """TkPRQ over everything published so far (in-flight traffic included)."""
        query = TkPRQ(k, query_regions=query_regions, start=start, end=end)
        return query.evaluate(self.store)

    def query_frequent_pairs(
        self,
        k: int,
        *,
        query_regions: Optional[Set[int]] = None,
        start: Optional[float] = None,
        end: Optional[float] = None,
    ) -> List[Tuple[RegionPair, int]]:
        """TkFRPQ over everything published so far (in-flight traffic included)."""
        query = TkFRPQ(k, query_regions=query_regions, start=start, end=end)
        return query.evaluate(self.store)

    # Historical names, kept as thin delegates.
    popular_regions = query_popular_regions
    frequent_pairs = query_frequent_pairs

    # ----------------------------------------------------------- persistence
    def save(self, path: PathLike) -> None:
        """Write the trained model and service settings to a JSON file.

        Only C2MN-family annotators carry persistable weights; saving a
        service wrapping a baseline raises ``TypeError`` (baselines are
        parameter-light — refit them instead).
        """
        from repro.persistence.atomic import atomic_write_text
        from repro.persistence.serializers import annotator_to_dict

        payload = {
            "format": SERVICE_FORMAT,
            "window": self.window,
            "guard": self.guard,
            # "backend" is kept alongside the full policy so files written
            # by this version still load on pre-policy code.
            "backend": self.backend,
            "policy": self.policy.to_dict(),
            "indexed": getattr(self.store, "is_indexed", False),
            "annotator": annotator_to_dict(self.annotator),
        }
        store_config = getattr(self.store, "to_config", None)
        if callable(store_config):
            payload["store"] = store_config()
        atomic_write_text(path, json.dumps(payload))

    @classmethod
    def load(
        cls,
        path: PathLike,
        space,
        *,
        oracle=None,
        store: Optional[SemanticsStore] = None,
        store_root: Optional[PathLike] = None,
    ) -> "AnnotationService":
        """Rebuild a service written by :meth:`save`.

        The indoor space is code, not data, so the caller supplies it.  The
        restored annotator carries the saved weights and config and decodes
        bitwise-identically to the one that was saved.  C2MN-family models
        round-trip this way; baselines are parameter-light and are simply
        refit instead.

        When the save file records a sharded store and no explicit
        ``store`` is passed, the same layout is rebuilt — and a durable
        layout *recovers*: each shard replays its snapshot + WAL tail, so a
        service that died mid-stream comes back with everything it had
        durably published.  ``store_root`` relocates the durability root
        (for save files that moved between machines).
        """
        from repro.persistence.serializers import annotator_from_dict

        payload = json.loads(Path(path).read_text())
        if payload.get("format") != SERVICE_FORMAT:
            raise ValueError(f"not an annotation-service file: {path}")
        annotator = annotator_from_dict(payload["annotator"], space, oracle=oracle)
        if "policy" in payload:
            policy = ExecutionPolicy.from_dict(payload["policy"])
        else:  # pre-policy file: only the backend name was persisted
            policy = ExecutionPolicy(backend=payload.get("backend", "thread"))
        store_config = payload.get("store")
        if store is None and store_config is not None and store_config.get("kind") == "sharded":
            # Imported lazily: repro.store imports this package's store
            # module, so a top-level import would be circular.
            from repro.store import ShardedSemanticsStore

            store = ShardedSemanticsStore.from_config(store_config, root=store_root)
        return cls(
            annotator,
            store=store,
            window=payload.get("window", cls.DEFAULT_WINDOW),
            guard=payload.get("guard"),
            policy=policy,
            indexed=payload.get("indexed", False),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"AnnotationService({self.annotator.name!r}, window={self.window}, "
            f"objects={len(self.store)}, live={len(self.live_sessions())})"
        )
