"""In-memory store of finalized m-semantics, keyed by object id.

:class:`SemanticsStore` is where the streaming layer publishes m-semantics as
they are finalized, and where live queries and analytics read from.  Iterating
a store yields one m-semantics sequence per object — exactly the
``semantics_per_object`` shape that :class:`repro.queries.tkprq.TkPRQ`,
:class:`repro.queries.tkfrpq.TkFRPQ` and :mod:`repro.analytics.behaviour`
consume — so a store can be passed to any of them directly, while sessions
keep appending to it.

The store is thread-safe: concurrent sessions (one per moving object) publish
under a lock, and readers always observe consistent per-object snapshots.

A store can carry a live :class:`repro.index.SemanticsIndex`
(:meth:`SemanticsStore.attach_index` / :meth:`detach_index`): every publish
then updates the index inside the store lock, so queries evaluated over the
store are answered from the postings instead of a full scan — with
bit-identical results — while sessions keep publishing concurrently.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Union

from repro.index import SemanticsIndex
from repro.mobility.records import MSemantics
from repro.persistence.atomic import atomic_write_text
from repro.persistence.serializers import semantics_from_dicts, semantics_to_dicts

PathLike = Union[str, Path]


class SemanticsStore:
    """Per-object m-semantics sequences, safe for concurrent publish and read."""

    def __init__(self):
        self._semantics: Dict[str, List[MSemantics]] = {}
        self._lock = threading.Lock()
        self._index: Optional[SemanticsIndex] = None

    # ------------------------------------------------------------ publishing
    def publish(self, object_id: str, semantics: Iterable[MSemantics]) -> None:
        """Append finalized m-semantics to one object's sequence.

        Entries must arrive in time order per object (streaming sessions and
        batch annotation both guarantee this); the non-overlap invariant of
        Definition 3 is the publisher's responsibility.  An attached index
        is updated under the same lock, so it never diverges from the store.
        """
        entries = list(semantics)
        if not entries:
            return
        with self._lock:
            self._semantics.setdefault(object_id, []).extend(entries)
            if self._index is not None:
                self._index.add(object_id, entries)

    def clear(self, object_id: Optional[str] = None) -> None:
        """Drop one object's sequence (or everything when no id is given).

        A single-object clear unwinds only that object from an attached
        index (:meth:`SemanticsIndex.remove` — O(object), not a full
        O(total) rebuild); clearing everything resets the index outright.
        """
        with self._lock:
            if object_id is None:
                self._semantics.clear()
                if self._index is not None:
                    self._index.rebuild(())
            else:
                self._semantics.pop(object_id, None)
                if self._index is not None:
                    self._index.remove(object_id)

    # ----------------------------------------------------------------- index
    def attach_index(self) -> SemanticsIndex:
        """Attach (or return the already-attached) live semantic-region index.

        The index is bulk-built from the current contents under the store
        lock and kept incrementally up to date by every subsequent
        :meth:`publish`.  Queries that receive this store then route through
        the index automatically (see :mod:`repro.index.planner`).
        """
        with self._lock:
            if self._index is None:
                index = SemanticsIndex()
                index.add_many(self._semantics.items())
                self._index = index
            return self._index

    def detach_index(self) -> None:
        """Drop the live index; queries fall back to the linear scan."""
        with self._lock:
            self._index = None

    @property
    def live_index(self) -> Optional[SemanticsIndex]:
        """The attached index, if any — what the query planner looks for.

        Read under the store lock: the planner's ``resolve_index`` races
        concurrent :meth:`attach_index`/:meth:`detach_index` callers, and an
        unlocked read could observe a half-published index reference.
        """
        with self._lock:
            return self._index

    @property
    def is_indexed(self) -> bool:
        """Whether queries over this store are answered from an index."""
        return self.live_index is not None

    # --------------------------------------------------------------- reading
    def objects(self) -> List[str]:
        """The object ids with at least one published m-semantics."""
        with self._lock:
            return list(self._semantics)

    def semantics_for(self, object_id: str) -> List[MSemantics]:
        """Snapshot of one object's sequence (empty list for unknown objects)."""
        with self._lock:
            return list(self._semantics.get(object_id, ()))

    def as_dict(self) -> Dict[str, List[MSemantics]]:
        """Snapshot of everything, keyed by object id."""
        with self._lock:
            return {object_id: list(entries) for object_id, entries in self._semantics.items()}

    def __iter__(self) -> Iterator[List[MSemantics]]:
        """Yield one m-semantics sequence per object (the query input shape)."""
        return iter(self.as_dict().values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._semantics)

    @property
    def total_semantics(self) -> int:
        """Total number of published m-semantics across all objects."""
        with self._lock:
            return sum(len(entries) for entries in self._semantics.values())

    # ----------------------------------------------------------- persistence
    def save(self, path: PathLike) -> None:
        """Write the store to a JSON file (per-object m-semantics lists)."""
        snapshot = self.as_dict()
        payload = {
            object_id: semantics_to_dicts(entries)
            for object_id, entries in snapshot.items()
        }
        atomic_write_text(path, json.dumps(payload))

    @classmethod
    def load(cls, path: PathLike, *, indexed: bool = False) -> "SemanticsStore":
        """Read a store written by :meth:`save`; ``indexed`` attaches an index."""
        payload = json.loads(Path(path).read_text())
        store = cls()
        for object_id, entries in payload.items():
            store.publish(object_id, semantics_from_dicts(entries))
        if indexed:
            store.attach_index()
        return store

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"SemanticsStore(objects={len(self)}, semantics={self.total_semantics})"
