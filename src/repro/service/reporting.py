"""Flat-row reporting shared by the replay and load-testing artifacts.

Every harness that measures the service layer — the scenario replay
(:mod:`repro.service.replay`), the open-loop load generator
(:mod:`repro.net.loadgen`) and the service bench suite — reduces a run to a
*flat row*: one ``{column: scalar}`` dict per (run, repetition) that lands
in a report, a CSV artifact or a benchmark JSON.  This module is the single
place that defines how a report dataclass becomes such a row, so replay and
loadgen artifacts share column conventions instead of re-implementing them:

* :func:`flat_row` — dataclass fields in declaration order, plus named
  derived properties (computed metrics like ``records_per_second``)
  appended after them;
* :func:`write_csv` — rows (possibly with heterogeneous columns) to one
  CSV file with a stable header, the ``run_table.csv`` shape.
"""

from __future__ import annotations

import csv
import dataclasses
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Union

PathLike = Union[str, Path]


def flat_row(report, *, derived: Sequence[str] = ()) -> Dict[str, object]:
    """One flat ``{column: value}`` row for a report dataclass.

    Columns are the dataclass fields in declaration order; ``derived`` names
    computed attributes/properties (e.g. ``records_per_second``) appended
    after the stored fields, so every report's rate/percentile metrics sit in
    the same place relative to its raw counters.
    """
    if not dataclasses.is_dataclass(report) or isinstance(report, type):
        raise TypeError(
            f"flat_row needs a report dataclass instance, got {type(report).__name__}"
        )
    row: Dict[str, object] = {
        field.name: getattr(report, field.name)
        for field in dataclasses.fields(report)
    }
    for name in derived:
        row[name] = getattr(report, name)
    return row


def write_csv(rows: Iterable[Dict[str, object]], path: PathLike) -> Path:
    """Write flat rows to one CSV file; return the path.

    The header is the union of the rows' columns in first-seen order, so a
    table can mix rows from harnesses that carry slightly different metric
    sets (missing cells are left empty).  This is the ``run_table.csv``
    writer of the load-testing harness.
    """
    rows = [dict(row) for row in rows]
    if not rows:
        raise ValueError("cannot write an empty run table")
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    target = Path(path)
    if target.parent != Path("."):
        target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=columns, restval="")
        writer.writeheader()
        writer.writerows(rows)
    return target
