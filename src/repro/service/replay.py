"""Scenario replay: stress the streaming service with catalogue workloads.

:func:`replay_scenario` materialises a registered scenario, fits (or
accepts) an annotator, and then replays the scenario's test traffic through
an :class:`~repro.service.service.AnnotationService` the way production
would see it: the records of *all* objects are interleaved in global
timestamp order and pushed one at a time into per-object
:class:`~repro.service.session.StreamSession` streams.  The returned
:class:`ReplayReport` carries the throughput and decode counters; with
``exact=True`` it also checks that everything the streams published equals
the batch ``annotate`` output, making the replay a correctness stress and
not just a load generator.

This is the service-layer entry of the scenario subsystem: the same named
workloads that drive the evaluation harness and ``python -m repro.bench
--scenario`` exercise the sliding-window decode path here.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from typing import Union

from repro.core.protocol import Annotator
from repro.mobility.dataset import train_test_split
from repro.mobility.records import PositioningRecord
from repro.scenarios import materialize
from repro.scenarios.spec import Scenario
from repro.service.reporting import flat_row
from repro.service.service import AnnotationService


@dataclass
class ReplayReport:
    """What one scenario replay did and how fast it went."""

    scenario: str
    seed: int
    objects: int
    records: int
    decodes: int
    published: int
    elapsed_seconds: float
    window: int
    exact: bool
    #: Only set for ``exact=True`` replays: streamed output == batch output.
    batch_agreement: Optional[bool] = None

    @property
    def records_per_second(self) -> float:
        return self.records / self.elapsed_seconds if self.elapsed_seconds > 0 else 0.0

    def row(self) -> Dict[str, object]:
        """A flat dict row for reports and benchmarks (see
        :func:`repro.service.reporting.flat_row` for the column rules the
        replay and loadgen artifacts share)."""
        return flat_row(self, derived=("records_per_second",))


def interleaved_records(sequences) -> List[Tuple[str, PositioningRecord]]:
    """All (object_id, record) pairs in global timestamp order.

    Ties break on object id so the replay order — and therefore every decode
    the sessions run — is deterministic.
    """
    feed: List[Tuple[float, str, PositioningRecord]] = []
    for labeled in sequences:
        for record in labeled.sequence:
            feed.append((record.timestamp, labeled.object_id, record))
    feed.sort(key=lambda item: (item[0], item[1]))
    return [(object_id, record) for _, object_id, record in feed]


def replay_scenario(
    scenario: Union[str, Scenario],
    *,
    annotator: Optional[Annotator] = None,
    seed: Optional[int] = None,
    window: int = AnnotationService.DEFAULT_WINDOW,
    guard: Optional[int] = None,
    exact: bool = False,
    train_fraction: float = 0.5,
    split_seed: int = 5,
    fit_config=None,
) -> Tuple[AnnotationService, ReplayReport]:
    """Replay a scenario's traffic through streaming sessions.

    ``scenario`` is either the name of a registered scenario or an
    already-materialised :class:`~repro.scenarios.spec.Scenario` (the fuzzer
    replays unregistered sampled specs this way; passing ``seed`` alongside
    a Scenario re-materialises its spec at that seed).  When ``annotator``
    is omitted, a fast C2MN is fitted on the train half of the materialised
    dataset; either way the *test* half is replayed.  Returns the service
    (store included, live queries ready) and the :class:`ReplayReport`.
    """
    if isinstance(scenario, Scenario):
        materialised = (
            scenario
            if seed is None or seed == scenario.seed
            else scenario.spec.materialize(seed)
        )
    else:
        materialised = materialize(scenario, seed)
    train, test = train_test_split(
        materialised.dataset, train_fraction=train_fraction, seed=split_seed
    )
    if annotator is None:
        from repro.core.annotator import C2MNAnnotator
        from repro.core.config import C2MNConfig

        config = fit_config if fit_config is not None else C2MNConfig.fast(
            max_iterations=3, mcmc_samples=6, lbfgs_iterations=4
        )
        annotator = C2MNAnnotator(materialised.space, config=config)
        annotator.fit(train.sequences)

    service = AnnotationService(annotator, window=window, guard=guard)
    feed = interleaved_records(test.sequences)

    sessions: Dict[str, object] = {}
    started = time.perf_counter()
    for object_id, record in feed:
        session = sessions.get(object_id)
        if session is None:
            session = service.session(object_id, exact=exact, keep_history=exact)
            sessions[object_id] = session
        session.add(record)
    decodes = sum(session.decode_count for session in sessions.values())
    service.finish_all()
    elapsed = time.perf_counter() - started

    published = sum(
        len(service.store.semantics_for(labeled.object_id))
        for labeled in test.sequences
    )

    batch_agreement: Optional[bool] = None
    if exact:
        batch = annotator.annotate_many(
            [labeled.sequence for labeled in test.sequences]
        )
        streamed = [
            service.store.semantics_for(labeled.object_id)
            for labeled in test.sequences
        ]
        batch_agreement = streamed == batch

    report = ReplayReport(
        scenario=materialised.name,
        seed=materialised.seed,
        objects=len(test.sequences),
        records=len(feed),
        decodes=decodes,
        published=published,
        elapsed_seconds=elapsed,
        window=window,
        exact=exact,
        batch_agreement=batch_agreement,
    )
    return service, report
