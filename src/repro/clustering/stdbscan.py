"""ST-DBSCAN: density-based clustering of spatio-temporal positioning records.

The paper (Section III-B, feature ``fem``) uses ST-DBSCAN [3] to classify each
positioning record as a *core*, *border* or *noise* point with respect to a
spatio-temporal density criterion:

    "A cluster is formed only if it contains at least ``ptm`` data instances
    and any two instances in it are within the spatial distance ``εs`` and
    temporal distance ``εt`` from each other."

Records clustered as core/border points indicate a *stay*; noise points
indicate a *pass*.  The same clustering also initialises the event variable E
in the alternate learning algorithm (Algorithm 1) and drives the ``DC`` part
of the HMM+DC baseline.

This implementation follows the classic DBSCAN expansion procedure with the
neighbourhood predicate replaced by the conjunction of the spatial and
temporal thresholds.  Only planar distance is used for the spatial part —
false floor values should not break stay detection, exactly as in the paper's
setting where clustering is applied to the raw uncertain records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.mobility.records import PositioningRecord, PositioningSequence

DENSITY_CORE = "core"
DENSITY_BORDER = "border"
DENSITY_NOISE = "noise"

_UNVISITED = -2
_NOISE = -1


@dataclass
class STDBSCANResult:
    """Clustering output aligned with the input record order."""

    cluster_ids: List[int]
    density_labels: List[str]

    @property
    def n_clusters(self) -> int:
        return len({c for c in self.cluster_ids if c >= 0})

    def records_in_cluster(self, cluster_id: int) -> List[int]:
        """Return the record indexes assigned to ``cluster_id``."""
        return [i for i, c in enumerate(self.cluster_ids) if c == cluster_id]


class STDBSCAN:
    """Spatio-temporal DBSCAN over positioning records.

    Parameters
    ----------
    eps_spatial:
        Spatial distance threshold ``εs`` in meters (paper: 8 m for the mall).
    eps_temporal:
        Temporal distance threshold ``εt`` in seconds (paper: 60 s).
    min_points:
        Minimum number of points ``ptm`` to form a dense neighbourhood
        (paper: 4).  The point itself counts towards the threshold, as in the
        original DBSCAN formulation.
    """

    def __init__(self, eps_spatial: float = 8.0, eps_temporal: float = 60.0, min_points: int = 4):
        if eps_spatial <= 0 or eps_temporal <= 0:
            raise ValueError("eps thresholds must be positive")
        if min_points < 1:
            raise ValueError("min_points must be at least 1")
        self.eps_spatial = eps_spatial
        self.eps_temporal = eps_temporal
        self.min_points = min_points

    # ------------------------------------------------------------------- API
    def fit(self, sequence: Sequence[PositioningRecord] | PositioningSequence) -> STDBSCANResult:
        """Cluster the records and classify each as core/border/noise."""
        records = list(sequence)
        n = len(records)
        cluster_ids = [_UNVISITED] * n
        is_core = [False] * n
        neighbourhoods: Dict[int, List[int]] = {}

        def neighbours_of(index: int) -> List[int]:
            cached = neighbourhoods.get(index)
            if cached is None:
                cached = self._region_query(records, index)
                neighbourhoods[index] = cached
            return cached

        next_cluster = 0
        for index in range(n):
            if cluster_ids[index] != _UNVISITED:
                continue
            neighbours = neighbours_of(index)
            if len(neighbours) < self.min_points:
                cluster_ids[index] = _NOISE
                continue
            # Start a new cluster and expand it.
            is_core[index] = True
            cluster_ids[index] = next_cluster
            frontier = [j for j in neighbours if j != index]
            position = 0
            while position < len(frontier):
                j = frontier[position]
                position += 1
                if cluster_ids[j] == _NOISE:
                    cluster_ids[j] = next_cluster  # border point reached from a core
                if cluster_ids[j] != _UNVISITED:
                    continue
                cluster_ids[j] = next_cluster
                j_neighbours = neighbours_of(j)
                if len(j_neighbours) >= self.min_points:
                    is_core[j] = True
                    frontier.extend(k for k in j_neighbours if cluster_ids[k] in (_UNVISITED, _NOISE))
            next_cluster += 1

        density_labels = []
        for index in range(n):
            if cluster_ids[index] == _NOISE or cluster_ids[index] == _UNVISITED:
                cluster_ids[index] = _NOISE
                density_labels.append(DENSITY_NOISE)
            elif is_core[index]:
                density_labels.append(DENSITY_CORE)
            else:
                density_labels.append(DENSITY_BORDER)
        return STDBSCANResult(cluster_ids=cluster_ids, density_labels=density_labels)

    def density_labels(
        self, sequence: Sequence[PositioningRecord] | PositioningSequence
    ) -> List[str]:
        """Convenience wrapper returning only the core/border/noise labels."""
        return self.fit(sequence).density_labels

    # ------------------------------------------------------------- internals
    def _region_query(self, records: List[PositioningRecord], index: int) -> List[int]:
        """Return the indexes within both εs and εt of record ``index`` (inclusive)."""
        center = records[index]
        neighbours: List[int] = []
        for j, other in enumerate(records):
            if abs(other.timestamp - center.timestamp) > self.eps_temporal:
                continue
            if center.planar_distance_to(other) > self.eps_spatial:
                continue
            neighbours.append(j)
        return neighbours
