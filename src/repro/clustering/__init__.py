"""Spatio-temporal clustering used by the event features and baselines."""

from repro.clustering.stdbscan import (
    DENSITY_BORDER,
    DENSITY_CORE,
    DENSITY_NOISE,
    STDBSCAN,
    STDBSCANResult,
)

__all__ = [
    "DENSITY_BORDER",
    "DENSITY_CORE",
    "DENSITY_NOISE",
    "STDBSCAN",
    "STDBSCANResult",
]
