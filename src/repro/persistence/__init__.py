"""Persistence: JSON import/export of datasets, annotations and model weights.

A downstream user needs to move data in and out of the library: load their own
positioning logs, store annotated m-semantics for later analytics, and save a
trained model's weights so annotation can run without re-training.  All
formats are plain JSON so they are diff-able and language-neutral.

Every save path goes through :func:`atomic_write_text` (temp file +
``os.replace``), so a crash mid-write never destroys the previous good file.
"""

from repro.persistence.atomic import atomic_write_text
from repro.persistence.serializers import (
    annotator_from_dict,
    annotator_to_dict,
    labeled_sequence_from_dict,
    labeled_sequence_to_dict,
    load_annotator,
    load_dataset,
    load_model_weights,
    load_semantics,
    save_annotator,
    save_dataset,
    save_model_weights,
    save_semantics,
    semantics_from_dicts,
    semantics_to_dicts,
)

__all__ = [
    "atomic_write_text",
    "annotator_from_dict",
    "annotator_to_dict",
    "labeled_sequence_from_dict",
    "labeled_sequence_to_dict",
    "load_annotator",
    "load_dataset",
    "load_model_weights",
    "load_semantics",
    "save_annotator",
    "save_dataset",
    "save_model_weights",
    "save_semantics",
    "semantics_from_dicts",
    "semantics_to_dicts",
]
