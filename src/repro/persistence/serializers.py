"""JSON (de)serialisation of labeled sequences, m-semantics and model weights.

The on-disk formats are intentionally simple:

* **Labeled sequence** — ``{"object_id", "records": [{"x","y","floor","t"}...],
  "regions": [...], "events": [...]}``; the label lists are optional so the
  same format also carries unlabeled p-sequences.
* **Dataset** — ``{"name", "sequences": [<labeled sequence>...]}`` (the indoor
  space is code, not data — datasets reference it implicitly).
* **M-semantics** — a list of ``{"region", "start", "end", "event", "records"}``.
* **Model weights** — ``{"weights": [...12 floats...], "config": {...}}`` where
  the config dict records the hyper-parameters the weights were trained with.
* **Annotator** — the model-weights payload plus ``"name"`` and a format tag;
  see :func:`annotator_to_dict` / :func:`annotator_from_dict`.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.config import C2MNConfig
from repro.persistence.atomic import atomic_write_text
from repro.geometry.point import IndoorPoint
from repro.indoor.floorplan import IndoorSpace
from repro.mobility.dataset import AnnotationDataset
from repro.mobility.records import (
    LabeledSequence,
    MSemantics,
    PositioningRecord,
    PositioningSequence,
)

PathLike = Union[str, Path]


# ------------------------------------------------------------------ sequences
def labeled_sequence_to_dict(labeled: LabeledSequence) -> Dict:
    """Convert a labeled sequence into a JSON-serialisable dict."""
    return {
        "object_id": labeled.object_id,
        "records": [
            {"x": record.x, "y": record.y, "floor": record.floor, "t": record.timestamp}
            for record in labeled.sequence
        ],
        "regions": list(labeled.region_labels),
        "events": list(labeled.event_labels),
    }


def labeled_sequence_from_dict(payload: Dict) -> LabeledSequence:
    """Rebuild a labeled sequence from :func:`labeled_sequence_to_dict` output."""
    records = [
        PositioningRecord(
            location=IndoorPoint(entry["x"], entry["y"], int(entry.get("floor", 0))),
            timestamp=float(entry["t"]),
        )
        for entry in payload["records"]
    ]
    sequence = PositioningSequence(
        records, object_id=payload.get("object_id", "object"), sort=False
    )
    return LabeledSequence(
        sequence=sequence,
        region_labels=[int(region) for region in payload["regions"]],
        event_labels=list(payload["events"]),
        object_id=payload.get("object_id"),
    )


def save_dataset(dataset: AnnotationDataset, path: PathLike) -> None:
    """Write a dataset's sequences (not its indoor space) to a JSON file."""
    payload = {
        "name": dataset.name,
        "sequences": [labeled_sequence_to_dict(labeled) for labeled in dataset.sequences],
    }
    atomic_write_text(path, json.dumps(payload))


def load_dataset(path: PathLike, space: IndoorSpace) -> AnnotationDataset:
    """Read a dataset written by :func:`save_dataset`, attaching it to ``space``."""
    payload = json.loads(Path(path).read_text())
    sequences = [labeled_sequence_from_dict(entry) for entry in payload["sequences"]]
    return AnnotationDataset(
        space=space, sequences=sequences, name=payload.get("name", "dataset")
    )


# ----------------------------------------------------------------- m-semantics
def semantics_to_dicts(semantics: Sequence[MSemantics]) -> List[Dict]:
    """Convert an m-semantics sequence to a list of plain dicts."""
    return [
        {
            "region": ms.region_id,
            "start": ms.start_time,
            "end": ms.end_time,
            "event": ms.event,
            "records": ms.record_count,
        }
        for ms in semantics
    ]


def semantics_from_dicts(payload: Sequence[Dict]) -> List[MSemantics]:
    """Rebuild an m-semantics sequence from :func:`semantics_to_dicts` output."""
    return [
        MSemantics(
            region_id=int(entry["region"]),
            start_time=float(entry["start"]),
            end_time=float(entry["end"]),
            event=entry["event"],
            record_count=int(entry.get("records", 1)),
        )
        for entry in payload
    ]


def save_semantics(semantics: Sequence[MSemantics], path: PathLike) -> None:
    """Write one object's annotated m-semantics to a JSON file."""
    atomic_write_text(path, json.dumps(semantics_to_dicts(semantics)))


def load_semantics(path: PathLike) -> List[MSemantics]:
    """Read m-semantics written by :func:`save_semantics`."""
    return semantics_from_dicts(json.loads(Path(path).read_text()))


# ----------------------------------------------------------------- annotators
def annotator_to_dict(annotator) -> Dict:
    """Convert a trained C2MN-family annotator into a JSON-serialisable dict.

    The payload is a superset of the model-weights format — ``weights`` and
    ``config`` mean the same thing, plus the annotator's ``name`` — so a file
    written from it also loads with :func:`load_model_weights`.

    Only C2MN-family annotators carry persistable weights; the baselines are
    parameter-light and are refit instead of serialised.
    """
    if getattr(annotator, "weights", None) is None:
        raise TypeError(
            f"cannot persist {annotator.name!r}: only C2MN-family annotators "
            "carry weights — baselines are parameter-light, refit them instead"
        )
    return {
        "format": "repro.annotator/1",
        "name": annotator.name,
        "weights": [float(value) for value in np.asarray(annotator.weights).ravel()],
        "config": dataclasses.asdict(annotator.config),
    }


def annotator_from_dict(payload: Dict, space: IndoorSpace, *, oracle=None, annotator_cls=None):
    """Rebuild a trained annotator from :func:`annotator_to_dict` output.

    The indoor space is code, not data, so the caller supplies it.  The
    stored config (including the structure flags that define the C2MN
    variants) reconstructs the model exactly; the stored weights are
    installed verbatim, so the loaded annotator decodes bitwise-identically
    to the saved one.
    """
    if annotator_cls is None:
        from repro.core.annotator import C2MNAnnotator as annotator_cls
    config_payload = payload.get("config")
    config = C2MNConfig(**config_payload) if config_payload else None
    annotator = annotator_cls(
        space, config=config, oracle=oracle, name=payload.get("name", "C2MN")
    )
    annotator._restore_weights(np.asarray(payload["weights"], dtype=float))
    return annotator


def save_annotator(annotator, path: PathLike) -> None:
    """Write a trained annotator (weights + config + name) to a JSON file."""
    atomic_write_text(path, json.dumps(annotator_to_dict(annotator)))


def load_annotator(path: PathLike, space: IndoorSpace, *, oracle=None, annotator_cls=None):
    """Read an annotator written by :func:`save_annotator`."""
    payload = json.loads(Path(path).read_text())
    return annotator_from_dict(
        payload, space, oracle=oracle, annotator_cls=annotator_cls
    )


# --------------------------------------------------------------- model weights
def save_model_weights(
    weights: np.ndarray, path: PathLike, *, config: Optional[C2MNConfig] = None
) -> None:
    """Write trained template weights (and optionally their config) to JSON."""
    payload: Dict = {"weights": [float(value) for value in np.asarray(weights).ravel()]}
    if config is not None:
        payload["config"] = dataclasses.asdict(config)
    atomic_write_text(path, json.dumps(payload))


def load_model_weights(path: PathLike) -> tuple[np.ndarray, Optional[C2MNConfig]]:
    """Read weights written by :func:`save_model_weights`.

    Returns the weight vector and the stored configuration (or None when the
    file carries no config).
    """
    payload = json.loads(Path(path).read_text())
    weights = np.asarray(payload["weights"], dtype=float)
    config_payload = payload.get("config")
    config = C2MNConfig(**config_payload) if config_payload else None
    return weights, config
