"""Crash-safe file replacement: write to a temp file, then ``os.replace``.

Every JSON artifact this repository persists (stores, services, annotators,
datasets, WAL snapshots) used to be written with a bare ``Path.write_text``,
which truncates the target before writing — a crash mid-write leaves a
corrupt file *and* has already destroyed the previous good one.
:func:`atomic_write_text` closes that window: the bytes land in a uniquely
named temp file in the same directory (same filesystem, so the final rename
cannot cross devices) and the target is swapped in with ``os.replace``,
which POSIX guarantees is atomic.  A reader therefore always observes
either the complete old content or the complete new content, never a torn
mix, and a crash at any point leaves the previous file untouched.

``fsync=True`` additionally flushes the temp file to stable storage before
the rename — the durability mode the snapshot writer of
:mod:`repro.store.wal` uses, where "the snapshot exists" must survive power
loss, not just process death.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Union

PathLike = Union[str, Path]

__all__ = ["atomic_write_text"]


def atomic_write_text(
    path: PathLike, text: str, *, fsync: bool = False, encoding: str = "utf-8"
) -> Path:
    """Atomically replace ``path`` with ``text``; return the target path.

    The previous file (if any) survives every failure mode: an exception
    while writing, a crash before the rename, or a crash during the rename
    (``os.replace`` is all-or-nothing).  The temp file is unlinked on
    failure so aborted writes do not litter the directory.
    """
    target = Path(path)
    handle, tmp_name = tempfile.mkstemp(
        dir=target.parent, prefix=f".{target.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(handle, "w", encoding=encoding) as tmp:
            tmp.write(text)
            if fsync:
                tmp.flush()
                os.fsync(tmp.fileno())
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:  # pragma: no cover - best-effort cleanup
            pass
        raise
    return target
