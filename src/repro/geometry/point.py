"""Planar and indoor (floor-aware) points.

Indoor positioning systems report a location as a triplet ``(x, y, floor)``
(Section II-A of the paper).  :class:`Point` models the planar part and
:class:`IndoorPoint` adds the floor number.  Both are immutable value objects
so they can be used as dictionary keys and members of sets.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Tuple


@dataclass(frozen=True, order=True)
class Point:
    """An immutable 2D point with float coordinates."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Return the Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def squared_distance_to(self, other: "Point") -> float:
        """Return the squared Euclidean distance to ``other``."""
        dx = self.x - other.x
        dy = self.y - other.y
        return dx * dx + dy * dy

    def translate(self, dx: float, dy: float) -> "Point":
        """Return a new point offset by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def midpoint(self, other: "Point") -> "Point":
        """Return the midpoint between this point and ``other``."""
        return Point((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)

    def as_tuple(self) -> Tuple[float, float]:
        """Return ``(x, y)``."""
        return (self.x, self.y)

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y


@dataclass(frozen=True, order=True)
class IndoorPoint:
    """A 2D point annotated with the floor it lies on.

    The floor is an integer index; floor 0 is the ground floor.  Distances
    between points on different floors are not defined at this level — the
    topology layer (:mod:`repro.indoor.distance`) accounts for staircase
    travel when computing the minimum indoor walking distance.
    """

    x: float
    y: float
    floor: int = 0

    @property
    def planar(self) -> Point:
        """Return the planar projection (drops the floor)."""
        return Point(self.x, self.y)

    def distance_to(self, other: "IndoorPoint") -> float:
        """Return the planar Euclidean distance, ignoring floor changes.

        Raises
        ------
        ValueError
            If the two points are on different floors; callers that need a
            cross-floor distance should use the topology layer instead.
        """
        if self.floor != other.floor:
            raise ValueError(
                f"planar distance undefined across floors {self.floor} and {other.floor}"
            )
        return math.hypot(self.x - other.x, self.y - other.y)

    def planar_distance_to(self, other: "IndoorPoint") -> float:
        """Return the planar Euclidean distance even across floors.

        This is the distance used by the event consistency feature ``fec``
        which only cares about apparent speed between consecutive reports.
        """
        return math.hypot(self.x - other.x, self.y - other.y)

    def as_tuple(self) -> Tuple[float, float, int]:
        """Return ``(x, y, floor)``."""
        return (self.x, self.y, self.floor)

    def with_floor(self, floor: int) -> "IndoorPoint":
        """Return a copy of this point on a different floor."""
        return IndoorPoint(self.x, self.y, floor)

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y
        yield self.floor


def euclidean(a: Iterable[float], b: Iterable[float]) -> float:
    """Euclidean distance between two equal-length coordinate iterables."""
    return math.sqrt(squared_euclidean(a, b))


def squared_euclidean(a: Iterable[float], b: Iterable[float]) -> float:
    """Squared Euclidean distance between two coordinate iterables."""
    total = 0.0
    for ai, bi in zip(a, b):
        diff = ai - bi
        total += diff * diff
    return total


def centroid_of(points: Iterable[Point]) -> Point:
    """Return the centroid (mean position) of a non-empty point collection."""
    xs = []
    ys = []
    for point in points:
        xs.append(point.x)
        ys.append(point.y)
    if not xs:
        raise ValueError("centroid_of requires at least one point")
    return Point(sum(xs) / len(xs), sum(ys) / len(ys))
