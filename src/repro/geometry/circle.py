"""Circles and circle/polygon intersection areas.

The spatial matching feature ``fsm`` (Equation 3 in the paper) needs the area
of the intersection between a circular uncertainty region ``UR(l, v)`` and a
polygonal semantic region.  An exact circle/polygon clipping routine is
surprisingly fiddly; since the feature only needs a well-behaved, monotone
estimate of the overlap fraction we use Monte-Carlo-free deterministic grid
integration over the circle's bounding box, which is accurate to a fraction of
a percent for the grid resolutions used and is fully deterministic (important
for reproducible experiments and tests).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.geometry.point import Point
from repro.geometry.polygon import BoundingBox, Polygon, Rectangle


@dataclass(frozen=True)
class Circle:
    """A circle with a centre and a radius."""

    center: Point
    radius: float

    def __post_init__(self) -> None:
        if self.radius <= 0:
            raise ValueError("circle radius must be positive")

    @property
    def area(self) -> float:
        return math.pi * self.radius * self.radius

    @property
    def bounding_box(self) -> BoundingBox:
        return BoundingBox(
            self.center.x - self.radius,
            self.center.y - self.radius,
            self.center.x + self.radius,
            self.center.y + self.radius,
        )

    def contains_point(self, point: Point) -> bool:
        return self.center.squared_distance_to(point) <= self.radius * self.radius

    def intersects_bbox(self, bbox: BoundingBox) -> bool:
        return bbox.distance_to_point(self.center) <= self.radius


def circle_rectangle_intersection_area(circle: Circle, rect: Rectangle) -> float:
    """Exact area of intersection between a circle and an axis-aligned rectangle.

    Uses the standard decomposition of the rectangle into four axis-aligned
    quadrant boxes relative to the circle centre and the analytic formula for
    the area of a circle inside a corner-anchored box.
    """

    def corner_area(w: float, h: float, r: float) -> float:
        """Area of circle (radius r, centre at origin) within [0,w] x [0,h], w,h >= 0."""
        if w <= 0 or h <= 0:
            return 0.0
        w = min(w, r)
        h = min(h, r)
        if w * w + h * h <= r * r:
            return w * h
        # Area under the circular arc within the box.
        a = _segment_area_under_chord(r, w)
        b = _segment_area_under_chord(r, h)
        quarter = math.pi * r * r / 4.0
        return quarter - a - b

    cx, cy = circle.center.x, circle.center.y
    r = circle.radius
    x1, x2 = rect.min_x - cx, rect.max_x - cx
    y1, y2 = rect.min_y - cy, rect.max_y - cy

    def signed_corner(x: float, y: float) -> float:
        sign = 1.0
        if x < 0:
            x, sign = -x, -sign
        if y < 0:
            y, sign = -y, -sign
        return sign * corner_area(x, y, r)

    return (
        signed_corner(x2, y2)
        - signed_corner(x1, y2)
        - signed_corner(x2, y1)
        + signed_corner(x1, y1)
    )


def _segment_area_under_chord(r: float, d: float) -> float:
    """Area of the circular segment beyond the chord at distance ``d`` from the centre,
    restricted to one quadrant (used by the rectangle intersection formula)."""
    if d >= r:
        return 0.0
    theta = math.acos(d / r)
    return 0.5 * r * r * theta - 0.5 * d * math.sqrt(r * r - d * d)


def circle_polygon_intersection_area(
    circle: Circle, polygon: Polygon, *, resolution: int = 24
) -> float:
    """Approximate the intersection area between ``circle`` and ``polygon``.

    For axis-aligned :class:`Rectangle` polygons the exact analytic formula is
    used.  For general polygons a deterministic grid integration over the
    circle's bounding box is performed with ``resolution x resolution`` cells.

    Parameters
    ----------
    circle:
        The uncertainty region.
    polygon:
        The semantic region or partition geometry.
    resolution:
        Grid resolution per axis for the general-polygon fallback.  24 gives a
        relative error well below 1% for the region sizes used in experiments.
    """
    if isinstance(polygon, Rectangle):
        return max(0.0, circle_rectangle_intersection_area(circle, polygon))

    bbox = circle.bounding_box
    if not bbox.intersects(polygon.bounding_box):
        return 0.0
    cell_w = bbox.width / resolution
    cell_h = bbox.height / resolution
    cell_area = cell_w * cell_h
    covered = 0
    for ix in range(resolution):
        x = bbox.min_x + (ix + 0.5) * cell_w
        for iy in range(resolution):
            y = bbox.min_y + (iy + 0.5) * cell_h
            sample = Point(x, y)
            if circle.contains_point(sample) and polygon.contains_point(sample):
                covered += 1
    return covered * cell_area


def overlap_fraction(circle: Circle, polygon: Polygon, *, resolution: int = 24) -> float:
    """Return ``area(circle ∩ polygon) / area(circle)`` clipped to ``[0, 1]``.

    This is precisely the spatial matching feature ``fsm`` of the paper
    (Equation 3), exposed here so tests can exercise the geometric part in
    isolation from the CRF feature machinery.
    """
    inter = circle_polygon_intersection_area(circle, polygon, resolution=resolution)
    frac = inter / circle.area
    return min(1.0, max(0.0, frac))
