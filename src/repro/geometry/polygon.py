"""Polygons, rectangles and bounding boxes.

Indoor partitions and semantic regions are modelled as simple (non
self-intersecting) polygons.  The floorplan builders in
:mod:`repro.indoor.builders` only produce axis-aligned rectangles, but the
feature functions and the spatial index work with arbitrary convex or concave
simple polygons, so user-provided floorplans are not restricted to grids.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.geometry.point import Point


@dataclass(frozen=True)
class BoundingBox:
    """An axis-aligned bounding box ``[min_x, max_x] x [min_y, max_y]``."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.min_x > self.max_x or self.min_y > self.max_y:
            raise ValueError(f"degenerate bounding box: {self}")

    @property
    def width(self) -> float:
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        return self.max_y - self.min_y

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Point:
        return Point((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)

    def contains_point(self, point: Point) -> bool:
        """Return True if ``point`` lies inside or on the boundary."""
        return (
            self.min_x <= point.x <= self.max_x
            and self.min_y <= point.y <= self.max_y
        )

    def intersects(self, other: "BoundingBox") -> bool:
        """Return True if the two boxes overlap (boundaries touching counts)."""
        return not (
            self.max_x < other.min_x
            or other.max_x < self.min_x
            or self.max_y < other.min_y
            or other.max_y < self.min_y
        )

    def union(self, other: "BoundingBox") -> "BoundingBox":
        """Return the smallest box containing both boxes."""
        return BoundingBox(
            min(self.min_x, other.min_x),
            min(self.min_y, other.min_y),
            max(self.max_x, other.max_x),
            max(self.max_y, other.max_y),
        )

    def expanded(self, margin: float) -> "BoundingBox":
        """Return a box grown by ``margin`` on every side."""
        return BoundingBox(
            self.min_x - margin,
            self.min_y - margin,
            self.max_x + margin,
            self.max_y + margin,
        )

    def enlargement(self, other: "BoundingBox") -> float:
        """Area increase needed to also cover ``other`` (R-tree heuristic)."""
        return self.union(other).area - self.area

    def distance_to_point(self, point: Point) -> float:
        """Minimum Euclidean distance from the box to ``point`` (0 if inside)."""
        dx = max(self.min_x - point.x, 0.0, point.x - self.max_x)
        dy = max(self.min_y - point.y, 0.0, point.y - self.max_y)
        return math.hypot(dx, dy)


class Polygon:
    """A simple polygon defined by an ordered list of vertices.

    Vertices may be given in either orientation; areas are always reported as
    positive values.  The polygon is closed implicitly (the last vertex
    connects back to the first).
    """

    def __init__(self, vertices: Sequence[Point]):
        if len(vertices) < 3:
            raise ValueError("a polygon needs at least three vertices")
        self._vertices: Tuple[Point, ...] = tuple(vertices)
        self._bbox = BoundingBox(
            min(p.x for p in vertices),
            min(p.y for p in vertices),
            max(p.x for p in vertices),
            max(p.y for p in vertices),
        )

    @property
    def vertices(self) -> Tuple[Point, ...]:
        return self._vertices

    @property
    def bounding_box(self) -> BoundingBox:
        return self._bbox

    @property
    def area(self) -> float:
        """Return the (positive) area via the shoelace formula."""
        total = 0.0
        verts = self._vertices
        n = len(verts)
        for i in range(n):
            a = verts[i]
            b = verts[(i + 1) % n]
            total += a.x * b.y - b.x * a.y
        return abs(total) / 2.0

    @property
    def centroid(self) -> Point:
        """Return the area centroid; falls back to vertex mean for degenerate polygons."""
        verts = self._vertices
        n = len(verts)
        signed_area = 0.0
        cx = 0.0
        cy = 0.0
        for i in range(n):
            a = verts[i]
            b = verts[(i + 1) % n]
            cross = a.x * b.y - b.x * a.y
            signed_area += cross
            cx += (a.x + b.x) * cross
            cy += (a.y + b.y) * cross
        if abs(signed_area) < 1e-12:
            return Point(
                sum(p.x for p in verts) / n,
                sum(p.y for p in verts) / n,
            )
        signed_area *= 0.5
        return Point(cx / (6.0 * signed_area), cy / (6.0 * signed_area))

    def contains_point(self, point: Point, *, include_boundary: bool = True) -> bool:
        """Ray-casting point-in-polygon test."""
        if not self._bbox.contains_point(point):
            return False
        if include_boundary and self._point_on_boundary(point):
            return True
        inside = False
        verts = self._vertices
        n = len(verts)
        j = n - 1
        for i in range(n):
            pi, pj = verts[i], verts[j]
            intersects = (pi.y > point.y) != (pj.y > point.y)
            if intersects:
                x_cross = (pj.x - pi.x) * (point.y - pi.y) / (pj.y - pi.y) + pi.x
                if point.x < x_cross:
                    inside = not inside
            j = i
        return inside

    def _point_on_boundary(self, point: Point, tol: float = 1e-9) -> bool:
        verts = self._vertices
        n = len(verts)
        for i in range(n):
            a = verts[i]
            b = verts[(i + 1) % n]
            if _point_on_segment(point, a, b, tol):
                return True
        return False

    def edges(self) -> List[Tuple[Point, Point]]:
        """Return the list of directed edges ``(v_i, v_{i+1})``."""
        verts = self._vertices
        n = len(verts)
        return [(verts[i], verts[(i + 1) % n]) for i in range(n)]

    def distance_to_point(self, point: Point) -> float:
        """Euclidean distance from ``point`` to the polygon (0 if inside)."""
        if self.contains_point(point):
            return 0.0
        return min(_point_segment_distance(point, a, b) for a, b in self.edges())

    def closest_point_to(self, point: Point) -> Point:
        """Return the polygon point closest to ``point`` (itself if inside)."""
        if self.contains_point(point):
            return point
        best: Point | None = None
        best_dist = math.inf
        for a, b in self.edges():
            candidate = _project_on_segment(point, a, b)
            dist = candidate.distance_to(point)
            if dist < best_dist:
                best = candidate
                best_dist = dist
        assert best is not None
        return best

    def sample_grid_points(self, per_side: int = 3) -> List[Point]:
        """Return interior sample points on a regular grid.

        Used to approximate the expected point-to-point distance between two
        regions in the space transition feature ``fst``.  Points that fall
        outside the polygon (for concave shapes) are skipped; the centroid is
        always included as a fallback so the result is never empty.
        """
        bbox = self._bbox
        samples: List[Point] = []
        if per_side >= 1:
            for ix in range(per_side):
                for iy in range(per_side):
                    x = bbox.min_x + (ix + 0.5) * bbox.width / per_side
                    y = bbox.min_y + (iy + 0.5) * bbox.height / per_side
                    candidate = Point(x, y)
                    if self.contains_point(candidate):
                        samples.append(candidate)
        if not samples:
            samples.append(self.centroid)
        return samples

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Polygon({len(self._vertices)} vertices, area={self.area:.2f})"


class Rectangle(Polygon):
    """An axis-aligned rectangle, the common case for indoor partitions."""

    def __init__(self, min_x: float, min_y: float, max_x: float, max_y: float):
        if min_x >= max_x or min_y >= max_y:
            raise ValueError("rectangle must have positive width and height")
        super().__init__(
            [
                Point(min_x, min_y),
                Point(max_x, min_y),
                Point(max_x, max_y),
                Point(min_x, max_y),
            ]
        )
        self.min_x = min_x
        self.min_y = min_y
        self.max_x = max_x
        self.max_y = max_y

    @property
    def width(self) -> float:
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        return self.max_y - self.min_y

    def contains_point(self, point: Point, *, include_boundary: bool = True) -> bool:
        if include_boundary:
            return (
                self.min_x <= point.x <= self.max_x
                and self.min_y <= point.y <= self.max_y
            )
        return self.min_x < point.x < self.max_x and self.min_y < point.y < self.max_y

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Rectangle(({self.min_x}, {self.min_y}) .. ({self.max_x}, {self.max_y}))"
        )


def _point_on_segment(p: Point, a: Point, b: Point, tol: float) -> bool:
    cross = (b.x - a.x) * (p.y - a.y) - (b.y - a.y) * (p.x - a.x)
    if abs(cross) > tol:
        return False
    dot = (p.x - a.x) * (b.x - a.x) + (p.y - a.y) * (b.y - a.y)
    if dot < -tol:
        return False
    squared_len = (b.x - a.x) ** 2 + (b.y - a.y) ** 2
    return dot <= squared_len + tol


def _project_on_segment(p: Point, a: Point, b: Point) -> Point:
    """Return the point on segment ``ab`` closest to ``p``."""
    ax, ay = a.x, a.y
    bx, by = b.x, b.y
    dx, dy = bx - ax, by - ay
    length_sq = dx * dx + dy * dy
    if length_sq == 0.0:
        return a
    t = ((p.x - ax) * dx + (p.y - ay) * dy) / length_sq
    t = max(0.0, min(1.0, t))
    return Point(ax + t * dx, ay + t * dy)


def _point_segment_distance(p: Point, a: Point, b: Point) -> float:
    return p.distance_to(_project_on_segment(p, a, b))
