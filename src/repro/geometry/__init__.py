"""Geometric primitives used by the indoor-space substrate.

The paper's feature functions need a handful of planar-geometry operations:

* Euclidean distances between observed locations (:mod:`repro.geometry.point`).
* Polygonal indoor partitions and semantic regions with area, centroid,
  containment and clipping operations (:mod:`repro.geometry.polygon`).
* The intersection area between a circular *uncertainty region* and a
  polygonal semantic region, used by the spatial matching feature ``fsm``
  (:mod:`repro.geometry.circle`).
* A lightweight R-tree for indexing partitions and semantic regions so that
  candidate regions for a location estimate can be retrieved without a linear
  scan (:mod:`repro.geometry.rtree`).

Everything is implemented with plain Python and numpy; there is no dependency
on shapely or libspatialindex so the package runs in a fully offline
environment.
"""

from repro.geometry.point import Point, IndoorPoint, euclidean, squared_euclidean
from repro.geometry.polygon import BoundingBox, Polygon, Rectangle
from repro.geometry.circle import Circle, circle_polygon_intersection_area
from repro.geometry.rtree import RTree, RTreeEntry

__all__ = [
    "Point",
    "IndoorPoint",
    "euclidean",
    "squared_euclidean",
    "BoundingBox",
    "Polygon",
    "Rectangle",
    "Circle",
    "circle_polygon_intersection_area",
    "RTree",
    "RTreeEntry",
]
