"""A small in-memory R-tree for indexing indoor partitions and regions.

The paper keeps "an R-tree to index all partitions and their corresponding
semantic regions" (Section V-B1) so feature extraction can quickly find the
candidate regions around a location estimate.  This is a classic quadratic
split R-tree; it supports bounding-box queries, point queries and
nearest-neighbour search, which is all the annotation pipeline needs.

The implementation favours clarity over raw speed: floorplans have a few
thousand partitions at most, and queries are dominated by the CRF inference
anyway.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Iterable, List, Optional, Sequence, Tuple

from repro.geometry.point import Point
from repro.geometry.polygon import BoundingBox


@dataclass
class RTreeEntry:
    """A leaf entry: a bounding box plus an arbitrary payload object."""

    bbox: BoundingBox
    payload: Any


@dataclass
class _Node:
    is_leaf: bool
    entries: List[Any] = field(default_factory=list)  # RTreeEntry or _Node
    bbox: Optional[BoundingBox] = None

    def recompute_bbox(self) -> None:
        boxes = [
            entry.bbox for entry in self.entries if entry.bbox is not None
        ]
        if not boxes:
            self.bbox = None
            return
        box = boxes[0]
        for other in boxes[1:]:
            box = box.union(other)
        self.bbox = box


class RTree:
    """A quadratic-split R-tree over :class:`RTreeEntry` items."""

    def __init__(self, max_entries: int = 8, min_entries: int | None = None):
        if max_entries < 4:
            raise ValueError("max_entries must be at least 4")
        self._max_entries = max_entries
        self._min_entries = min_entries or max(2, max_entries // 2)
        self._root = _Node(is_leaf=True)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def root_bbox(self) -> Optional[BoundingBox]:
        return self._root.bbox

    # ------------------------------------------------------------------ build
    def insert(self, bbox: BoundingBox, payload: Any) -> None:
        """Insert one entry."""
        entry = RTreeEntry(bbox, payload)
        leaf = self._choose_leaf(self._root, entry)
        leaf.entries.append(entry)
        self._adjust(leaf, entry.bbox)
        if len(leaf.entries) > self._max_entries:
            self._split_and_propagate(leaf)
        self._size += 1

    def bulk_load(self, entries: Iterable[Tuple[BoundingBox, Any]]) -> None:
        """Insert many entries (simple repeated insertion)."""
        for bbox, payload in entries:
            self.insert(bbox, payload)

    # ---------------------------------------------------------------- queries
    def query_bbox(self, bbox: BoundingBox) -> List[Any]:
        """Return payloads whose bounding boxes intersect ``bbox``."""
        results: List[Any] = []
        self._search(self._root, bbox, results)
        return results

    def query_point(self, point: Point, *, margin: float = 0.0) -> List[Any]:
        """Return payloads whose boxes contain ``point`` (optionally expanded)."""
        probe = BoundingBox(point.x, point.y, point.x, point.y)
        if margin > 0.0:
            probe = probe.expanded(margin)
        return self.query_bbox(probe)

    def nearest(self, point: Point, k: int = 1) -> List[Any]:
        """Return the payloads of the ``k`` entries nearest to ``point``.

        Distance is measured from the point to the entry's bounding box, which
        is exact for the axis-aligned rectangles produced by the floorplan
        builders.
        """
        if k < 1:
            raise ValueError("k must be positive")
        counter = itertools.count()
        heap: List[Tuple[float, int, Any]] = []
        if self._root.bbox is None:
            return []
        heapq.heappush(heap, (0.0, next(counter), self._root))
        results: List[Any] = []
        while heap and len(results) < k:
            dist, _, item = heapq.heappop(heap)
            if isinstance(item, _Node):
                for entry in item.entries:
                    if entry.bbox is None:
                        continue
                    heapq.heappush(
                        heap,
                        (entry.bbox.distance_to_point(point), next(counter), entry),
                    )
            elif isinstance(item, RTreeEntry):
                results.append(item.payload)
            else:  # pragma: no cover - defensive
                raise TypeError(f"unexpected heap item {item!r}")
        return results

    def all_payloads(self) -> List[Any]:
        """Return every stored payload (order unspecified)."""
        results: List[Any] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            for entry in node.entries:
                if isinstance(entry, _Node):
                    stack.append(entry)
                else:
                    results.append(entry.payload)
        return results

    # -------------------------------------------------------------- internals
    def _choose_leaf(self, node: _Node, entry: RTreeEntry) -> _Node:
        while not node.is_leaf:
            best_child: Optional[_Node] = None
            best_enlargement = float("inf")
            best_area = float("inf")
            for child in node.entries:
                child_bbox = child.bbox or entry.bbox
                enlargement = child_bbox.enlargement(entry.bbox)
                area = child_bbox.area
                if enlargement < best_enlargement or (
                    enlargement == best_enlargement and area < best_area
                ):
                    best_child = child
                    best_enlargement = enlargement
                    best_area = area
            assert best_child is not None
            node = best_child
        return node

    def _adjust(self, node: _Node, bbox: BoundingBox) -> None:
        if node.bbox is None:
            node.bbox = bbox
        else:
            node.bbox = node.bbox.union(bbox)
        parent = self._find_parent(self._root, node)
        while parent is not None:
            parent.recompute_bbox()
            parent = self._find_parent(self._root, parent)

    def _find_parent(self, current: _Node, target: _Node) -> Optional[_Node]:
        if current is target or current.is_leaf:
            return None
        for entry in current.entries:
            if entry is target:
                return current
        for entry in current.entries:
            if isinstance(entry, _Node):
                found = self._find_parent(entry, target)
                if found is not None:
                    return found
        return None

    def _split_and_propagate(self, node: _Node) -> None:
        sibling = self._split(node)
        parent = self._find_parent(self._root, node)
        if parent is None:
            new_root = _Node(is_leaf=False, entries=[node, sibling])
            new_root.recompute_bbox()
            self._root = new_root
            return
        parent.entries.append(sibling)
        parent.recompute_bbox()
        if len(parent.entries) > self._max_entries:
            self._split_and_propagate(parent)

    def _split(self, node: _Node) -> _Node:
        entries = node.entries
        seed_a, seed_b = self._pick_seeds(entries)
        group_a = [entries[seed_a]]
        group_b = [entries[seed_b]]
        remaining = [e for i, e in enumerate(entries) if i not in (seed_a, seed_b)]
        bbox_a = group_a[0].bbox
        bbox_b = group_b[0].bbox
        while remaining:
            # Guarantee the minimum fill of each group.
            if len(group_a) + len(remaining) == self._min_entries:
                group_a.extend(remaining)
                remaining = []
                break
            if len(group_b) + len(remaining) == self._min_entries:
                group_b.extend(remaining)
                remaining = []
                break
            entry = remaining.pop()
            grow_a = bbox_a.enlargement(entry.bbox)
            grow_b = bbox_b.enlargement(entry.bbox)
            if grow_a <= grow_b:
                group_a.append(entry)
                bbox_a = bbox_a.union(entry.bbox)
            else:
                group_b.append(entry)
                bbox_b = bbox_b.union(entry.bbox)
        node.entries = group_a
        node.recompute_bbox()
        sibling = _Node(is_leaf=node.is_leaf, entries=group_b)
        sibling.recompute_bbox()
        return sibling

    @staticmethod
    def _pick_seeds(entries: Sequence[Any]) -> Tuple[int, int]:
        worst_pair = (0, 1)
        worst_waste = -1.0
        for i in range(len(entries)):
            for j in range(i + 1, len(entries)):
                union = entries[i].bbox.union(entries[j].bbox)
                waste = union.area - entries[i].bbox.area - entries[j].bbox.area
                if waste > worst_waste:
                    worst_waste = waste
                    worst_pair = (i, j)
        return worst_pair

    def _search(self, node: _Node, bbox: BoundingBox, out: List[Any]) -> None:
        if node.bbox is None or not node.bbox.intersects(bbox):
            return
        for entry in node.entries:
            if isinstance(entry, _Node):
                self._search(entry, bbox, out)
            else:
                if entry.bbox.intersects(bbox):
                    out.append(entry.payload)
