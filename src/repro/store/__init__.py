"""Durable, sharded semantics storage.

This package scales the single in-memory
:class:`repro.service.store.SemanticsStore` out (N shards, pluggable
placement) and down to disk (per-shard WAL + snapshots):

* :mod:`repro.store.partition` — deterministic ``object_id -> shard``
  placement (hash by default, venue/prefix affinity as the alternative).
* :mod:`repro.store.sharded` — :class:`ShardedSemanticsStore`, the
  store-compatible facade with sync/async durability.
* :mod:`repro.store.wal` — one shard's append-only log, snapshot and
  crash recovery.
* :mod:`repro.store.gather` — scatter-gather TkPRQ/TkFRPQ merges that are
  bit-identical to a single-store evaluation.
"""

from repro.store.gather import (
    merge_region_counts,
    scatter_top_k_pairs,
    scatter_top_k_regions,
)
from repro.store.partition import (
    HashPartitioner,
    PrefixPartitioner,
    partitioner_from_dict,
)
from repro.store.sharded import DurabilityConfig, ShardedSemanticsStore
from repro.store.wal import ShardLog

__all__ = [
    "DurabilityConfig",
    "HashPartitioner",
    "PrefixPartitioner",
    "ShardLog",
    "ShardedSemanticsStore",
    "merge_region_counts",
    "partitioner_from_dict",
    "scatter_top_k_pairs",
    "scatter_top_k_regions",
]
