"""Per-shard durability: append-only JSON-lines WAL + atomic snapshots.

Each shard of a :class:`repro.store.ShardedSemanticsStore` owns one
directory::

    shard-03/
        wal.jsonl       append-only log, one JSON record per line
        snapshot.json   atomic full-state snapshot (temp file + os.replace)

**WAL records** carry a shard-monotonic sequence number and one operation::

    {"seq": 17, "op": "publish", "oid": "mall/visitor-4", "entries": [...]}
    {"seq": 18, "op": "clear",   "oid": "mall/visitor-4"}
    {"seq": 19, "op": "clear",   "oid": null}

``entries`` uses the same m-semantics dict shape as every other persistence
surface (:func:`repro.persistence.serializers.semantics_to_dicts`), so WAL
lines, snapshots, store save files and the HTTP wire format all agree.

**Snapshots and compaction.**  Every ``snapshot_every`` applied records the
shard serialises its full state with the sequence number it covers, writes
it atomically (:func:`repro.persistence.atomic.atomic_write_text` with
``fsync``), then *compacts* — atomically swaps an empty file over the WAL.
A crash between those two steps is harmless: the stale WAL records carry
``seq <= snapshot.seq`` and recovery skips them, so no operation is ever
applied twice.

**Recovery** (:meth:`ShardLog.recover`) loads the snapshot (if any) and
replays the WAL tail — records with ``seq`` beyond the snapshot — in order.
A torn final record (the process died mid-append, or mid-``fsync``) is
detected by its failed JSON parse or missing newline; replay stops at the
last intact record and the file is truncated back to that boundary so
subsequent appends start clean.  Recovery is therefore *prefix-consistent*:
the store comes back exactly as of the last durable record.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.persistence.atomic import atomic_write_text

PathLike = Union[str, Path]

SNAPSHOT_FORMAT = "repro.store-snapshot/1"

#: WAL operations understood by replay.
_OPS = {"publish", "clear"}

__all__ = ["ShardLog", "SNAPSHOT_FORMAT", "scan_wal"]


def _fsync_directory(path: Path) -> None:
    """Best-effort fsync of a directory (persists renames on POSIX)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir-open support
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - not all filesystems support it
        pass
    finally:
        os.close(fd)


def scan_wal(path: Path) -> Tuple[List[Dict[str, Any]], int, bool]:
    """Parse a WAL file; return ``(records, good_bytes, torn)``.

    ``records`` are the intact records in file order; ``good_bytes`` is the
    offset just past the last intact line — where a recovery truncates the
    file — and ``torn`` says whether trailing bytes were discarded (a
    crash mid-append).  A record is intact when its line ends in a newline,
    parses as a JSON object, and carries an integer ``seq`` plus a known
    ``op``; scanning stops at the first record that is not.
    """
    if not path.exists():
        return [], 0, False
    raw = path.read_bytes()
    records: List[Dict[str, Any]] = []
    good_bytes = 0
    offset = 0
    while offset < len(raw):
        newline = raw.find(b"\n", offset)
        if newline < 0:
            break  # no terminator: the append never completed
        line = raw[offset:newline]
        try:
            record = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            break
        if (
            not isinstance(record, dict)
            or not isinstance(record.get("seq"), int)
            or record.get("op") not in _OPS
        ):
            break
        records.append(record)
        offset = newline + 1
        good_bytes = offset
    return records, good_bytes, good_bytes < len(raw)


class ShardLog:
    """One shard's WAL + snapshot pair, with recovery and compaction."""

    def __init__(self, directory: PathLike, *, fsync: bool = True):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.wal_path = self.directory / "wal.jsonl"
        self.snapshot_path = self.directory / "snapshot.json"
        self.fsync = fsync
        self._handle = None
        #: Last sequence number physically durable (WAL or snapshot).
        self.appended_seq = 0
        #: Sequence number the current snapshot covers (0 = no snapshot).
        self.snapshot_seq = 0
        #: WAL records appended since the last snapshot (compaction trigger).
        self.records_since_snapshot = 0
        #: Bytes discarded by the last recovery (torn tail), for stats.
        self.truncated_bytes = 0

    # -------------------------------------------------------------- recovery
    def recover(self) -> Tuple[Dict[str, List[Dict]], int]:
        """Rebuild shard state from snapshot + WAL tail.

        Returns ``(objects, replayed)`` where ``objects`` maps object id to
        its m-semantics entry dicts and ``replayed`` counts the WAL records
        applied on top of the snapshot.  Updates the log's sequence
        counters so subsequent appends continue the same monotonic stream,
        and truncates a torn tail off the WAL file.
        """
        objects: Dict[str, List[Dict]] = {}
        seq = 0
        snapshot = self._read_snapshot()
        if snapshot is not None:
            objects = {
                object_id: list(entries)
                for object_id, entries in snapshot["objects"].items()
            }
            seq = snapshot["seq"]
        self.snapshot_seq = seq if snapshot is not None else 0
        records, good_bytes, torn = scan_wal(self.wal_path)
        replayed = 0
        for record in records:
            if record["seq"] <= self.snapshot_seq:
                continue  # compaction raced a crash; already in the snapshot
            self._apply(record, objects)
            seq = record["seq"]
            replayed += 1
        if torn:
            size = self.wal_path.stat().st_size
            self.truncated_bytes = size - good_bytes
            with open(self.wal_path, "ab") as handle:
                handle.truncate(good_bytes)
        self.appended_seq = max(seq, self.snapshot_seq)
        self.records_since_snapshot = replayed
        return objects, replayed

    @staticmethod
    def _apply(record: Dict[str, Any], objects: Dict[str, List[Dict]]) -> None:
        if record["op"] == "publish":
            objects.setdefault(record["oid"], []).extend(record["entries"])
        elif record["oid"] is None:
            objects.clear()
        else:
            objects.pop(record["oid"], None)

    def _read_snapshot(self) -> Optional[Dict[str, Any]]:
        if not self.snapshot_path.exists():
            return None
        payload = json.loads(self.snapshot_path.read_text(encoding="utf-8"))
        if payload.get("format") != SNAPSHOT_FORMAT or not isinstance(
            payload.get("seq"), int
        ):
            raise ValueError(
                f"not a shard snapshot: {self.snapshot_path} "
                f"(format {payload.get('format')!r})"
            )
        return payload

    # --------------------------------------------------------------- writing
    def append(
        self,
        seq: int,
        op: str,
        object_id: Optional[str],
        entries: Optional[List[Dict]] = None,
        *,
        sync: Optional[bool] = None,
    ) -> None:
        """Append one record; with ``fsync`` it is durable on return.

        ``sync=False`` defers the fsync so a batch of appends can share one
        (the async writer's path — it calls :meth:`sync` after the batch).
        """
        record: Dict[str, Any] = {"seq": seq, "op": op, "oid": object_id}
        if entries is not None:
            record["entries"] = entries
        line = json.dumps(record, separators=(",", ":")) + "\n"
        handle = self._writer()
        handle.write(line.encode("utf-8"))
        handle.flush()
        if self.fsync if sync is None else (sync and self.fsync):
            os.fsync(handle.fileno())
        # max(): post-compaction re-appends of already-snapshotted records
        # (seq <= snapshot_seq) must not regress the durable watermark.
        self.appended_seq = max(self.appended_seq, seq)
        self.records_since_snapshot += 1

    def sync(self) -> None:
        """Flush + fsync any appends written with ``sync=False``."""
        if self._handle is not None:
            self._handle.flush()
            if self.fsync:
                os.fsync(self._handle.fileno())

    def write_snapshot(self, objects: Dict[str, List[Dict]], seq: int) -> None:
        """Atomically persist a full-state snapshot covering ``seq``, then
        compact the WAL (swap in an empty file — old records are covered)."""
        payload = {
            "format": SNAPSHOT_FORMAT,
            "seq": seq,
            "objects": objects,
        }
        atomic_write_text(
            self.snapshot_path, json.dumps(payload, separators=(",", ":")),
            fsync=self.fsync,
        )
        self.snapshot_seq = seq
        self._compact()

    def _compact(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        atomic_write_text(self.wal_path, "", fsync=self.fsync)
        if self.fsync:
            _fsync_directory(self.directory)
        self.records_since_snapshot = 0

    def _writer(self):
        if self._handle is None:
            self._handle = open(self.wal_path, "ab")
        return self._handle

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"ShardLog({str(self.directory)!r}, appended_seq={self.appended_seq}, "
            f"snapshot_seq={self.snapshot_seq})"
        )
