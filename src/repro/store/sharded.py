"""Durable, sharded semantics store.

:class:`ShardedSemanticsStore` partitions objects across N independent
:class:`repro.service.store.SemanticsStore` shards.  Placement is a pure
function of the object id (:mod:`repro.store.partition`), so every object
lives in exactly one shard — the property that makes per-shard query
results mergeable (:mod:`repro.store.gather`) and per-shard WALs
independent.

The store mirrors the single-store read/write surface (``publish`` /
``clear`` / ``objects`` / ``semantics_for`` / ``as_dict`` / iteration /
``attach_index``), so sessions, services and queries use it unchanged.
Instead of a single ``live_index`` it exposes :meth:`shard_stores`, which
the query planner (:mod:`repro.index.planner`) recognises and routes to
the scatter-gather merge.

**Durability** is optional and per shard (:class:`DurabilityConfig`): each
shard owns a WAL + snapshot directory (:class:`repro.store.wal.ShardLog`)
under one root::

    root/
        meta.json        shard count + partitioner (layout must not drift)
        shard-00/        wal.jsonl + snapshot.json
        shard-01/        ...

Two durability modes:

* ``"sync"`` — the WAL append (and fsync) happens inside ``publish``;
  when ``publish`` returns, the record is durable.
* ``"async"`` — ``publish`` applies to memory and enqueues the record on
  the shard's ingestion queue; a per-shard background writer drains the
  queue, batching appends under one fsync.  Queries never block on disk;
  the crash window is the queue depth (reported by :meth:`wal_stats`, and
  closeable with :meth:`flush`).  A snapshot covers every *assigned*
  sequence number — including queued-but-unwritten records, whose state is
  already in memory — so snapshotting also shrinks the crash window.

:meth:`open` (or constructing with the same root) recovers: each shard
loads its snapshot and replays its WAL tail, tolerating a torn final
record.  Sequence numbers are per shard and monotonic; records that a
crashed compaction left behind (seq at or below the snapshot) are skipped
on replay, so recovery is exactly-once.
"""

from __future__ import annotations

import json
import queue as queue_module
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.mobility.records import MSemantics
from repro.persistence.atomic import atomic_write_text
from repro.persistence.serializers import semantics_from_dicts, semantics_to_dicts
from repro.service.store import SemanticsStore
from repro.store.partition import HashPartitioner, partitioner_from_dict
from repro.store.wal import ShardLog

PathLike = Union[str, Path]

META_FORMAT = "repro.sharded-store/1"

#: Durability modes: "sync" fsyncs inside publish, "async" defers to a
#: per-shard background writer.
MODES = ("sync", "async")

__all__ = ["DurabilityConfig", "ShardedSemanticsStore", "META_FORMAT"]


@dataclass(frozen=True)
class DurabilityConfig:
    """Where and how a sharded store persists itself.

    ``snapshot_every`` is the compaction trigger: after that many WAL
    records a shard snapshots its full state and truncates its log
    (0 disables automatic snapshots; :meth:`ShardedSemanticsStore.snapshot`
    still works).  ``fsync=False`` trades durability for speed — useful in
    tests and benchmarks where the filesystem is a tmpdir anyway.
    """

    root: Path
    mode: str = "async"
    snapshot_every: int = 256
    fsync: bool = True

    def __post_init__(self):
        object.__setattr__(self, "root", Path(self.root))
        if self.mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {self.mode!r}")
        if self.snapshot_every < 0:
            raise ValueError("snapshot_every must be >= 0 (0 disables)")

    def to_dict(self) -> Dict:
        return {
            "root": str(self.root),
            "mode": self.mode,
            "snapshot_every": self.snapshot_every,
            "fsync": self.fsync,
        }

    @classmethod
    def from_dict(cls, payload: Dict, *, root: Optional[PathLike] = None) -> "DurabilityConfig":
        return cls(
            root=Path(root if root is not None else payload["root"]),
            mode=payload.get("mode", "async"),
            snapshot_every=int(payload.get("snapshot_every", 256)),
            fsync=bool(payload.get("fsync", True)),
        )


class ShardedSemanticsStore:
    """N-way sharded semantics store with optional WAL+snapshot durability."""

    def __init__(
        self,
        shards: int = 4,
        *,
        partitioner=None,
        durability: Optional[DurabilityConfig] = None,
    ):
        if shards < 1:
            raise ValueError("shards must be at least 1")
        self.shard_count = shards
        self.partitioner = partitioner if partitioner is not None else HashPartitioner()
        self.durability = durability
        self._shards = [SemanticsStore() for _ in range(shards)]
        self._ingest_locks = [threading.Lock() for _ in range(shards)]
        #: Per shard, the last sequence number handed to an operation.
        self._assigned_seq = [0] * shards
        self._logs: List[ShardLog] = []
        self._queues: List[queue_module.SimpleQueue] = []
        self._writers: List[threading.Thread] = []
        self._closed = False
        #: Set by recovery: how much the WALs contributed beyond snapshots.
        self.last_recovery: Optional[Dict] = None
        if durability is not None:
            self._open_durable()

    # ------------------------------------------------------------ open/close
    @classmethod
    def open(
        cls,
        root: PathLike,
        *,
        shards: Optional[int] = None,
        partitioner=None,
        mode: Optional[str] = None,
        snapshot_every: Optional[int] = None,
        fsync: Optional[bool] = None,
    ) -> "ShardedSemanticsStore":
        """Open (and recover) a durable store rooted at ``root``.

        An existing ``meta.json`` pins the shard count and partitioner —
        the on-disk layout must be read back by the layout that wrote it —
        and explicit arguments that contradict it raise.  A fresh root
        takes the arguments (default: 4 hash-partitioned shards).
        """
        root = Path(root)
        meta = _read_meta(root / "meta.json")
        if meta is not None:
            shards = shards if shards is not None else meta["shards"]
            if partitioner is None:
                partitioner = partitioner_from_dict(meta["partitioner"])
        durability_kwargs = {}
        if mode is not None:
            durability_kwargs["mode"] = mode
        if snapshot_every is not None:
            durability_kwargs["snapshot_every"] = snapshot_every
        if fsync is not None:
            durability_kwargs["fsync"] = fsync
        return cls(
            shards if shards is not None else 4,
            partitioner=partitioner,
            durability=DurabilityConfig(root=root, **durability_kwargs),
        )

    def _open_durable(self) -> None:
        root = self.durability.root
        root.mkdir(parents=True, exist_ok=True)
        meta_path = root / "meta.json"
        meta = _read_meta(meta_path)
        if meta is None:
            atomic_write_text(
                meta_path,
                json.dumps(
                    {
                        "format": META_FORMAT,
                        "shards": self.shard_count,
                        "partitioner": self.partitioner.to_dict(),
                    }
                ),
                fsync=self.durability.fsync,
            )
        else:
            if meta["shards"] != self.shard_count:
                raise ValueError(
                    f"store at {root} has {meta['shards']} shards; "
                    f"asked to open with {self.shard_count} — resharding is "
                    "not supported in place"
                )
            persisted = partitioner_from_dict(meta["partitioner"])
            if persisted != self.partitioner:
                raise ValueError(
                    f"store at {root} was partitioned by {persisted!r}; "
                    f"asked to open with {self.partitioner!r}"
                )
        replayed_total = 0
        truncated_total = 0
        for sid in range(self.shard_count):
            log = ShardLog(root / f"shard-{sid:02d}", fsync=self.durability.fsync)
            objects, replayed = log.recover()
            for object_id, entries in objects.items():
                self._shards[sid].publish(object_id, semantics_from_dicts(entries))
            self._assigned_seq[sid] = log.appended_seq
            replayed_total += replayed
            truncated_total += log.truncated_bytes
            self._logs.append(log)
        self.last_recovery = {
            "replayed_records": replayed_total,
            "truncated_bytes": truncated_total,
        }
        if self.durability.mode == "async":
            for sid in range(self.shard_count):
                self._queues.append(queue_module.SimpleQueue())
                writer = threading.Thread(
                    target=self._writer_loop,
                    args=(sid,),
                    name=f"shard-writer-{sid:02d}",
                    daemon=True,
                )
                self._writers.append(writer)
                writer.start()

    def close(self) -> None:
        """Drain writers, stop them, and close the WAL handles."""
        if self._closed:
            return
        self._closed = True
        if self.durability is None:
            return
        if self.durability.mode == "async":
            for shard_queue in self._queues:
                shard_queue.put(None)
            for writer in self._writers:
                writer.join()
        for log in self._logs:
            log.close()

    def __enter__(self) -> "ShardedSemanticsStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------ publishing
    def shard_for(self, object_id: str) -> int:
        """The shard owning ``object_id`` (deterministic across processes)."""
        return self.partitioner.shard_for(object_id, self.shard_count)

    def publish(self, object_id: str, semantics: Iterable[MSemantics]) -> None:
        """Route one object's finalized m-semantics to its shard.

        With sync durability the WAL append (fsync included) happens here;
        with async durability the record is queued for the shard's writer
        and this call never blocks on disk.
        """
        entries = list(semantics)
        if not entries:
            return
        sid = self.shard_for(object_id)
        if self.durability is None:
            self._shards[sid].publish(object_id, entries)
            return
        self._ensure_open()
        payload = semantics_to_dicts(entries)
        with self._ingest_locks[sid]:
            self._assigned_seq[sid] += 1
            seq = self._assigned_seq[sid]
            if self.durability.mode == "sync":
                self._logs[sid].append(seq, "publish", object_id, payload)
                self._shards[sid].publish(object_id, entries)
                self._maybe_snapshot_locked(sid)
            else:
                self._shards[sid].publish(object_id, entries)
                self._queues[sid].put(("append", seq, "publish", object_id, payload))

    def clear(self, object_id: Optional[str] = None) -> None:
        """Drop one object (routed to its shard) or everything (all shards)."""
        shard_ids = (
            range(self.shard_count) if object_id is None else [self.shard_for(object_id)]
        )
        for sid in shard_ids:
            if self.durability is None:
                self._shards[sid].clear(object_id)
                continue
            self._ensure_open()
            with self._ingest_locks[sid]:
                self._assigned_seq[sid] += 1
                seq = self._assigned_seq[sid]
                if self.durability.mode == "sync":
                    self._logs[sid].append(seq, "clear", object_id)
                    self._shards[sid].clear(object_id)
                    self._maybe_snapshot_locked(sid)
                else:
                    self._shards[sid].clear(object_id)
                    self._queues[sid].put(("append", seq, "clear", object_id, None))

    def _ensure_open(self) -> None:
        if self._closed:
            raise RuntimeError("store is closed")

    # ------------------------------------------------------- durability ops
    def flush(self) -> None:
        """Block until every record published so far is durable on disk."""
        if self.durability is None or self.durability.mode == "sync":
            return
        self._ensure_open()
        events = []
        for shard_queue in self._queues:
            event = threading.Event()
            shard_queue.put(("barrier", event))
            events.append(event)
        for event in events:
            event.wait()

    def snapshot(self) -> None:
        """Force a snapshot + WAL compaction on every shard, synchronously."""
        if self.durability is None:
            return
        self._ensure_open()
        if self.durability.mode == "sync":
            for sid in range(self.shard_count):
                with self._ingest_locks[sid]:
                    self._write_snapshot_locked(sid)
            return
        events = []
        for shard_queue in self._queues:
            event = threading.Event()
            shard_queue.put(("snapshot", event))
            events.append(event)
        for event in events:
            event.wait()

    def _writer_loop(self, sid: int) -> None:
        """Async mode: drain the shard queue, batching appends per fsync."""
        log = self._logs[sid]
        shard_queue = self._queues[sid]
        while True:
            commands = [shard_queue.get()]
            while True:
                try:
                    commands.append(shard_queue.get_nowait())
                except queue_module.Empty:
                    break
            wrote = False
            stop = False
            for command in commands:
                if command is None:
                    stop = True
                    continue
                kind = command[0]
                if kind == "append":
                    _, seq, op, object_id, payload = command
                    log.append(seq, op, object_id, payload, sync=False)
                    wrote = True
                elif kind == "barrier":
                    if wrote:
                        log.sync()
                        wrote = False
                    command[1].set()
                else:  # "snapshot"
                    if wrote:
                        log.sync()
                        wrote = False
                    self._snapshot_shard(sid)
                    command[1].set()
            if wrote:
                log.sync()
            every = self.durability.snapshot_every
            if every and log.records_since_snapshot >= every and not stop:
                self._snapshot_shard(sid)
            if stop:
                break

    def _snapshot_shard(self, sid: int) -> None:
        with self._ingest_locks[sid]:
            self._write_snapshot_locked(sid)

    def _maybe_snapshot_locked(self, sid: int) -> None:
        every = self.durability.snapshot_every
        if every and self._logs[sid].records_since_snapshot >= every:
            self._write_snapshot_locked(sid)

    def _write_snapshot_locked(self, sid: int) -> None:
        """Snapshot one shard; caller holds the shard's ingest lock.

        The snapshot covers the last *assigned* sequence number: every
        assigned operation is already applied in memory (both modes apply
        before or at assignment), so state and watermark agree even while
        async records are still queued — the snapshot simply makes them
        durable early, and their late WAL appends are skipped on replay.
        """
        payload = {
            object_id: semantics_to_dicts(entries)
            for object_id, entries in self._shards[sid].as_dict().items()
        }
        self._logs[sid].write_snapshot(payload, self._assigned_seq[sid])

    # --------------------------------------------------------------- reading
    def shard_stores(self) -> Tuple[SemanticsStore, ...]:
        """The per-shard stores — what the query planner scatters over."""
        return tuple(self._shards)

    def objects(self) -> List[str]:
        found: List[str] = []
        for shard in self._shards:
            found.extend(shard.objects())
        return found

    def semantics_for(self, object_id: str) -> List[MSemantics]:
        return self._shards[self.shard_for(object_id)].semantics_for(object_id)

    def as_dict(self) -> Dict[str, List[MSemantics]]:
        merged: Dict[str, List[MSemantics]] = {}
        for shard in self._shards:
            merged.update(shard.as_dict())
        return merged

    def __iter__(self) -> Iterator[List[MSemantics]]:
        """Yield one m-semantics sequence per object (the query input shape)."""
        return iter(self.as_dict().values())

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    @property
    def total_semantics(self) -> int:
        return sum(shard.total_semantics for shard in self._shards)

    # ----------------------------------------------------------------- index
    def attach_index(self) -> Tuple:
        """Attach a live index to every shard (scatter queries then use the
        per-shard threshold merge instead of per-shard scans)."""
        return tuple(shard.attach_index() for shard in self._shards)

    def detach_index(self) -> None:
        for shard in self._shards:
            shard.detach_index()

    @property
    def is_indexed(self) -> bool:
        """True when every shard carries a live index."""
        return all(shard.is_indexed for shard in self._shards)

    # ----------------------------------------------------------------- stats
    def wal_stats(self) -> Optional[Dict]:
        """Per-shard durability lag (None for a purely in-memory store).

        ``pending`` is the number of assigned-but-not-yet-durable records —
        the async crash window.  Sync mode reports 0 by construction.
        """
        if self.durability is None:
            return None
        shards = []
        pending_total = 0
        for sid in range(self.shard_count):
            log = self._logs[sid]
            durable = max(log.appended_seq, log.snapshot_seq)
            pending = max(0, self._assigned_seq[sid] - durable)
            pending_total += pending
            shards.append(
                {
                    "shard": sid,
                    "assigned_seq": self._assigned_seq[sid],
                    "durable_seq": durable,
                    "pending": pending,
                    "snapshot_seq": log.snapshot_seq,
                    "records_since_snapshot": log.records_since_snapshot,
                }
            )
        return {
            "mode": self.durability.mode,
            "pending_records": pending_total,
            "shards": shards,
        }

    def health_stats(self) -> Dict:
        """Shard + WAL summary for the HTTP front door's ``/healthz``."""
        stats: Dict = {
            "shards": self.shard_count,
            "partitioner": self.partitioner.kind,
            "objects_per_shard": [len(shard) for shard in self._shards],
            "indexed": self.is_indexed,
        }
        wal = self.wal_stats()
        if wal is not None:
            stats["durability"] = {
                "mode": wal["mode"],
                "pending_records": wal["pending_records"],
                "max_shard_pending": max(
                    (entry["pending"] for entry in wal["shards"]), default=0
                ),
            }
        else:
            stats["durability"] = None
        return stats

    # ------------------------------------------------------------- interop
    def to_config(self) -> Dict:
        """The layout + durability payload service save files persist."""
        config: Dict = {
            "kind": "sharded",
            "shards": self.shard_count,
            "partitioner": self.partitioner.to_dict(),
        }
        if self.durability is not None:
            config["durability"] = self.durability.to_dict()
        return config

    @classmethod
    def from_config(cls, config: Dict, *, root: Optional[PathLike] = None) -> "ShardedSemanticsStore":
        """Rebuild (and, when durable, recover) a store from :meth:`to_config`.

        ``root`` overrides the persisted durability root, for save files
        that moved between machines.
        """
        durability_payload = config.get("durability")
        durability = (
            DurabilityConfig.from_dict(durability_payload, root=root)
            if durability_payload is not None
            else None
        )
        return cls(
            int(config["shards"]),
            partitioner=partitioner_from_dict(config["partitioner"]),
            durability=durability,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        durable = self.durability.mode if self.durability else "none"
        return (
            f"ShardedSemanticsStore(shards={self.shard_count}, "
            f"objects={len(self)}, durability={durable})"
        )


def _read_meta(path: Path) -> Optional[Dict]:
    if not path.exists():
        return None
    payload = json.loads(path.read_text(encoding="utf-8"))
    if payload.get("format") != META_FORMAT:
        raise ValueError(
            f"not a sharded-store meta file: {path} (format {payload.get('format')!r})"
        )
    return payload
