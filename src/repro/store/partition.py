"""Shard partitioners: deterministic ``object_id -> shard`` placement.

A partitioner decides which shard of a :class:`repro.store.ShardedSemanticsStore`
owns an object.  Two properties are load-bearing:

* **Determinism across processes.**  Recovery replays WAL records into the
  same shard layout that wrote them, so the mapping must not depend on
  process state (which rules out the builtin ``hash`` — it is salted per
  interpreter).  :class:`HashPartitioner` therefore hashes with blake2b.
* **Totality over object ids.**  Every object lives in *exactly one* shard.
  That is what makes TkFRPQ pair counts additive across shards (an object's
  visited-region set never splits), which the scatter-gather merge in
  :mod:`repro.store.gather` relies on.

:class:`PrefixPartitioner` is the pluggable venue/region flavour: object ids
of the form ``"<venue>/<rest>"`` are placed by their prefix, so one venue's
traffic stays on one shard (locality for venue-scoped queries) while the
prefix itself is still hashed for balance across venues.

Partitioners serialise to plain dicts (``to_dict`` / :func:`partitioner_from_dict`)
so a sharded store's layout can be persisted in service save files and in
the store's on-disk ``meta.json``.
"""

from __future__ import annotations

import hashlib
from typing import Dict

__all__ = [
    "HashPartitioner",
    "PrefixPartitioner",
    "partitioner_from_dict",
]


def _stable_bucket(key: str, shards: int) -> int:
    """Deterministic bucket of ``key`` in ``[0, shards)`` via blake2b."""
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") % shards


class HashPartitioner:
    """Hash the whole object id — the balanced default placement."""

    kind = "hash"

    def shard_for(self, object_id: str, shards: int) -> int:
        return _stable_bucket(object_id, shards)

    def to_dict(self) -> Dict:
        return {"kind": self.kind}

    def __eq__(self, other) -> bool:
        return type(other) is type(self)

    def __hash__(self) -> int:  # pragma: no cover - set/dict membership only
        return hash(self.kind)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return "HashPartitioner()"


class PrefixPartitioner:
    """Place by the id's prefix up to ``separator`` — venue/region affinity.

    ``"mall-3/visitor-17"`` and ``"mall-3/visitor-94"`` land on the same
    shard; ids without the separator fall back to whole-id hashing, so the
    partitioner is total over arbitrary ids.
    """

    kind = "prefix"

    def __init__(self, separator: str = "/"):
        if not separator:
            raise ValueError("separator must be a non-empty string")
        self.separator = separator

    def shard_for(self, object_id: str, shards: int) -> int:
        prefix, found, _ = object_id.partition(self.separator)
        return _stable_bucket(prefix if found else object_id, shards)

    def to_dict(self) -> Dict:
        return {"kind": self.kind, "separator": self.separator}

    def __eq__(self, other) -> bool:
        return type(other) is type(self) and other.separator == self.separator

    def __hash__(self) -> int:  # pragma: no cover - set/dict membership only
        return hash((self.kind, self.separator))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"PrefixPartitioner(separator={self.separator!r})"


_KINDS = {
    HashPartitioner.kind: lambda payload: HashPartitioner(),
    PrefixPartitioner.kind: lambda payload: PrefixPartitioner(
        payload.get("separator", "/")
    ),
}


def partitioner_from_dict(payload: Dict):
    """Rebuild a partitioner from its ``to_dict`` payload."""
    kind = payload.get("kind")
    if kind not in _KINDS:
        raise ValueError(
            f"unknown partitioner kind {kind!r} (expected one of {sorted(_KINDS)})"
        )
    return _KINDS[kind](payload)
