"""Scatter-gather top-k over shard stores — bit-identical to one big scan.

TkPRQ and TkFRPQ route here (via :mod:`repro.index.planner`) when their
input exposes ``shard_stores``.  The merge exploits the partitioning
invariant — every object lives in exactly one shard — so per-shard results
compose exactly:

* **Regions (TkPRQ).**  A region's global visit count is the *sum* of its
  per-shard counts.  When every shard carries a live index the merge runs
  the Threshold Algorithm: each shard streams its regions in descending
  total-posting-count order (:meth:`SemanticsIndex.region_bounds`, an upper
  bound on any interval-restricted count), newly surfaced regions get their
  exact global count by random access (:meth:`SemanticsIndex.count_region`
  on every shard), and the scan stops once the sum of the streams' current
  bounds falls strictly below the weakest held top-k count — strictly,
  because a tie is broken by the smaller region id and could still
  displace.  Unindexed or degenerate-interval inputs fall back to merging
  the per-shard scan counters, the semantic reference.
* **Pairs (TkFRPQ).**  A pair's frequency counts *objects*; objects never
  split across shards, so per-shard pair counters are additive and the
  merge is a counter sum followed by the canonical ranking.

Both paths end in the canonical ``sorted(counts.items(),
key=(-count, key))[:k]`` ranking, so the answer is bit-identical to
evaluating the same query over a single unsharded store (asserted across
the whole scenario catalogue and by a property test over random streams).
"""

from __future__ import annotations

from collections import Counter
from heapq import heappush, heapreplace
from typing import List, Optional, Sequence, Set, Tuple

from repro.queries.tkfrpq import count_region_pairs
from repro.queries.tkprq import count_region_visits

RegionPair = Tuple[int, int]

__all__ = ["scatter_top_k_regions", "scatter_top_k_pairs", "merge_region_counts"]


def _degenerate(start: Optional[float], end: Optional[float]) -> bool:
    """start > end is defined by the scan (see the planner's rule 2)."""
    return start is not None and end is not None and start > end


def merge_region_counts(
    shards: Sequence,
    *,
    start: Optional[float] = None,
    end: Optional[float] = None,
    query_regions: Optional[Set[int]] = None,
) -> Counter:
    """Global per-region visit counts: the sum of per-shard scan counts."""
    totals: Counter = Counter()
    for shard in shards:
        totals.update(
            count_region_visits(
                shard, start=start, end=end, query_regions=query_regions
            )
        )
    return totals


def scatter_top_k_regions(
    shards: Sequence,
    k: int,
    *,
    start: Optional[float] = None,
    end: Optional[float] = None,
    query_regions: Optional[Set[int]] = None,
) -> List[Tuple[int, int]]:
    """Global TkPRQ answer from per-shard stores.

    Indexed shards (all of them) take the threshold merge; otherwise the
    per-shard scan counters are summed.  Either way the result equals the
    single-store evaluation exactly, ties and all.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    indexes = [shard.live_index for shard in shards]
    if any(index is None for index in indexes) or _degenerate(start, end):
        totals = merge_region_counts(
            shards, start=start, end=end, query_regions=query_regions
        )
        ranked = sorted(totals.items(), key=lambda item: (-item[1], item[0]))
        return ranked[:k]
    return _threshold_merge(indexes, k, start, end, query_regions)


def _threshold_merge(
    indexes: Sequence,
    k: int,
    start: Optional[float],
    end: Optional[float],
    query_regions: Optional[Set[int]],
) -> List[Tuple[int, int]]:
    """Threshold Algorithm over per-shard bound streams.

    Invariant: a region not yet surfaced by *any* stream has, in each
    shard, a bound no larger than that shard's current stream head (the
    streams are sorted descending), so its global count is at most the sum
    of the active heads — the threshold.  Once k answers are held and the
    threshold is strictly below the weakest of them, no unseen region can
    enter the top-k.
    """
    streams = [index.region_bounds(query_regions) for index in indexes]
    positions = [0] * len(streams)
    seen: Set[int] = set()
    # Min-heap of the running top-k; the root is the weakest member
    # ((count, -region): lowest count first, largest id among ties).
    heap: List[Tuple[int, int]] = []
    while True:
        active = [i for i in range(len(streams)) if positions[i] < len(streams[i])]
        if not active:
            break
        threshold = sum(streams[i][positions[i]][0] for i in active)
        if len(heap) == k and threshold < heap[0][0]:
            break
        for i in active:
            _, region = streams[i][positions[i]]
            positions[i] += 1
            if region in seen:
                continue
            seen.add(region)
            count = sum(
                index.count_region(region, start=start, end=end) for index in indexes
            )
            if count == 0:
                continue
            entry = (count, -region)
            if len(heap) < k:
                heappush(heap, entry)
            elif entry > heap[0]:
                heapreplace(heap, entry)
    ranked = sorted(heap, key=lambda entry: (-entry[0], -entry[1]))
    return [(-negated, count) for count, negated in ranked]


def scatter_top_k_pairs(
    shards: Sequence,
    k: int,
    *,
    start: Optional[float] = None,
    end: Optional[float] = None,
    query_regions: Optional[Set[int]] = None,
) -> List[Tuple[RegionPair, int]]:
    """Global TkFRPQ answer: per-shard pair counters are additive because
    an object's visited-region set never splits across shards."""
    if k < 1:
        raise ValueError("k must be at least 1")
    degenerate = _degenerate(start, end)
    totals: Counter = Counter()
    for shard in shards:
        index = shard.live_index
        if index is None or degenerate:
            totals.update(
                count_region_pairs(
                    shard, start=start, end=end, query_regions=query_regions
                )
            )
        else:
            totals.update(
                index.count_pairs(start=start, end=end, query_regions=query_regions)
            )
    ranked = sorted(totals.items(), key=lambda item: (-item[1], item[0]))
    return ranked[:k]
