"""Persistent process pools with shared-memory model broadcast.

The pre-policy process backend created a fresh :class:`ProcessPoolExecutor`
per ``map_broadcast`` call and re-shipped the pickled annotator through the
pool initializer every time.  On the committed tiny workload that overhead
alone put the process backend *below* serial.  This module replaces both
costs with persistent state:

* **Pools persist.**  :func:`get_pool` keeps one pool per worker count
  alive for the life of the interpreter; repeated batch calls reuse warm
  workers instead of paying spawn + import per call.
* **Broadcasts are content-addressed shared memory.**  The pickled
  ``(obj, method, kwargs)`` payload is written once into a
  :class:`multiprocessing.shared_memory.SharedMemory` segment keyed by its
  content digest (the *epoch*).  Tasks carry only ``(epoch, name, size)``;
  each worker attaches the segment, unpickles once, and caches the result
  by epoch — so N calls with the same fitted annotator unpickle it once
  per worker, not once per call, and the payload bytes never travel
  through the task pipe at all.

Lifecycle is a first-class concern (nothing may leak ``/dev/shm``
segments or zombie workers):

* :func:`shutdown_pools` tears everything down — it runs on interpreter
  exit via :mod:`atexit` and may be called any time to reclaim resources;
* a :class:`~concurrent.futures.process.BrokenProcessPool` (worker
  crashed or was OOM-killed) disposes the broken pool and the failed
  call's broadcast segment before the error propagates, so a failed run
  cleans up after itself and the next call starts fresh;
* worker-side attachments read the payload through raw ``shm_open`` +
  ``mmap`` (never touching the :mod:`multiprocessing.resource_tracker`,
  which fork-mode workers share with the parent), so only the parent
  ever tracks or unlinks a segment.
"""

from __future__ import annotations

import atexit
import hashlib
import pickle
import threading
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import shared_memory
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

#: Maximum distinct broadcast payloads kept alive at once.  Two covers the
#: common A/B pattern (e.g. comparing two fitted annotators) without letting
#: a sweep over many models accumulate segments.
_MAX_BROADCASTS = 2


class SharedBroadcast:
    """One pickled payload living in a parent-owned shared-memory segment."""

    def __init__(self, epoch: str, payload: bytes):
        self.epoch = epoch
        self.size = len(payload)
        self._shm = shared_memory.SharedMemory(create=True, size=max(1, self.size))
        self._shm.buf[: self.size] = payload

    @property
    def name(self) -> str:
        return self._shm.name

    def handle(self) -> Tuple[str, str, int]:
        """The ``(epoch, segment name, payload size)`` triple tasks carry."""
        return (self.epoch, self._shm.name, self.size)

    def destroy(self) -> None:
        """Close and unlink the segment (idempotent)."""
        try:
            self._shm.close()
        except Exception:
            pass
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass
        except Exception:
            pass


# Parent-side registries, guarded by one lock: worker-count -> pool and
# epoch -> broadcast segment (insertion-ordered for LRU eviction).
_LOCK = threading.Lock()
_POOLS: Dict[int, ProcessPoolExecutor] = {}
_BROADCASTS: Dict[str, SharedBroadcast] = {}


def _payload_epoch(payload: bytes) -> str:
    return hashlib.blake2b(payload, digest_size=16).hexdigest()


def publish_broadcast(obj: Any, method: str, kwargs: Dict[str, Any]) -> Tuple[str, str, int]:
    """Place ``(obj, method, kwargs)`` in shared memory; return its handle.

    Content-addressed: publishing the same logical payload twice reuses the
    existing segment (one pickle, zero new segments).  At most
    :data:`_MAX_BROADCASTS` segments are kept; older ones are unlinked —
    workers re-attach lazily if an evicted epoch comes back.
    """
    payload = pickle.dumps((obj, method, kwargs))
    epoch = _payload_epoch(payload)
    with _LOCK:
        existing = _BROADCASTS.get(epoch)
        if existing is not None:
            # Re-insert to refresh LRU order.
            _BROADCASTS.pop(epoch)
            _BROADCASTS[epoch] = existing
            return existing.handle()
        broadcast = SharedBroadcast(epoch, payload)
        _BROADCASTS[epoch] = broadcast
        while len(_BROADCASTS) > _MAX_BROADCASTS:
            oldest = _BROADCASTS.pop(next(iter(_BROADCASTS)))
            oldest.destroy()
        return broadcast.handle()


def get_pool(workers: int) -> ProcessPoolExecutor:
    """The persistent process pool for ``workers``, created on first use."""
    if workers < 1:
        raise ValueError(f"workers must be at least 1, got {workers}")
    with _LOCK:
        pool = _POOLS.get(workers)
        if pool is None:
            pool = ProcessPoolExecutor(max_workers=workers)
            _POOLS[workers] = pool
        return pool


def discard_pool(workers: int) -> None:
    """Shut down and forget the pool for ``workers`` (no-op when absent)."""
    with _LOCK:
        pool = _POOLS.pop(workers, None)
    if pool is not None:
        pool.shutdown(wait=True, cancel_futures=True)


def active_pool_workers() -> List[int]:
    """Worker counts with a live persistent pool (introspection for tests)."""
    with _LOCK:
        return sorted(_POOLS)


def active_broadcast_epochs() -> List[str]:
    """Epochs with a live shared-memory segment (introspection for tests)."""
    with _LOCK:
        return list(_BROADCASTS)


def shutdown_pools() -> None:
    """Tear down every persistent pool and unlink every broadcast segment.

    Registered with :mod:`atexit`; also the explicit "release the cores and
    /dev/shm now" API for long-lived services.  Safe to call repeatedly —
    pools and segments recreate lazily on the next use.
    """
    with _LOCK:
        pools = list(_POOLS.values())
        _POOLS.clear()
        broadcasts = list(_BROADCASTS.values())
        _BROADCASTS.clear()
    for pool in pools:
        try:
            pool.shutdown(wait=True, cancel_futures=True)
        except Exception:
            pass
    for broadcast in broadcasts:
        broadcast.destroy()


atexit.register(shutdown_pools)


def iter_broadcast_shards(
    obj: Any,
    method: str,
    kwargs: Dict[str, Any],
    shards: Sequence[Sequence[Any]],
    *,
    workers: int,
    reuse_pool: bool = True,
):
    """Yield ``(shard_index, results)`` pairs in *completion* order.

    The streaming workhorse behind the process backend: the target object
    is published to shared memory once (per content epoch), each shard
    becomes one task carrying only its items, and finished shards are
    yielded as soon as they land — no barrier across the whole batch.

    With ``reuse_pool=False`` a throwaway pool is used (the pre-policy
    behaviour, kept for callers that must not leave worker processes
    behind); the broadcast segment is still shared-memory backed and is
    destroyed when the generator finishes or is closed.
    """
    handle = publish_broadcast(obj, method, kwargs)
    epoch = handle[0]
    pool = get_pool(workers) if reuse_pool else ProcessPoolExecutor(max_workers=workers)
    try:
        futures = {
            pool.submit(_run_shard, handle, list(shard)): index
            for index, shard in enumerate(shards)
        }
        try:
            for future in as_completed(futures):
                yield futures[future], future.result()
        except BrokenProcessPool:
            # A worker died (crash, OOM kill, os._exit).  Dispose of the
            # broken pool and all broadcast segments *before* propagating,
            # so nothing leaks out of the failed run.
            if reuse_pool:
                discard_pool(workers)
            _destroy_broadcast(epoch)
            raise
    finally:
        if not reuse_pool:
            pool.shutdown(wait=True, cancel_futures=True)
            _destroy_broadcast(epoch)


def run_broadcast_shards(
    obj: Any,
    method: str,
    kwargs: Dict[str, Any],
    shards: Sequence[Sequence[Any]],
    *,
    workers: int,
    reuse_pool: bool = True,
    on_shard: Optional[Callable[[int, List[Any]], None]] = None,
) -> List[List[Any]]:
    """Gathering wrapper over :func:`iter_broadcast_shards`.

    ``on_shard(index, results)`` fires as each shard lands (completion
    order), while the returned list is always in shard order.
    """
    results: List[List[Any]] = [[] for _ in shards]
    for index, shard_result in iter_broadcast_shards(
        obj, method, kwargs, shards, workers=workers, reuse_pool=reuse_pool
    ):
        results[index] = shard_result
        if on_shard is not None:
            on_shard(index, shard_result)
    return results


def _destroy_broadcast(epoch: str) -> None:
    with _LOCK:
        broadcast = _BROADCASTS.pop(epoch, None)
    if broadcast is not None:
        broadcast.destroy()


# --------------------------------------------------------------------------
# Worker-side plumbing.  One cache entry per broadcast epoch: the first task
# of an epoch attaches the segment, unpickles, closes the attachment and
# caches the bound call; every later task of that epoch is a dict hit.
# --------------------------------------------------------------------------
_WORKER_CACHE: Dict[str, Tuple[Callable, Dict[str, Any]]] = {}


def _attach_payload(name: str, size: int) -> bytes:
    """Read a broadcast payload out of shared memory without tracking it.

    The attachment must stay invisible to the :mod:`multiprocessing`
    resource tracker: under the ``fork`` start method workers share the
    parent's tracker, so a worker-side register (Python < 3.13 auto-tracks
    attachments) or unregister would corrupt the parent's bookkeeping of
    the segment it owns.  On POSIX the payload is therefore read through
    the raw ``shm_open``/``mmap`` calls; elsewhere the
    :class:`~multiprocessing.shared_memory.SharedMemory` attachment is
    used with ``track=False`` where available.  Only the parent ever
    unlinks.
    """
    if size == 0:
        return b""
    try:
        import _posixshmem  # POSIX-only CPython accelerator module
    except ImportError:
        _posixshmem = None
    if _posixshmem is not None:
        import mmap
        import os

        fd = _posixshmem.shm_open("/" + name, os.O_RDONLY, mode=0o600)
        try:
            with mmap.mmap(fd, size, prot=mmap.PROT_READ) as view:
                return bytes(view[:size])
        finally:
            os.close(fd)
    try:
        shm = shared_memory.SharedMemory(name=name, track=False)  # type: ignore[call-arg]
    except TypeError:  # Python < 3.13: no track= parameter
        shm = shared_memory.SharedMemory(name=name)
    try:
        return bytes(shm.buf[:size])
    finally:
        shm.close()


def _run_shard(handle: Tuple[str, str, int], items: List[Any]) -> List[Any]:
    """Execute one shard inside a worker against the cached broadcast."""
    epoch, name, size = handle
    cached = _WORKER_CACHE.get(epoch)
    if cached is None:
        obj, method, kwargs = pickle.loads(_attach_payload(name, size))
        cached = (getattr(obj, method), kwargs)
        while len(_WORKER_CACHE) >= _MAX_BROADCASTS:  # keep worker memory flat
            _WORKER_CACHE.pop(next(iter(_WORKER_CACHE)))
        _WORKER_CACHE[epoch] = cached
    call, kwargs = cached
    return [call(item, **kwargs) for item in items]
