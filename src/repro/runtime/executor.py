"""Backend-pluggable parallel mapping with sharding and ordered gathering.

Three backends cover the practical execution regimes of this codebase:

``"serial"``
    A plain loop in the calling thread.  Zero overhead, always available,
    and the reference semantics every other backend must reproduce exactly.
``"thread"``
    A :class:`~concurrent.futures.ThreadPoolExecutor`.  Useful when the
    mapped function releases the GIL (NumPy-heavy work, I/O); pure-python
    decoding gains little.  This is the pre-runtime behaviour of
    ``workers=N`` and remains the default backend everywhere.
``"process"``
    A :class:`~concurrent.futures.ProcessPoolExecutor` over contiguous
    shards of the input.  The only backend that scales GIL-bound decoding
    across cores.  :meth:`Executor.map_broadcast` pickles the target object
    (e.g. a fitted annotator) to each worker **once per pool** through the
    pool initializer — per-item tasks ship only the items.

Every backend returns results in input order regardless of completion
order, and every backend produces bit-identical results for deterministic
functions — the process backend merely moves the computation, it never
changes it (asserted by the protocol conformance suite).
"""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

ItemT = TypeVar("ItemT")
ResultT = TypeVar("ResultT")

#: Valid values of the ``backend=`` parameter accepted across the codebase.
BACKEND_NAMES: Tuple[str, str, str] = ("serial", "thread", "process")

#: Shards per worker for the process backend.  More shards than workers
#: smooths imbalance between shards (sequences differ in length) while the
#: once-per-pool broadcast keeps the per-shard overhead to the items alone.
_SHARDS_PER_WORKER = 4


def validate_workers(workers: Optional[int]) -> int:
    """Normalise and validate a ``workers`` argument.

    ``None`` means "no parallelism requested" and normalises to 1.  Any
    explicit value below 1 is rejected — uniformly, before any work-size
    fast path, so ``workers=0`` fails the same way for empty, single-item
    and large batches.
    """
    if workers is None:
        return 1
    if not isinstance(workers, int) or isinstance(workers, bool):
        raise TypeError(f"workers must be an int or None, got {workers!r}")
    if workers < 1:
        raise ValueError(f"workers must be at least 1, got {workers}")
    return workers


def resolve_backend(backend: str) -> str:
    """Validate a ``backend`` name against :data:`BACKEND_NAMES`."""
    if backend not in BACKEND_NAMES:
        raise ValueError(f"backend must be one of {BACKEND_NAMES}, got {backend!r}")
    return backend


def shard_indices(n_items: int, shards: int) -> List[Tuple[int, int]]:
    """Split ``range(n_items)`` into at most ``shards`` contiguous slices.

    Returns ``(start, stop)`` pairs that cover the range exactly once, in
    order, with sizes differing by at most one (the first ``n_items %
    shards`` shards get the extra item).  Empty input yields no shards.
    """
    if shards < 1:
        raise ValueError(f"shards must be at least 1, got {shards}")
    shards = min(shards, n_items)
    bounds: List[Tuple[int, int]] = []
    start = 0
    for k in range(shards):
        size = n_items // shards + (1 if k < n_items % shards else 0)
        bounds.append((start, start + size))
        start += size
    return bounds


# --------------------------------------------------------------------------
# Process-backend worker plumbing.  The broadcast payload is delivered to
# each worker exactly once through the pool initializer and stashed in a
# module global; shard tasks then reference it implicitly, so a task ships
# only its slice of the items.
# --------------------------------------------------------------------------
_BROADCAST: Dict[str, Any] = {}


def _broadcast_initializer(payload: bytes) -> None:
    """Install the pickled ``(obj, method, kwargs)`` broadcast in this worker.

    Unpickling happens here, in the worker, even under the ``fork`` start
    method — so behaviour matches ``spawn`` platforms and the broadcast
    cost is paid once per worker process, not once per item.
    """
    obj, method, kwargs = pickle.loads(payload)
    _BROADCAST["call"] = getattr(obj, method)
    _BROADCAST["kwargs"] = kwargs


def _broadcast_shard(items: Sequence) -> List:
    """Map the broadcast callable over one shard inside a worker."""
    call = _BROADCAST["call"]
    kwargs = _BROADCAST["kwargs"]
    return [call(item, **kwargs) for item in items]


def _function_shard(payload: Tuple[bytes, Sequence]) -> List:
    """Map a per-task pickled function over one shard inside a worker."""
    blob, items = payload
    func = pickle.loads(blob)
    return [func(item) for item in items]


class Executor:
    """Maps functions over datasets through a selectable execution backend.

    An :class:`Executor` is cheap to construct and holds no pool between
    calls — each :meth:`map`/:meth:`map_broadcast` creates, uses and
    disposes its pool, so there is no lifecycle to manage and no state to
    leak between batches.

    ``workers`` follows the historical convention: ``None`` or 1 runs
    serially whatever the backend (there is nothing to fan out), values
    below 1 raise :class:`ValueError` unconditionally.
    """

    def __init__(self, backend: str = "serial", workers: Optional[int] = None):
        self.backend = resolve_backend(backend)
        self.workers = validate_workers(workers)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Executor(backend={self.backend!r}, workers={self.workers})"

    # ------------------------------------------------------------- execution
    def _effective_workers(self, n_items: int) -> int:
        return max(1, min(self.workers, n_items))

    def map(
        self, func: Callable[[ItemT], ResultT], items: Sequence[ItemT]
    ) -> List[ResultT]:
        """Map ``func`` over ``items``; results come back in input order.

        With the process backend ``func`` and the items must be picklable;
        ``func`` is shipped once per shard.  Prefer :meth:`map_broadcast`
        when the callable is a method of a heavy object — it ships the
        object once per worker instead.
        """
        workers = self._effective_workers(len(items))
        if workers == 1 or self.backend == "serial":
            return [func(item) for item in items]
        if self.backend == "thread":
            with ThreadPoolExecutor(max_workers=workers) as pool:
                return list(pool.map(func, items))
        blob = pickle.dumps(func)
        payloads = [
            (blob, [items[i] for i in range(start, stop)])
            for start, stop in shard_indices(len(items), workers * _SHARDS_PER_WORKER)
        ]
        with ProcessPoolExecutor(max_workers=workers) as pool:
            gathered = list(pool.map(_function_shard, payloads))
        return [result for shard in gathered for result in shard]

    def map_broadcast(
        self,
        obj: Any,
        method: str,
        items: Sequence[ItemT],
        **kwargs: Any,
    ) -> List[ResultT]:
        """Map ``getattr(obj, method)(item, **kwargs)`` over ``items``.

        The workhorse of the batch annotation paths.  For the process
        backend, ``obj`` (typically a fitted annotator), the method name and
        the keyword arguments are pickled **once** and broadcast to every
        worker through the pool initializer; the per-shard tasks carry only
        their slice of ``items``.  Results keep input order.
        """
        getattr(obj, method)  # fail fast on typos, before any pool spins up
        workers = self._effective_workers(len(items))
        if workers == 1 or self.backend == "serial":
            call = getattr(obj, method)
            return [call(item, **kwargs) for item in items]
        if self.backend == "thread":
            call = getattr(obj, method)
            with ThreadPoolExecutor(max_workers=workers) as pool:
                return list(pool.map(lambda item: call(item, **kwargs), items))
        payload = pickle.dumps((obj, method, kwargs))
        shards = [
            [items[i] for i in range(start, stop)]
            for start, stop in shard_indices(len(items), workers * _SHARDS_PER_WORKER)
        ]
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_broadcast_initializer,
            initargs=(payload,),
        ) as pool:
            gathered = list(pool.map(_broadcast_shard, shards))
        return [result for shard in gathered for result in shard]


def map_sharded(
    func: Callable[[ItemT], ResultT],
    items: Sequence[ItemT],
    *,
    workers: Optional[int] = None,
    backend: str = "serial",
) -> List[ResultT]:
    """One-shot convenience wrapper: ``Executor(backend, workers).map(...)``."""
    return Executor(backend=backend, workers=workers).map(func, items)


def map_with_workers(
    func: Callable[[ItemT], ResultT],
    items: Sequence[ItemT],
    workers: Optional[int],
    *,
    backend: str = "thread",
) -> List[ResultT]:
    """Map ``func`` over ``items`` through an :class:`Executor`.

    The seed-era batch-mapping entry point (formerly the
    ``repro.core.parallel`` shim, now retired): ``workers`` of ``None`` or
    1 runs serially; larger counts fan out over ``backend`` (``"thread"``
    by default, matching the historical behaviour).  Results always come
    back in input order, and invalid ``workers`` values (< 1) raise
    :class:`ValueError` regardless of the batch size.  ``func`` must be
    thread-safe for the thread backend and picklable for the process
    backend.
    """
    return Executor(backend=backend, workers=workers).map(func, items)
