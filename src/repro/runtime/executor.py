"""Backend-pluggable parallel mapping with sharding and ordered gathering.

Three backends cover the practical execution regimes of this codebase:

``"serial"``
    A plain loop in the calling thread.  Zero overhead, always available,
    and the reference semantics every other backend must reproduce exactly.
``"thread"``
    A :class:`~concurrent.futures.ThreadPoolExecutor`.  Useful when the
    mapped function releases the GIL (NumPy-heavy work, I/O); pure-python
    decoding gains little.  This is the pre-runtime behaviour of
    ``workers=N`` and remains the default backend everywhere.
``"process"``
    A persistent :class:`~concurrent.futures.ProcessPoolExecutor` over
    contiguous shards of the input (see :mod:`repro.runtime.pool`).  The
    only backend that scales GIL-bound decoding across cores.  The target
    object (e.g. a fitted annotator) is broadcast through a content-
    addressed shared-memory segment: one pickle per distinct payload, one
    unpickle per worker — per-shard tasks ship only the items.

An :class:`Executor` is configured by an
:class:`~repro.runtime.policy.ExecutionPolicy`; the historical
``backend=``/``workers=`` constructor keywords keep working through the
policy deprecation shim.

Every backend returns results in input order regardless of completion
order (:meth:`Executor.map_broadcast_stream` additionally exposes chunks
in *completion* order, tagged with their input position), and every
backend produces bit-identical results for deterministic functions — the
process backend merely moves the computation, it never changes it
(asserted by the protocol conformance suite).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor, as_completed
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (policy imports us)
    from repro.runtime.policy import ExecutionPolicy

ItemT = TypeVar("ItemT")
ResultT = TypeVar("ResultT")

#: Valid values of the ``backend=`` parameter accepted across the codebase.
BACKEND_NAMES: Tuple[str, str, str] = ("serial", "thread", "process")

#: Shards per worker for the process backend.  More shards than workers
#: smooths imbalance between shards (sequences differ in length) while the
#: once-per-pool broadcast keeps the per-shard overhead to the items alone.
_SHARDS_PER_WORKER = 4


def validate_workers(workers: Optional[int]) -> int:
    """Normalise and validate a ``workers`` argument.

    ``None`` means "no parallelism requested" and normalises to 1.  Any
    explicit value below 1 is rejected — uniformly, before any work-size
    fast path, so ``workers=0`` fails the same way for empty, single-item
    and large batches.
    """
    if workers is None:
        return 1
    if not isinstance(workers, int) or isinstance(workers, bool):
        raise TypeError(f"workers must be an int or None, got {workers!r}")
    if workers < 1:
        raise ValueError(f"workers must be at least 1, got {workers}")
    return workers


def resolve_backend(backend: str) -> str:
    """Validate a ``backend`` name against :data:`BACKEND_NAMES`."""
    if backend not in BACKEND_NAMES:
        raise ValueError(f"backend must be one of {BACKEND_NAMES}, got {backend!r}")
    return backend


def shard_indices(n_items: int, shards: int) -> List[Tuple[int, int]]:
    """Split ``range(n_items)`` into at most ``shards`` contiguous slices.

    Returns ``(start, stop)`` pairs that cover the range exactly once, in
    order, with sizes differing by at most one (the first ``n_items %
    shards`` shards get the extra item).  Empty input yields no shards.
    """
    if shards < 1:
        raise ValueError(f"shards must be at least 1, got {shards}")
    shards = min(shards, n_items)
    bounds: List[Tuple[int, int]] = []
    start = 0
    for k in range(shards):
        size = n_items // shards + (1 if k < n_items % shards else 0)
        bounds.append((start, start + size))
        start += size
    return bounds


class Executor:
    """Maps functions over datasets through a selectable execution backend.

    An :class:`Executor` is cheap to construct: it is a thin view over an
    :class:`~repro.runtime.policy.ExecutionPolicy`.  Serial and thread
    backends hold no state between calls; the process backend borrows the
    interpreter-wide persistent pool from :mod:`repro.runtime.pool` when
    ``policy.reuse_pool`` is set (the default), so repeated batches reuse
    warm workers — call :func:`repro.runtime.pool.shutdown_pools` to
    reclaim them early, or let the :mod:`atexit` hook do it.

    ``workers`` follows the historical convention: ``None`` or 1 runs
    serially whatever the backend (there is nothing to fan out), values
    below 1 raise :class:`ValueError` unconditionally.
    """

    def __init__(
        self,
        backend: Optional[str] = None,
        workers: Optional[int] = None,
        *,
        policy: Optional["ExecutionPolicy"] = None,
    ):
        from repro.runtime.policy import ExecutionPolicy, resolve_policy, UNSET

        if policy is None and backend is None and workers is None:
            policy = ExecutionPolicy(backend="serial")
        else:
            policy = resolve_policy(
                policy,
                backend=UNSET if backend is None else backend,
                workers=UNSET if workers is None else workers,
                default=ExecutionPolicy(backend="serial"),
                owner="Executor()",
            )
        self.policy = policy
        self.backend = policy.backend
        self.workers = policy.effective_workers

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Executor(policy={self.policy!r})"

    # ------------------------------------------------------------- execution
    def _effective_workers(self, n_items: int) -> int:
        return max(1, min(self.workers, n_items))

    def map(
        self, func: Callable[[ItemT], ResultT], items: Sequence[ItemT]
    ) -> List[ResultT]:
        """Map ``func`` over ``items``; results come back in input order.

        With the process backend ``func`` and the items must be picklable;
        ``func`` is broadcast once through shared memory (as the
        ``__call__`` target).  Prefer :meth:`map_broadcast` when the
        callable is a method of a heavy object — same mechanism, clearer
        intent.
        """
        items = list(items)
        workers = self._effective_workers(len(items))
        if workers == 1 or self.backend == "serial":
            return [func(item) for item in items]
        if self.backend == "thread":
            with ThreadPoolExecutor(max_workers=workers) as tpool:
                return list(tpool.map(func, items))
        from repro.runtime import pool as pool_mod

        shards = [
            items[start:stop]
            for start, stop in shard_indices(len(items), workers * _SHARDS_PER_WORKER)
        ]
        gathered = pool_mod.run_broadcast_shards(
            func,
            "__call__",
            {},
            shards,
            workers=workers,
            reuse_pool=self.policy.reuse_pool,
        )
        return [result for shard in gathered for result in shard]

    def map_broadcast(
        self,
        obj: Any,
        method: str,
        items: Sequence[ItemT],
        **kwargs: Any,
    ) -> List[ResultT]:
        """Map ``getattr(obj, method)(item, **kwargs)`` over ``items``.

        The workhorse of the batch annotation paths.  For the process
        backend, ``obj`` (typically a fitted annotator), the method name
        and the keyword arguments are published to a shared-memory
        broadcast segment **once per distinct payload**; per-shard tasks
        carry only their slice of ``items`` and warm workers cache the
        unpickled object across calls.  Results keep input order.
        """
        items = list(items)
        results: List[ResultT] = [None] * len(items)  # type: ignore[list-item]
        for start, stop, chunk in self.map_broadcast_stream(
            obj, method, items, **kwargs
        ):
            results[start:stop] = chunk
        return results

    def map_broadcast_stream(
        self,
        obj: Any,
        method: str,
        items: Sequence[ItemT],
        **kwargs: Any,
    ) -> Iterator[Tuple[int, int, List[ResultT]]]:
        """Stream ``map_broadcast`` results chunk by chunk as they finish.

        Yields ``(start, stop, results)`` triples where ``results`` covers
        ``items[start:stop]``.  Chunks arrive in *completion* order (input
        order under the serial backend), so a consumer can publish partial
        results while later shards are still computing — the chunked
        streaming gather behind :meth:`AnnotationService.annotate_batch`.
        Every input position is covered exactly once.
        """
        # Validate eagerly (this is not a generator function) so typos and
        # bad arguments surface at the call, before any pool spins up.
        call = getattr(obj, method)
        items = list(items)
        return self._stream(call, obj, method, items, kwargs)

    def _stream(
        self,
        call: Callable[..., ResultT],
        obj: Any,
        method: str,
        items: List[ItemT],
        kwargs: dict,
    ) -> Iterator[Tuple[int, int, List[ResultT]]]:
        if not items:
            return
        workers = self._effective_workers(len(items))
        bounds = shard_indices(len(items), workers * _SHARDS_PER_WORKER)
        if workers == 1 or self.backend == "serial":
            for start, stop in bounds:
                yield start, stop, [call(items[i], **kwargs) for i in range(start, stop)]
            return
        if self.backend == "thread":

            def _run(start: int, stop: int) -> List[ResultT]:
                return [call(items[i], **kwargs) for i in range(start, stop)]

            with ThreadPoolExecutor(max_workers=workers) as tpool:
                futures = {
                    tpool.submit(_run, start, stop): (start, stop)
                    for start, stop in bounds
                }
                for future in as_completed(futures):
                    start, stop = futures[future]
                    yield start, stop, future.result()
            return
        from repro.runtime import pool as pool_mod

        shards = [items[start:stop] for start, stop in bounds]
        for index, shard_result in pool_mod.iter_broadcast_shards(
            obj, method, kwargs, shards, workers=workers,
            reuse_pool=self.policy.reuse_pool,
        ):
            start, stop = bounds[index]
            yield start, stop, shard_result


def map_sharded(
    func: Callable[[ItemT], ResultT],
    items: Sequence[ItemT],
    *,
    workers: Optional[int] = None,
    backend: str = "serial",
) -> List[ResultT]:
    """One-shot convenience wrapper: ``Executor(backend, workers).map(...)``."""
    from repro.runtime.policy import ExecutionPolicy

    policy = ExecutionPolicy(backend=backend, workers=workers)
    return Executor(policy=policy).map(func, items)


def map_with_workers(
    func: Callable[[ItemT], ResultT],
    items: Sequence[ItemT],
    workers: Optional[int],
    *,
    backend: str = "thread",
) -> List[ResultT]:
    """Map ``func`` over ``items`` through an :class:`Executor`.

    The seed-era batch-mapping entry point (formerly the
    ``repro.core.parallel`` shim, now retired): ``workers`` of ``None`` or
    1 runs serially; larger counts fan out over ``backend`` (``"thread"``
    by default, matching the historical behaviour).  Results always come
    back in input order, and invalid ``workers`` values (< 1) raise
    :class:`ValueError` regardless of the batch size.  ``func`` must be
    thread-safe for the thread backend and picklable for the process
    backend.
    """
    from repro.runtime.policy import ExecutionPolicy

    policy = ExecutionPolicy(backend=backend, workers=workers)
    return Executor(policy=policy).map(func, items)
