"""Process-sharded execution runtime.

The runtime layer is the one place batch work is parallelised.  It offers:

* :class:`ExecutionPolicy` — the one frozen value object describing *how*
  batch work executes (backend, workers, length-bucketed batching, pool
  reuse).  Every batch surface in the codebase (the ``*_many`` protocol
  methods, the evaluation harness, the experiment runners, the service
  batch path and the bench CLI) accepts ``policy=``; the legacy
  ``workers=``/``backend=`` keyword pair still works through
  :func:`resolve_policy` but emits a :class:`DeprecationWarning`;
* :class:`Executor` — a backend-pluggable mapper (``"serial"``,
  ``"thread"``, ``"process"``) with contiguous dataset sharding, ordered
  result gathering, chunked streaming gather
  (:meth:`Executor.map_broadcast_stream`) and shared-memory model
  broadcast;
* the persistent-pool machinery (:mod:`repro.runtime.pool`) — one warm
  :class:`~concurrent.futures.ProcessPoolExecutor` per worker count for
  the life of the interpreter, with content-addressed shared-memory
  broadcast segments and :func:`shutdown_pools` for explicit teardown
  (also registered with :mod:`atexit`);
* :class:`DerivedStateCache` — a bounded, thread-safe LRU for expensive
  derived state (prepared sequences with their potential tables), keyed by
  content fingerprints so repeated decodes of the same model skip rebuilds;
* the fingerprint helpers (:func:`config_fingerprint`,
  :func:`sequence_fingerprint`, :func:`weights_fingerprint`) used to build
  those keys.
"""

from repro.runtime.cache import (
    CacheStats,
    DerivedStateCache,
    config_fingerprint,
    fingerprint,
    sequence_fingerprint,
    space_fingerprint,
    weights_fingerprint,
)
from repro.runtime.executor import (
    BACKEND_NAMES,
    Executor,
    map_sharded,
    map_with_workers,
    resolve_backend,
    shard_indices,
    validate_workers,
)
from repro.runtime.policy import (
    DEFAULT_BUCKET_SIZE,
    UNSET,
    ExecutionPolicy,
    resolve_policy,
)
from repro.runtime.pool import (
    active_broadcast_epochs,
    active_pool_workers,
    shutdown_pools,
)

__all__ = [
    "BACKEND_NAMES",
    "CacheStats",
    "DEFAULT_BUCKET_SIZE",
    "DerivedStateCache",
    "ExecutionPolicy",
    "Executor",
    "UNSET",
    "active_broadcast_epochs",
    "active_pool_workers",
    "config_fingerprint",
    "fingerprint",
    "map_sharded",
    "map_with_workers",
    "resolve_backend",
    "resolve_policy",
    "sequence_fingerprint",
    "shard_indices",
    "shutdown_pools",
    "space_fingerprint",
    "validate_workers",
    "weights_fingerprint",
]
