"""Process-sharded execution runtime.

The runtime layer is the one place batch work is parallelised.  It offers:

* :class:`Executor` — a backend-pluggable mapper (``"serial"``, ``"thread"``,
  ``"process"``) with contiguous dataset sharding, ordered result gathering
  and per-worker model broadcast (a fitted annotator is pickled to each pool
  worker once per pool, not once per item);
* :class:`DerivedStateCache` — a bounded, thread-safe LRU for expensive
  derived state (prepared sequences with their potential tables), keyed by
  content fingerprints so repeated decodes of the same model skip rebuilds;
* the fingerprint helpers (:func:`config_fingerprint`,
  :func:`sequence_fingerprint`, :func:`weights_fingerprint`) used to build
  those keys.

The ``*_many`` batch methods, the evaluation harness, the experiment
runners and the service layer all accept a ``backend=`` selecting the
execution strategy; :func:`map_with_workers` (formerly the
``repro.core.parallel`` shim, now retired) is the thread-first one-shot
mapper for anything else.
"""

from repro.runtime.cache import (
    CacheStats,
    DerivedStateCache,
    config_fingerprint,
    fingerprint,
    sequence_fingerprint,
    space_fingerprint,
    weights_fingerprint,
)
from repro.runtime.executor import (
    BACKEND_NAMES,
    Executor,
    map_sharded,
    map_with_workers,
    resolve_backend,
    shard_indices,
    validate_workers,
)

__all__ = [
    "BACKEND_NAMES",
    "CacheStats",
    "DerivedStateCache",
    "Executor",
    "config_fingerprint",
    "fingerprint",
    "map_sharded",
    "map_with_workers",
    "resolve_backend",
    "sequence_fingerprint",
    "shard_indices",
    "space_fingerprint",
    "validate_workers",
    "weights_fingerprint",
]
