"""Content-fingerprint-keyed cache for expensive derived state.

Decoding a p-sequence pays for label-independent preparation before any
inference happens: ST-DBSCAN density labels, candidate-region queries,
per-step distances, and — on the vectorized engine — the potential tables.
All of it depends only on the model configuration, the venue and the raw
sequence, so it can be reused whenever the same model decodes the same
sequence again (streaming re-decodes, repeated experiment runs, agreement
checks between execution backends).

:class:`DerivedStateCache` is a bounded, thread-safe LRU mapping content
fingerprints to built state.  Keys are produced by the fingerprint helpers
below: :func:`config_fingerprint` hashes every field of a
:class:`~repro.core.config.C2MNConfig`, :func:`sequence_fingerprint` hashes
the raw records of a p-sequence, :func:`weights_fingerprint` hashes a weight
vector.  Two configs (or sequences) with equal content produce equal keys
across processes and sessions — the keys are stable hashes, not ``id()``.

Pickling a cache (e.g. inside an annotator broadcast to process-pool
workers) transfers only its settings, never its entries: workers start
cold rather than shipping megabytes of derived tables through the pipe.
"""

from __future__ import annotations

import hashlib
import struct
import threading
from collections import OrderedDict
from dataclasses import asdict, dataclass, is_dataclass
from typing import Any, Callable, Dict, Optional

#: Default entry bound — roughly one small evaluation split per model.
DEFAULT_MAX_ENTRIES = 256


def fingerprint(*parts: Any) -> str:
    """A stable hex digest over heterogeneous parts.

    Strings and bytes hash as their raw bytes; everything else hashes as its
    ``repr``.  Part boundaries are length-prefixed so ``("ab", "c")`` and
    ``("a", "bc")`` cannot collide.
    """
    digest = hashlib.blake2b(digest_size=16)
    for part in parts:
        if isinstance(part, bytes):
            blob = part
        elif isinstance(part, str):
            blob = part.encode("utf-8")
        else:
            blob = repr(part).encode("utf-8")
        digest.update(struct.pack("<Q", len(blob)))
        digest.update(blob)
    return digest.hexdigest()


def config_fingerprint(config: Any) -> str:
    """Fingerprint a configuration dataclass by its full field contents."""
    if is_dataclass(config) and not isinstance(config, type):
        fields: Dict[str, Any] = asdict(config)
        return fingerprint(type(config).__name__, sorted(fields.items()))
    return fingerprint(type(config).__name__, config)


def sequence_fingerprint(sequence: Any) -> str:
    """Fingerprint a p-sequence by object id and raw record content."""
    blob = bytearray()
    for record in sequence:
        location = record.location
        blob += struct.pack(
            "<dddq", location.x, location.y, record.timestamp, location.floor
        )
    return fingerprint(getattr(sequence, "object_id", ""), bytes(blob))


def space_fingerprint(space: Any) -> str:
    """Fingerprint an indoor space by its semantic-region content.

    Hashes, per region: id, name, floor, owning partitions and the vertices
    of every geometry — the exact inputs the label-independent preparation
    (candidate queries, overlaps, distances) depends on.  Two venues that
    differ anywhere a decode could notice produce different digests, so a
    :class:`DerivedStateCache` shared across annotators on different venues
    never serves one venue's prepared state to another.
    """
    blob = bytearray()
    for region in getattr(space, "regions", []):
        header = f"{region.region_id}|{region.name}|{region.floor}|{region.partition_ids}"
        blob += header.encode("utf-8")
        for geometry in getattr(region, "geometries", []):
            for vertex in getattr(geometry, "vertices", []):
                blob += struct.pack("<dd", vertex.x, vertex.y)
    return fingerprint(type(space).__name__, bytes(blob))


def weights_fingerprint(weights: Any) -> str:
    """Fingerprint a weight vector (NumPy array or sequence of floats)."""
    tobytes = getattr(weights, "tobytes", None)
    if tobytes is not None:
        return fingerprint(getattr(weights, "shape", None), tobytes())
    return fingerprint(tuple(float(w) for w in weights))


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of one :class:`DerivedStateCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class DerivedStateCache:
    """Bounded thread-safe LRU from content fingerprints to derived state.

    ``get_or_build(key, builder)`` is the primary interface: it returns the
    cached value for ``key`` or invokes ``builder()`` and caches the result.
    The builder runs outside the lock, so a slow build never blocks other
    threads' lookups; if two threads race to build the same key, the first
    stored value wins and both callers observe it on their next lookup.
    """

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES):
        if max_entries < 1:
            raise ValueError(f"max_entries must be at least 1, got {max_entries}")
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: str) -> Optional[Any]:
        """Return the value for ``key`` (refreshing recency) or ``None``."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return self._entries[key]
            self.stats.misses += 1
            return None

    def put(self, key: str, value: Any) -> None:
        """Insert ``key`` → ``value``, evicting the least recent on overflow."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = value
                return
            self._entries[key] = value
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def get_or_build(self, key: str, builder: Callable[[], Any]) -> Any:
        """Return the cached value for ``key``, building it on a miss."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return self._entries[key]
            self.stats.misses += 1
        value = builder()
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                return self._entries[key]
            self._entries[key] = value
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
        return value

    def clear(self) -> None:
        """Drop all entries; the counters keep accumulating."""
        with self._lock:
            self._entries.clear()

    # ----------------------------------------------------------- persistence
    def __getstate__(self) -> Dict[str, Any]:
        """Pickle only the settings — entries and counters stay behind."""
        return {"max_entries": self.max_entries}

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__init__(max_entries=state.get("max_entries", DEFAULT_MAX_ENTRIES))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"DerivedStateCache(entries={len(self._entries)}/{self.max_entries}, "
            f"hits={self.stats.hits}, misses={self.stats.misses})"
        )
