"""The unified execution policy shared by every batch surface.

Before this module, every batch entry point in the codebase — the
``*_many`` protocol methods, the evaluation harness, the experiment
runners, the service batch path, the fuzz oracles and the bench CLI —
duplicated a ``workers=``/``backend=`` keyword pair and forwarded it by
hand.  :class:`ExecutionPolicy` replaces that pair with one frozen value
object describing *how* batch work executes:

``backend`` / ``workers``
    The execution backend (:data:`repro.runtime.executor.BACKEND_NAMES`)
    and its fan-out width, exactly as before.
``batch`` / ``bucket_size``
    Whether ``*_many`` calls route through the length-bucketed batch
    decoder (:mod:`repro.crf.batch`) and how many sequences one bucket
    may hold.  Bucketing groups similar-length sequences so one dispatch
    covers a whole bucket, and coalesces bitwise-identical sequences so
    duplicated traffic is decoded once.
``reuse_pool``
    Whether the process backend keeps its worker pool alive between
    calls and broadcasts the target object through a shared-memory
    segment (:mod:`repro.runtime.pool`) instead of re-spawning a pool
    and re-shipping the pickle on every call.

Old call sites keep working: every migrated API still accepts the legacy
``workers=``/``backend=`` keywords through :func:`resolve_policy`, which
converts them into a policy and emits a :class:`DeprecationWarning`.  No
call site inside ``src/`` uses the legacy spelling anymore.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, fields, replace
from typing import Any, Dict, Optional

from repro.runtime.executor import resolve_backend, validate_workers

#: Sentinel distinguishing "argument not passed" from an explicit ``None``
#: in the deprecation shims (``workers=None`` is a meaningful legacy value).
UNSET: Any = type("_Unset", (), {"__repr__": lambda self: "UNSET"})()

#: Default number of sequences per length bucket.  Large enough that the
#: tiny/small workloads fit in a handful of buckets (amortising dispatch),
#: small enough that process workers get several buckets to balance.
DEFAULT_BUCKET_SIZE = 32


@dataclass(frozen=True)
class ExecutionPolicy:
    """How batch annotation work executes, as one immutable value.

    The defaults reproduce the historical behaviour of the raw keyword
    pair (``backend="thread"``, ``workers=None`` — i.e. serial until a
    worker count is requested) with batching and pool reuse on.
    """

    backend: str = "thread"
    workers: Optional[int] = None
    batch: bool = True
    bucket_size: int = DEFAULT_BUCKET_SIZE
    reuse_pool: bool = True

    def __post_init__(self):
        resolve_backend(self.backend)
        validate_workers(self.workers)
        if not isinstance(self.bucket_size, int) or isinstance(self.bucket_size, bool):
            raise TypeError(
                f"bucket_size must be an int, got {self.bucket_size!r}"
            )
        if self.bucket_size < 1:
            raise ValueError(
                f"bucket_size must be at least 1, got {self.bucket_size}"
            )
        for flag in ("batch", "reuse_pool"):
            if not isinstance(getattr(self, flag), bool):
                raise TypeError(f"{flag} must be a bool, got {getattr(self, flag)!r}")

    # ---------------------------------------------------------- constructors
    @classmethod
    def serial(cls, **overrides: Any) -> "ExecutionPolicy":
        """A strictly in-process, single-worker policy."""
        return cls(backend="serial", workers=None, **overrides)

    @classmethod
    def threads(cls, workers: int, **overrides: Any) -> "ExecutionPolicy":
        """A thread-pool policy with ``workers`` threads."""
        return cls(backend="thread", workers=workers, **overrides)

    @classmethod
    def processes(cls, workers: int, **overrides: Any) -> "ExecutionPolicy":
        """A process-pool policy with ``workers`` worker processes."""
        return cls(backend="process", workers=workers, **overrides)

    # -------------------------------------------------------------- accessors
    @property
    def effective_workers(self) -> int:
        """The normalised worker count (``None`` means 1)."""
        return validate_workers(self.workers)

    def effective_bucket_size(self, n_items: int) -> int:
        """The bucket cap actually used for a batch of ``n_items``.

        Serial and single-worker runs use :attr:`bucket_size` unchanged —
        bigger buckets mean more coalescing and less dispatch overhead.
        Parallel runs shrink the cap so the batch splits into enough
        buckets to keep every worker busy (matching the executor's
        shards-per-worker fan-out); :attr:`bucket_size` stays the upper
        bound either way.
        """
        from repro.runtime.executor import _SHARDS_PER_WORKER

        workers = self.effective_workers
        if workers <= 1 or self.backend == "serial" or n_items <= 1:
            return self.bucket_size
        balanced = -(-n_items // (workers * _SHARDS_PER_WORKER))  # ceil div
        return max(1, min(self.bucket_size, balanced))

    def with_(self, **changes: Any) -> "ExecutionPolicy":
        """A copy with the given fields replaced (validation re-runs)."""
        return replace(self, **changes)

    # ------------------------------------------------------------ persistence
    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serialisable mapping (inverse of :meth:`from_dict`)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ExecutionPolicy":
        """Rebuild a policy from :meth:`to_dict` output.

        Unknown keys are ignored so newer files load on older code and
        vice versa; missing keys take the field default.
        """
        known = {f.name for f in fields(cls)}
        return cls(**{key: value for key, value in payload.items() if key in known})


def resolve_policy(
    policy: Optional[ExecutionPolicy] = None,
    *,
    workers: Any = UNSET,
    backend: Any = UNSET,
    default: Optional[ExecutionPolicy] = None,
    owner: str = "this API",
) -> ExecutionPolicy:
    """Normalise the (policy, legacy kwargs) triple every migrated API accepts.

    Exactly one spelling may be used per call:

    * ``policy=...`` — the current API; returned as-is.
    * ``workers=``/``backend=`` — the pre-policy keywords; converted into a
      policy derived from ``default`` and reported once per call site via
      :class:`DeprecationWarning`.
    * neither — ``default`` (or a fresh :class:`ExecutionPolicy`).

    Mixing both spellings raises :class:`TypeError` — silently preferring
    one of two contradictory execution requests would be worse than either.
    """
    legacy = {
        name: value
        for name, value in (("workers", workers), ("backend", backend))
        if value is not UNSET
    }
    if policy is not None:
        if legacy:
            raise TypeError(
                f"pass either policy= or the legacy {sorted(legacy)} keywords "
                f"to {owner}, not both"
            )
        if not isinstance(policy, ExecutionPolicy):
            raise TypeError(
                f"policy must be an ExecutionPolicy, got {type(policy).__name__}"
            )
        return policy
    base = default if default is not None else ExecutionPolicy()
    if legacy:
        warnings.warn(
            f"the workers=/backend= keywords of {owner} are deprecated; "
            f"pass policy=ExecutionPolicy({', '.join(f'{k}={v!r}' for k, v in sorted(legacy.items()))}) "
            "instead",
            DeprecationWarning,
            stacklevel=3,
        )
        return base.with_(**legacy)
    return base


__all__ = [
    "DEFAULT_BUCKET_SIZE",
    "ExecutionPolicy",
    "UNSET",
    "resolve_policy",
]
