"""Accessibility base graph over doors with precomputed shortest distances.

Following Lu et al. [17] (reference [17] of the paper), indoor walking paths
are sequences of doors: to get from partition A to partition B one must leave
A through one of its doors, traverse intermediate partitions door-to-door, and
finally enter B.  The *accessibility base graph* has one node per door and an
edge between two doors whenever they touch the same partition; the edge weight
is the intra-partition Euclidean distance between the two door locations.
Staircases add inter-floor edges with their configured travel distance.

The paper precomputes the shortest indoor distances between all doors
(Section V-B1, "The shortest indoor distances between doors were pre-computed
to speed up computations on MIWD").  We do the same with Dijkstra from every
door, memoised lazily so small floorplans in unit tests do not pay the full
all-pairs cost up front.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import networkx as nx

from repro.indoor.entities import Staircase
from repro.indoor.floorplan import IndoorSpace


class AccessibilityGraph:
    """Door-to-door accessibility graph with shortest-distance queries."""

    def __init__(self, space: IndoorSpace, *, precompute_all_pairs: bool = False):
        self._space = space
        self._graph = nx.Graph()
        self._distances: Dict[int, Dict[int, float]] = {}
        self._build()
        if precompute_all_pairs:
            self.precompute_all_pairs()

    @property
    def graph(self) -> nx.Graph:
        """The underlying networkx graph (nodes are door ids)."""
        return self._graph

    @property
    def number_of_doors(self) -> int:
        return self._graph.number_of_nodes()

    @property
    def number_of_edges(self) -> int:
        return self._graph.number_of_edges()

    # ------------------------------------------------------------------ build
    def _build(self) -> None:
        space = self._space
        for door in space.doors:
            self._graph.add_node(door.door_id, door=door)
        # Intra-partition edges: doors sharing a partition are mutually reachable
        # by walking across that partition.
        for partition in space.partitions:
            doors = space.doors_of_partition(partition.partition_id)
            for i in range(len(doors)):
                for j in range(i + 1, len(doors)):
                    a, b = doors[i], doors[j]
                    weight = a.location.planar.distance_to(b.location.planar)
                    self._add_edge(a.door_id, b.door_id, weight)
        # Staircase edges: connect the nearest door on each end's partition with
        # the staircase travel distance plus the walk to/from the staircase.
        for staircase in space.staircases:
            self._add_staircase(staircase)

    def _add_staircase(self, staircase: Staircase) -> None:
        space = self._space
        lower_doors = space.doors_of_partition(staircase.partition_lower)
        upper_doors = space.doors_of_partition(staircase.partition_upper)
        if not lower_doors or not upper_doors:
            return
        for lower in lower_doors:
            for upper in upper_doors:
                walk_lower = lower.location.planar.distance_to(
                    staircase.location_lower.planar
                )
                walk_upper = upper.location.planar.distance_to(
                    staircase.location_upper.planar
                )
                weight = walk_lower + staircase.travel_distance + walk_upper
                self._add_edge(lower.door_id, upper.door_id, weight)

    def _add_edge(self, a: int, b: int, weight: float) -> None:
        if self._graph.has_edge(a, b):
            if self._graph[a][b]["weight"] <= weight:
                return
        self._graph.add_edge(a, b, weight=weight)

    # ---------------------------------------------------------------- queries
    def precompute_all_pairs(self) -> None:
        """Run Dijkstra from every door and cache the distance maps."""
        for door_id in self._graph.nodes:
            self._ensure_source(door_id)

    def door_distance(self, door_a: int, door_b: int) -> float:
        """Shortest walking distance between two doors (inf if disconnected)."""
        if door_a == door_b:
            return 0.0
        self._ensure_source(door_a)
        return self._distances[door_a].get(door_b, float("inf"))

    def distances_from(self, door_id: int) -> Dict[int, float]:
        """Return the full distance map from one door (cached)."""
        self._ensure_source(door_id)
        return dict(self._distances[door_id])

    def shortest_door_path(self, door_a: int, door_b: int) -> Optional[List[int]]:
        """Return the door-id path between two doors, or None if disconnected."""
        try:
            return nx.dijkstra_path(self._graph, door_a, door_b, weight="weight")
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            return None

    def is_connected(self) -> bool:
        """Return True if every door can reach every other door."""
        if self._graph.number_of_nodes() == 0:
            return True
        return nx.is_connected(self._graph)

    def memory_entries(self) -> int:
        """Number of cached door-to-door distances (reported in Table III/V analogues)."""
        return sum(len(row) for row in self._distances.values())

    # -------------------------------------------------------------- internals
    def _ensure_source(self, door_id: int) -> None:
        if door_id in self._distances:
            return
        if door_id not in self._graph:
            raise KeyError(f"unknown door id {door_id}")
        lengths = nx.single_source_dijkstra_path_length(
            self._graph, door_id, weight="weight"
        )
        self._distances[door_id] = lengths
