"""Deterministic floorplan builders.

Two venues reproduce the paper's evaluation; a third extends it:

* **A multi-floor shopping mall** (stand-in for the seven-floor Hangzhou mall
  of Section V-B).  Each floor is a rectangular slab with a central hallway
  loop and shops along both sides; every shop is one partition and one
  semantic region; staircases connect consecutive floors at both ends.
* **A Vita-like office building** (Section V-C uses the Vita simulator to
  generate a ten-floor building with 1,410 partitions, 2,200 doors and 423
  semantic regions).  Our builder produces the same style of venue: rooms
  along double-loaded corridors, a configurable fraction of rooms promoted to
  semantic regions, and staircases at the corridor ends.
* **A transit-hub/hospital-style concourse** (scenario catalogue): large open
  concourse halls with *few* doors between them and small bays (gates, wards)
  along one edge.  The open halls are themselves semantic regions, so the
  label space mixes big low-density regions with small dense ones — the
  opposite geometry regime of the mall and office venues.

All builders are fully deterministic given their arguments so experiments are
reproducible without storing floorplan files.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

from repro.geometry.point import IndoorPoint
from repro.geometry.polygon import Rectangle
from repro.indoor.entities import Door, Partition, SemanticRegion, Staircase
from repro.indoor.floorplan import IndoorSpace


@dataclass
class _FloorLayout:
    """Book-keeping produced while laying out one floor."""

    hallway_partition_ids: List[int]
    shop_partition_ids: List[int]


def build_mall_space(
    *,
    floors: int = 7,
    shops_per_side: int = 15,
    shop_width: float = 8.0,
    shop_depth: float = 12.0,
    hallway_width: float = 6.0,
    name: str = "grand-mall",
) -> IndoorSpace:
    """Build a multi-floor shopping mall.

    Layout per floor (plan view)::

        +-------------------------------------------+
        |  shop | shop | shop | ... | shop | shop   |   north shops
        +-------------------------------------------+
        |                 hallway                   |
        +-------------------------------------------+
        |  shop | shop | shop | ... | shop | shop   |   south shops
        +-------------------------------------------+

    Every shop is one partition and one semantic region with a door opening
    onto the hallway.  The hallway is split into segments (one per shop column)
    so the accessibility graph has realistic granularity.  The default
    arguments give ``7 * 2 * 15 = 210`` shops, close to the paper's 202
    semantic regions.

    Returns
    -------
    IndoorSpace
        The assembled venue.
    """
    if floors < 1:
        raise ValueError("a mall needs at least one floor")
    if shops_per_side < 1:
        raise ValueError("need at least one shop per side")

    partitions: List[Partition] = []
    doors: List[Door] = []
    regions: List[SemanticRegion] = []
    staircases: List[Staircase] = []

    next_partition = _IdAllocator()
    next_door = _IdAllocator()
    next_region = _IdAllocator()
    next_staircase = _IdAllocator()

    first_hallway_per_floor: List[Tuple[int, int]] = []  # (first, last) hallway pid

    for floor in range(floors):
        layout = _build_mall_floor(
            floor=floor,
            shops_per_side=shops_per_side,
            shop_width=shop_width,
            shop_depth=shop_depth,
            hallway_width=hallway_width,
            partitions=partitions,
            doors=doors,
            regions=regions,
            next_partition=next_partition,
            next_door=next_door,
            next_region=next_region,
        )
        first_hallway_per_floor.append(
            (layout.hallway_partition_ids[0], layout.hallway_partition_ids[-1])
        )

    # Staircases at both ends of the hallway between consecutive floors.
    hallway_y = shop_depth + hallway_width / 2.0
    mall_length = shops_per_side * shop_width
    for floor in range(floors - 1):
        lower_first, lower_last = first_hallway_per_floor[floor]
        upper_first, upper_last = first_hallway_per_floor[floor + 1]
        staircases.append(
            Staircase(
                staircase_id=next_staircase(),
                location_lower=IndoorPoint(shop_width / 2.0, hallway_y, floor),
                location_upper=IndoorPoint(shop_width / 2.0, hallway_y, floor + 1),
                partition_lower=lower_first,
                partition_upper=upper_first,
                travel_distance=12.0,
            )
        )
        staircases.append(
            Staircase(
                staircase_id=next_staircase(),
                location_lower=IndoorPoint(mall_length - shop_width / 2.0, hallway_y, floor),
                location_upper=IndoorPoint(mall_length - shop_width / 2.0, hallway_y, floor + 1),
                partition_lower=lower_last,
                partition_upper=upper_last,
                travel_distance=12.0,
            )
        )

    return IndoorSpace(partitions, doors, regions, staircases, name=name)


def _build_mall_floor(
    *,
    floor: int,
    shops_per_side: int,
    shop_width: float,
    shop_depth: float,
    hallway_width: float,
    partitions: List[Partition],
    doors: List[Door],
    regions: List[SemanticRegion],
    next_partition: "_IdAllocator",
    next_door: "_IdAllocator",
    next_region: "_IdAllocator",
) -> _FloorLayout:
    hallway_min_y = shop_depth
    hallway_max_y = shop_depth + hallway_width
    north_min_y = hallway_max_y
    north_max_y = hallway_max_y + shop_depth

    hallway_ids: List[int] = []
    shop_ids: List[int] = []

    # Hallway segments, one per shop column, chained left to right.
    for column in range(shops_per_side):
        min_x = column * shop_width
        max_x = (column + 1) * shop_width
        pid = next_partition()
        partitions.append(
            Partition(
                partition_id=pid,
                geometry=Rectangle(min_x, hallway_min_y, max_x, hallway_max_y),
                floor=floor,
                kind="hallway",
            )
        )
        hallway_ids.append(pid)
        if column > 0:
            # Virtual door between consecutive hallway segments.
            doors.append(
                Door(
                    door_id=next_door(),
                    location=IndoorPoint(min_x, (hallway_min_y + hallway_max_y) / 2.0, floor),
                    partition_ids=(hallway_ids[column - 1], pid),
                )
            )

    # Shops on both sides, each with one door onto its hallway segment.
    for column in range(shops_per_side):
        min_x = column * shop_width
        max_x = (column + 1) * shop_width
        door_x = (min_x + max_x) / 2.0
        hallway_pid = hallway_ids[column]

        south_pid = next_partition()
        partitions.append(
            Partition(
                partition_id=south_pid,
                geometry=Rectangle(min_x, 0.0, max_x, shop_depth),
                floor=floor,
                kind="shop",
            )
        )
        doors.append(
            Door(
                door_id=next_door(),
                location=IndoorPoint(door_x, hallway_min_y, floor),
                partition_ids=(south_pid, hallway_pid),
            )
        )
        regions.append(
            SemanticRegion(
                region_id=next_region(),
                name=f"F{floor}-S{column:02d}",
                partition_ids=(south_pid,),
                floor=floor,
                category=_shop_category(column),
            )
        )
        shop_ids.append(south_pid)

        north_pid = next_partition()
        partitions.append(
            Partition(
                partition_id=north_pid,
                geometry=Rectangle(min_x, north_min_y, max_x, north_max_y),
                floor=floor,
                kind="shop",
            )
        )
        doors.append(
            Door(
                door_id=next_door(),
                location=IndoorPoint(door_x, hallway_max_y, floor),
                partition_ids=(north_pid, hallway_pid),
            )
        )
        regions.append(
            SemanticRegion(
                region_id=next_region(),
                name=f"F{floor}-N{column:02d}",
                partition_ids=(north_pid,),
                floor=floor,
                category=_shop_category(column + shops_per_side),
            )
        )
        shop_ids.append(north_pid)

    return _FloorLayout(hallway_partition_ids=hallway_ids, shop_partition_ids=shop_ids)


def build_office_building(
    *,
    floors: int = 10,
    rooms_per_side: int = 12,
    room_width: float = 6.0,
    room_depth: float = 8.0,
    corridor_width: float = 3.0,
    region_fraction: float = 0.6,
    seed: int = 7,
    name: str = "vita-building",
) -> IndoorSpace:
    """Build a Vita-like multi-floor office building.

    Rooms line both sides of a central corridor; a deterministic pseudo-random
    subset (``region_fraction``) of the rooms is promoted to semantic regions,
    mirroring the paper's synthetic setup where "423 semantic regions were
    decided upon the partitions at random".  Staircases connect consecutive
    floors at the corridor ends.
    """
    if not 0.0 < region_fraction <= 1.0:
        raise ValueError("region_fraction must be in (0, 1]")
    rng = random.Random(seed)

    partitions: List[Partition] = []
    doors: List[Door] = []
    regions: List[SemanticRegion] = []
    staircases: List[Staircase] = []

    next_partition = _IdAllocator()
    next_door = _IdAllocator()
    next_region = _IdAllocator()
    next_staircase = _IdAllocator()

    corridor_ends: List[Tuple[int, int]] = []

    for floor in range(floors):
        corridor_min_y = room_depth
        corridor_max_y = room_depth + corridor_width
        corridor_ids: List[int] = []
        for column in range(rooms_per_side):
            min_x = column * room_width
            max_x = (column + 1) * room_width
            pid = next_partition()
            partitions.append(
                Partition(
                    partition_id=pid,
                    geometry=Rectangle(min_x, corridor_min_y, max_x, corridor_max_y),
                    floor=floor,
                    kind="hallway",
                )
            )
            corridor_ids.append(pid)
            if column > 0:
                doors.append(
                    Door(
                        door_id=next_door(),
                        location=IndoorPoint(
                            min_x, (corridor_min_y + corridor_max_y) / 2.0, floor
                        ),
                        partition_ids=(corridor_ids[column - 1], pid),
                    )
                )
        for column in range(rooms_per_side):
            min_x = column * room_width
            max_x = (column + 1) * room_width
            door_x = (min_x + max_x) / 2.0
            corridor_pid = corridor_ids[column]
            for side, (low_y, high_y, door_y) in enumerate(
                (
                    (0.0, room_depth, corridor_min_y),
                    (corridor_max_y, corridor_max_y + room_depth, corridor_max_y),
                )
            ):
                pid = next_partition()
                partitions.append(
                    Partition(
                        partition_id=pid,
                        geometry=Rectangle(min_x, low_y, max_x, high_y),
                        floor=floor,
                        kind="room",
                    )
                )
                doors.append(
                    Door(
                        door_id=next_door(),
                        location=IndoorPoint(door_x, door_y, floor),
                        partition_ids=(pid, corridor_pid),
                    )
                )
                if rng.random() < region_fraction:
                    regions.append(
                        SemanticRegion(
                            region_id=next_region(),
                            name=f"F{floor}-R{column:02d}-{'NS'[side]}",
                            partition_ids=(pid,),
                            floor=floor,
                            category="office",
                        )
                    )
        corridor_ends.append((corridor_ids[0], corridor_ids[-1]))

    corridor_y = room_depth + corridor_width / 2.0
    building_length = rooms_per_side * room_width
    for floor in range(floors - 1):
        lower_first, lower_last = corridor_ends[floor]
        upper_first, upper_last = corridor_ends[floor + 1]
        staircases.append(
            Staircase(
                staircase_id=next_staircase(),
                location_lower=IndoorPoint(room_width / 2.0, corridor_y, floor),
                location_upper=IndoorPoint(room_width / 2.0, corridor_y, floor + 1),
                partition_lower=lower_first,
                partition_upper=upper_first,
                travel_distance=10.0,
            )
        )
        staircases.append(
            Staircase(
                staircase_id=next_staircase(),
                location_lower=IndoorPoint(building_length - room_width / 2.0, corridor_y, floor),
                location_upper=IndoorPoint(building_length - room_width / 2.0, corridor_y, floor + 1),
                partition_lower=lower_last,
                partition_upper=upper_last,
                travel_distance=10.0,
            )
        )

    return IndoorSpace(partitions, doors, regions, staircases, name=name)


def build_concourse_hub(
    *,
    floors: int = 1,
    halls: int = 3,
    bays_per_hall: int = 4,
    hall_width: float = 30.0,
    hall_depth: float = 24.0,
    bay_width: float = 6.0,
    bay_depth: float = 8.0,
    name: str = "transit-hub",
) -> IndoorSpace:
    """Build a transit-hub/hospital-style venue of large open concourses.

    Layout per floor (plan view)::

        +------+------+------+------+   ...   +------+------+
        | bay  | bay  | bay  | bay  |         | bay  | bay  |   gates / wards
        +------+--+---+------+--+---+---------+--+---+------+
        |          |            |                |          |
        |  hall 0  d   hall 1   d     hall 2     d  hall 3  |   open concourses
        |          |            |                |          |
        +----------+------------+----------------+----------+

    Each hall is one big open partition connected to its neighbour by a
    *single* door (``d``), so the accessibility graph is sparse — the venue
    has far fewer doors per square meter than the mall or office archetypes.
    Every hall and every bay is a semantic region; halls are category
    ``"concourse"``, bays alternate ``"gate"`` / ``"ward"``.  Staircases at
    the first and last hall connect consecutive floors.
    """
    if floors < 1:
        raise ValueError("a concourse hub needs at least one floor")
    if halls < 1:
        raise ValueError("need at least one concourse hall")
    if bays_per_hall < 1:
        raise ValueError("need at least one bay per hall")
    if bays_per_hall * bay_width > hall_width:
        raise ValueError("bays do not fit along the hall edge")

    partitions: List[Partition] = []
    doors: List[Door] = []
    regions: List[SemanticRegion] = []
    staircases: List[Staircase] = []

    next_partition = _IdAllocator()
    next_door = _IdAllocator()
    next_region = _IdAllocator()
    next_staircase = _IdAllocator()

    hall_ends_per_floor: List[Tuple[int, int]] = []

    for floor in range(floors):
        hall_ids: List[int] = []
        for hall in range(halls):
            min_x = hall * hall_width
            max_x = (hall + 1) * hall_width
            pid = next_partition()
            partitions.append(
                Partition(
                    partition_id=pid,
                    geometry=Rectangle(min_x, 0.0, max_x, hall_depth),
                    floor=floor,
                    kind="concourse",
                )
            )
            hall_ids.append(pid)
            regions.append(
                SemanticRegion(
                    region_id=next_region(),
                    name=f"F{floor}-H{hall:02d}",
                    partition_ids=(pid,),
                    floor=floor,
                    category="concourse",
                )
            )
            if hall > 0:
                # The single opening between neighbouring concourses.
                doors.append(
                    Door(
                        door_id=next_door(),
                        location=IndoorPoint(min_x, hall_depth / 2.0, floor),
                        partition_ids=(hall_ids[hall - 1], pid),
                    )
                )
        for hall in range(halls):
            hall_min_x = hall * hall_width
            for bay in range(bays_per_hall):
                min_x = hall_min_x + bay * bay_width
                max_x = min_x + bay_width
                pid = next_partition()
                partitions.append(
                    Partition(
                        partition_id=pid,
                        geometry=Rectangle(min_x, hall_depth, max_x, hall_depth + bay_depth),
                        floor=floor,
                        kind="bay",
                    )
                )
                doors.append(
                    Door(
                        door_id=next_door(),
                        location=IndoorPoint((min_x + max_x) / 2.0, hall_depth, floor),
                        partition_ids=(pid, hall_ids[hall]),
                    )
                )
                regions.append(
                    SemanticRegion(
                        region_id=next_region(),
                        name=f"F{floor}-B{hall:02d}-{bay:02d}",
                        partition_ids=(pid,),
                        floor=floor,
                        category="gate" if (hall + bay) % 2 == 0 else "ward",
                    )
                )
        hall_ends_per_floor.append((hall_ids[0], hall_ids[-1]))

    hub_length = halls * hall_width
    for floor in range(floors - 1):
        lower_first, lower_last = hall_ends_per_floor[floor]
        upper_first, upper_last = hall_ends_per_floor[floor + 1]
        staircases.append(
            Staircase(
                staircase_id=next_staircase(),
                location_lower=IndoorPoint(hall_width / 2.0, hall_depth / 2.0, floor),
                location_upper=IndoorPoint(hall_width / 2.0, hall_depth / 2.0, floor + 1),
                partition_lower=lower_first,
                partition_upper=upper_first,
                travel_distance=14.0,
            )
        )
        staircases.append(
            Staircase(
                staircase_id=next_staircase(),
                location_lower=IndoorPoint(hub_length - hall_width / 2.0, hall_depth / 2.0, floor),
                location_upper=IndoorPoint(hub_length - hall_width / 2.0, hall_depth / 2.0, floor + 1),
                partition_lower=lower_last,
                partition_upper=upper_last,
                travel_distance=14.0,
            )
        )

    return IndoorSpace(partitions, doors, regions, staircases, name=name)


_SHOP_CATEGORIES = (
    "fashion",
    "food",
    "electronics",
    "sports",
    "books",
    "beauty",
    "toys",
    "home",
)


def _shop_category(index: int) -> str:
    return _SHOP_CATEGORIES[index % len(_SHOP_CATEGORIES)]


class _IdAllocator:
    """A tiny monotonically increasing id generator."""

    def __init__(self, start: int = 0):
        self._next = start

    def __call__(self) -> int:
        value = self._next
        self._next += 1
        return value
