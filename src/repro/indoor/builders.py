"""Deterministic floorplan builders.

Two venues reproduce the paper's evaluation; a third extends it:

* **A multi-floor shopping mall** (stand-in for the seven-floor Hangzhou mall
  of Section V-B).  Each floor is a rectangular slab with a central hallway
  loop and shops along both sides; every shop is one partition and one
  semantic region; staircases connect consecutive floors at both ends.
* **A Vita-like office building** (Section V-C uses the Vita simulator to
  generate a ten-floor building with 1,410 partitions, 2,200 doors and 423
  semantic regions).  Our builder produces the same style of venue: rooms
  along double-loaded corridors, a configurable fraction of rooms promoted to
  semantic regions, and staircases at the corridor ends.
* **A transit-hub/hospital-style concourse** (scenario catalogue): large open
  concourse halls with *few* doors between them and small bays (gates, wards)
  along one edge.  The open halls are themselves semantic regions, so the
  label space mixes big low-density regions with small dense ones — the
  opposite geometry regime of the mall and office venues.

Four further archetypes grow the catalogue toward city-block diversity, each
exercising a topology regime the first three never produce:

* **An airport terminal** (:func:`build_airport_terminal`): a single security
  choke point between the landside hall and the airside spine, with piers of
  gates branching off — the extreme-bottleneck regime where every airside
  path funnels through one door.
* **A hospital** (:func:`build_hospital`): a lobby plus a double-loaded ward
  corridor where adjacent south-side wards are *interlinked* by internal
  doors, creating parallel paths (corridor vs. through-ward) and therefore
  cycles in the accessibility graph.
* **A stadium** (:func:`build_stadium`): a closed concourse *ring* (the only
  cyclic hallway among all archetypes) with seating stands outward and
  concession corners — walking distance between sections is genuinely
  directional (clockwise vs. counter-clockwise).
* **A multi-floor office tower** (:func:`build_office_tower`): a vertical
  regime — suites ring a small core on every floor, local staircases connect
  consecutive floors and *express* staircases jump directly between sky-lobby
  floors, so inter-floor shortest paths are non-trivial.

All builders are fully deterministic given their arguments so experiments are
reproducible without storing floorplan files.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

from repro.geometry.point import IndoorPoint
from repro.geometry.polygon import Rectangle
from repro.indoor.entities import Door, Partition, SemanticRegion, Staircase
from repro.indoor.floorplan import IndoorSpace


@dataclass
class _FloorLayout:
    """Book-keeping produced while laying out one floor."""

    hallway_partition_ids: List[int]
    shop_partition_ids: List[int]


def build_mall_space(
    *,
    floors: int = 7,
    shops_per_side: int = 15,
    shop_width: float = 8.0,
    shop_depth: float = 12.0,
    hallway_width: float = 6.0,
    name: str = "grand-mall",
) -> IndoorSpace:
    """Build a multi-floor shopping mall.

    Layout per floor (plan view)::

        +-------------------------------------------+
        |  shop | shop | shop | ... | shop | shop   |   north shops
        +-------------------------------------------+
        |                 hallway                   |
        +-------------------------------------------+
        |  shop | shop | shop | ... | shop | shop   |   south shops
        +-------------------------------------------+

    Every shop is one partition and one semantic region with a door opening
    onto the hallway.  The hallway is split into segments (one per shop column)
    so the accessibility graph has realistic granularity.  The default
    arguments give ``7 * 2 * 15 = 210`` shops, close to the paper's 202
    semantic regions.

    Returns
    -------
    IndoorSpace
        The assembled venue.
    """
    if floors < 1:
        raise ValueError("a mall needs at least one floor")
    if shops_per_side < 1:
        raise ValueError("need at least one shop per side")

    partitions: List[Partition] = []
    doors: List[Door] = []
    regions: List[SemanticRegion] = []
    staircases: List[Staircase] = []

    next_partition = _IdAllocator()
    next_door = _IdAllocator()
    next_region = _IdAllocator()
    next_staircase = _IdAllocator()

    first_hallway_per_floor: List[Tuple[int, int]] = []  # (first, last) hallway pid

    for floor in range(floors):
        layout = _build_mall_floor(
            floor=floor,
            shops_per_side=shops_per_side,
            shop_width=shop_width,
            shop_depth=shop_depth,
            hallway_width=hallway_width,
            partitions=partitions,
            doors=doors,
            regions=regions,
            next_partition=next_partition,
            next_door=next_door,
            next_region=next_region,
        )
        first_hallway_per_floor.append(
            (layout.hallway_partition_ids[0], layout.hallway_partition_ids[-1])
        )

    # Staircases at both ends of the hallway between consecutive floors.
    hallway_y = shop_depth + hallway_width / 2.0
    mall_length = shops_per_side * shop_width
    for floor in range(floors - 1):
        lower_first, lower_last = first_hallway_per_floor[floor]
        upper_first, upper_last = first_hallway_per_floor[floor + 1]
        staircases.append(
            Staircase(
                staircase_id=next_staircase(),
                location_lower=IndoorPoint(shop_width / 2.0, hallway_y, floor),
                location_upper=IndoorPoint(shop_width / 2.0, hallway_y, floor + 1),
                partition_lower=lower_first,
                partition_upper=upper_first,
                travel_distance=12.0,
            )
        )
        staircases.append(
            Staircase(
                staircase_id=next_staircase(),
                location_lower=IndoorPoint(mall_length - shop_width / 2.0, hallway_y, floor),
                location_upper=IndoorPoint(mall_length - shop_width / 2.0, hallway_y, floor + 1),
                partition_lower=lower_last,
                partition_upper=upper_last,
                travel_distance=12.0,
            )
        )

    return IndoorSpace(partitions, doors, regions, staircases, name=name)


def _build_mall_floor(
    *,
    floor: int,
    shops_per_side: int,
    shop_width: float,
    shop_depth: float,
    hallway_width: float,
    partitions: List[Partition],
    doors: List[Door],
    regions: List[SemanticRegion],
    next_partition: "_IdAllocator",
    next_door: "_IdAllocator",
    next_region: "_IdAllocator",
) -> _FloorLayout:
    hallway_min_y = shop_depth
    hallway_max_y = shop_depth + hallway_width
    north_min_y = hallway_max_y
    north_max_y = hallway_max_y + shop_depth

    hallway_ids: List[int] = []
    shop_ids: List[int] = []

    # Hallway segments, one per shop column, chained left to right.
    for column in range(shops_per_side):
        min_x = column * shop_width
        max_x = (column + 1) * shop_width
        pid = next_partition()
        partitions.append(
            Partition(
                partition_id=pid,
                geometry=Rectangle(min_x, hallway_min_y, max_x, hallway_max_y),
                floor=floor,
                kind="hallway",
            )
        )
        hallway_ids.append(pid)
        if column > 0:
            # Virtual door between consecutive hallway segments.
            doors.append(
                Door(
                    door_id=next_door(),
                    location=IndoorPoint(min_x, (hallway_min_y + hallway_max_y) / 2.0, floor),
                    partition_ids=(hallway_ids[column - 1], pid),
                )
            )

    # Shops on both sides, each with one door onto its hallway segment.
    for column in range(shops_per_side):
        min_x = column * shop_width
        max_x = (column + 1) * shop_width
        door_x = (min_x + max_x) / 2.0
        hallway_pid = hallway_ids[column]

        south_pid = next_partition()
        partitions.append(
            Partition(
                partition_id=south_pid,
                geometry=Rectangle(min_x, 0.0, max_x, shop_depth),
                floor=floor,
                kind="shop",
            )
        )
        doors.append(
            Door(
                door_id=next_door(),
                location=IndoorPoint(door_x, hallway_min_y, floor),
                partition_ids=(south_pid, hallway_pid),
            )
        )
        regions.append(
            SemanticRegion(
                region_id=next_region(),
                name=f"F{floor}-S{column:02d}",
                partition_ids=(south_pid,),
                floor=floor,
                category=_shop_category(column),
            )
        )
        shop_ids.append(south_pid)

        north_pid = next_partition()
        partitions.append(
            Partition(
                partition_id=north_pid,
                geometry=Rectangle(min_x, north_min_y, max_x, north_max_y),
                floor=floor,
                kind="shop",
            )
        )
        doors.append(
            Door(
                door_id=next_door(),
                location=IndoorPoint(door_x, hallway_max_y, floor),
                partition_ids=(north_pid, hallway_pid),
            )
        )
        regions.append(
            SemanticRegion(
                region_id=next_region(),
                name=f"F{floor}-N{column:02d}",
                partition_ids=(north_pid,),
                floor=floor,
                category=_shop_category(column + shops_per_side),
            )
        )
        shop_ids.append(north_pid)

    return _FloorLayout(hallway_partition_ids=hallway_ids, shop_partition_ids=shop_ids)


def build_office_building(
    *,
    floors: int = 10,
    rooms_per_side: int = 12,
    room_width: float = 6.0,
    room_depth: float = 8.0,
    corridor_width: float = 3.0,
    region_fraction: float = 0.6,
    seed: int = 7,
    name: str = "vita-building",
) -> IndoorSpace:
    """Build a Vita-like multi-floor office building.

    Rooms line both sides of a central corridor; a deterministic pseudo-random
    subset (``region_fraction``) of the rooms is promoted to semantic regions,
    mirroring the paper's synthetic setup where "423 semantic regions were
    decided upon the partitions at random".  Staircases connect consecutive
    floors at the corridor ends.
    """
    if not 0.0 < region_fraction <= 1.0:
        raise ValueError("region_fraction must be in (0, 1]")
    rng = random.Random(seed)

    partitions: List[Partition] = []
    doors: List[Door] = []
    regions: List[SemanticRegion] = []
    staircases: List[Staircase] = []

    next_partition = _IdAllocator()
    next_door = _IdAllocator()
    next_region = _IdAllocator()
    next_staircase = _IdAllocator()

    corridor_ends: List[Tuple[int, int]] = []

    for floor in range(floors):
        corridor_min_y = room_depth
        corridor_max_y = room_depth + corridor_width
        corridor_ids: List[int] = []
        for column in range(rooms_per_side):
            min_x = column * room_width
            max_x = (column + 1) * room_width
            pid = next_partition()
            partitions.append(
                Partition(
                    partition_id=pid,
                    geometry=Rectangle(min_x, corridor_min_y, max_x, corridor_max_y),
                    floor=floor,
                    kind="hallway",
                )
            )
            corridor_ids.append(pid)
            if column > 0:
                doors.append(
                    Door(
                        door_id=next_door(),
                        location=IndoorPoint(
                            min_x, (corridor_min_y + corridor_max_y) / 2.0, floor
                        ),
                        partition_ids=(corridor_ids[column - 1], pid),
                    )
                )
        for column in range(rooms_per_side):
            min_x = column * room_width
            max_x = (column + 1) * room_width
            door_x = (min_x + max_x) / 2.0
            corridor_pid = corridor_ids[column]
            for side, (low_y, high_y, door_y) in enumerate(
                (
                    (0.0, room_depth, corridor_min_y),
                    (corridor_max_y, corridor_max_y + room_depth, corridor_max_y),
                )
            ):
                pid = next_partition()
                partitions.append(
                    Partition(
                        partition_id=pid,
                        geometry=Rectangle(min_x, low_y, max_x, high_y),
                        floor=floor,
                        kind="room",
                    )
                )
                doors.append(
                    Door(
                        door_id=next_door(),
                        location=IndoorPoint(door_x, door_y, floor),
                        partition_ids=(pid, corridor_pid),
                    )
                )
                if rng.random() < region_fraction:
                    regions.append(
                        SemanticRegion(
                            region_id=next_region(),
                            name=f"F{floor}-R{column:02d}-{'NS'[side]}",
                            partition_ids=(pid,),
                            floor=floor,
                            category="office",
                        )
                    )
        corridor_ends.append((corridor_ids[0], corridor_ids[-1]))

    corridor_y = room_depth + corridor_width / 2.0
    building_length = rooms_per_side * room_width
    for floor in range(floors - 1):
        lower_first, lower_last = corridor_ends[floor]
        upper_first, upper_last = corridor_ends[floor + 1]
        staircases.append(
            Staircase(
                staircase_id=next_staircase(),
                location_lower=IndoorPoint(room_width / 2.0, corridor_y, floor),
                location_upper=IndoorPoint(room_width / 2.0, corridor_y, floor + 1),
                partition_lower=lower_first,
                partition_upper=upper_first,
                travel_distance=10.0,
            )
        )
        staircases.append(
            Staircase(
                staircase_id=next_staircase(),
                location_lower=IndoorPoint(building_length - room_width / 2.0, corridor_y, floor),
                location_upper=IndoorPoint(building_length - room_width / 2.0, corridor_y, floor + 1),
                partition_lower=lower_last,
                partition_upper=upper_last,
                travel_distance=10.0,
            )
        )

    return IndoorSpace(partitions, doors, regions, staircases, name=name)


def build_concourse_hub(
    *,
    floors: int = 1,
    halls: int = 3,
    bays_per_hall: int = 4,
    hall_width: float = 30.0,
    hall_depth: float = 24.0,
    bay_width: float = 6.0,
    bay_depth: float = 8.0,
    name: str = "transit-hub",
) -> IndoorSpace:
    """Build a transit-hub/hospital-style venue of large open concourses.

    Layout per floor (plan view)::

        +------+------+------+------+   ...   +------+------+
        | bay  | bay  | bay  | bay  |         | bay  | bay  |   gates / wards
        +------+--+---+------+--+---+---------+--+---+------+
        |          |            |                |          |
        |  hall 0  d   hall 1   d     hall 2     d  hall 3  |   open concourses
        |          |            |                |          |
        +----------+------------+----------------+----------+

    Each hall is one big open partition connected to its neighbour by a
    *single* door (``d``), so the accessibility graph is sparse — the venue
    has far fewer doors per square meter than the mall or office archetypes.
    Every hall and every bay is a semantic region; halls are category
    ``"concourse"``, bays alternate ``"gate"`` / ``"ward"``.  Staircases at
    the first and last hall connect consecutive floors.
    """
    if floors < 1:
        raise ValueError("a concourse hub needs at least one floor")
    if halls < 1:
        raise ValueError("need at least one concourse hall")
    if bays_per_hall < 1:
        raise ValueError("need at least one bay per hall")
    if bays_per_hall * bay_width > hall_width:
        raise ValueError("bays do not fit along the hall edge")

    partitions: List[Partition] = []
    doors: List[Door] = []
    regions: List[SemanticRegion] = []
    staircases: List[Staircase] = []

    next_partition = _IdAllocator()
    next_door = _IdAllocator()
    next_region = _IdAllocator()
    next_staircase = _IdAllocator()

    hall_ends_per_floor: List[Tuple[int, int]] = []

    for floor in range(floors):
        hall_ids: List[int] = []
        for hall in range(halls):
            min_x = hall * hall_width
            max_x = (hall + 1) * hall_width
            pid = next_partition()
            partitions.append(
                Partition(
                    partition_id=pid,
                    geometry=Rectangle(min_x, 0.0, max_x, hall_depth),
                    floor=floor,
                    kind="concourse",
                )
            )
            hall_ids.append(pid)
            regions.append(
                SemanticRegion(
                    region_id=next_region(),
                    name=f"F{floor}-H{hall:02d}",
                    partition_ids=(pid,),
                    floor=floor,
                    category="concourse",
                )
            )
            if hall > 0:
                # The single opening between neighbouring concourses.
                doors.append(
                    Door(
                        door_id=next_door(),
                        location=IndoorPoint(min_x, hall_depth / 2.0, floor),
                        partition_ids=(hall_ids[hall - 1], pid),
                    )
                )
        for hall in range(halls):
            hall_min_x = hall * hall_width
            for bay in range(bays_per_hall):
                min_x = hall_min_x + bay * bay_width
                max_x = min_x + bay_width
                pid = next_partition()
                partitions.append(
                    Partition(
                        partition_id=pid,
                        geometry=Rectangle(min_x, hall_depth, max_x, hall_depth + bay_depth),
                        floor=floor,
                        kind="bay",
                    )
                )
                doors.append(
                    Door(
                        door_id=next_door(),
                        location=IndoorPoint((min_x + max_x) / 2.0, hall_depth, floor),
                        partition_ids=(pid, hall_ids[hall]),
                    )
                )
                regions.append(
                    SemanticRegion(
                        region_id=next_region(),
                        name=f"F{floor}-B{hall:02d}-{bay:02d}",
                        partition_ids=(pid,),
                        floor=floor,
                        category="gate" if (hall + bay) % 2 == 0 else "ward",
                    )
                )
        hall_ends_per_floor.append((hall_ids[0], hall_ids[-1]))

    hub_length = halls * hall_width
    for floor in range(floors - 1):
        lower_first, lower_last = hall_ends_per_floor[floor]
        upper_first, upper_last = hall_ends_per_floor[floor + 1]
        staircases.append(
            Staircase(
                staircase_id=next_staircase(),
                location_lower=IndoorPoint(hall_width / 2.0, hall_depth / 2.0, floor),
                location_upper=IndoorPoint(hall_width / 2.0, hall_depth / 2.0, floor + 1),
                partition_lower=lower_first,
                partition_upper=upper_first,
                travel_distance=14.0,
            )
        )
        staircases.append(
            Staircase(
                staircase_id=next_staircase(),
                location_lower=IndoorPoint(hub_length - hall_width / 2.0, hall_depth / 2.0, floor),
                location_upper=IndoorPoint(hub_length - hall_width / 2.0, hall_depth / 2.0, floor + 1),
                partition_lower=lower_last,
                partition_upper=upper_last,
                travel_distance=14.0,
            )
        )

    return IndoorSpace(partitions, doors, regions, staircases, name=name)


def build_airport_terminal(
    *,
    concourses: int = 2,
    gates_per_side: int = 4,
    hall_depth: float = 20.0,
    security_width: float = 8.0,
    security_depth: float = 6.0,
    spine_segment_length: float = 30.0,
    spine_width: float = 8.0,
    pier_width: float = 8.0,
    gate_width: float = 6.0,
    gate_depth: float = 9.0,
    retail_width: float = 5.0,
    name: str = "intl-terminal",
) -> IndoorSpace:
    """Build an airport terminal with a single landside→airside choke point.

    Layout (plan view)::

        | gate | pier | gate |        | gate | pier | gate |
        | gate | pier | gate |        | gate | pier | gate |
        +--+---+------+--------+------+------+--------------+
        |rt|      spine 0      |rt|       spine 1           |   airside
        +--+--------+~~+-------+--+-------------------------+
        |           |security|                              |
        +-----------+~~+------+------------------------------+
        |                  check-in hall                     |   landside
        +----------------------------------------------------+

    The security partition is the *only* connection between the check-in
    hall and the airside spine, so every airside path funnels through one
    door pair — the bottleneck regime.  Each concourse contributes one spine
    segment, a pier with ``gates_per_side`` gates on each side, and one
    retail bay on the spine.  Every gate, the retail bays, the security
    lane and the hall are semantic regions.
    """
    if concourses < 1:
        raise ValueError("an airport needs at least one concourse")
    if gates_per_side < 1:
        raise ValueError("need at least one gate per pier side")
    if retail_width > spine_segment_length / 2.0 - pier_width / 2.0 - gate_width:
        raise ValueError("retail bay would overlap the pier's west gates")
    if pier_width / 2.0 + gate_width > spine_segment_length / 2.0:
        raise ValueError("pier gates stick out of the spine segment")
    if security_width > spine_segment_length:
        raise ValueError("security lane wider than a spine segment")

    partitions: List[Partition] = []
    doors: List[Door] = []
    regions: List[SemanticRegion] = []

    next_partition = _IdAllocator()
    next_door = _IdAllocator()
    next_region = _IdAllocator()

    total_length = concourses * spine_segment_length
    spine_min_y = hall_depth + security_depth
    spine_max_y = spine_min_y + spine_width

    # Landside check-in hall: one large open partition.
    hall_pid = next_partition()
    partitions.append(
        Partition(
            partition_id=hall_pid,
            geometry=Rectangle(0.0, 0.0, total_length, hall_depth),
            floor=0,
            kind="hall",
        )
    )
    regions.append(
        SemanticRegion(
            region_id=next_region(),
            name="check-in",
            partition_ids=(hall_pid,),
            floor=0,
            category="landside",
        )
    )

    # The security lane: the only way from landside to airside.
    centre_x = total_length / 2.0
    security_pid = next_partition()
    partitions.append(
        Partition(
            partition_id=security_pid,
            geometry=Rectangle(
                centre_x - security_width / 2.0,
                hall_depth,
                centre_x + security_width / 2.0,
                hall_depth + security_depth,
            ),
            floor=0,
            kind="security",
        )
    )
    regions.append(
        SemanticRegion(
            region_id=next_region(),
            name="security",
            partition_ids=(security_pid,),
            floor=0,
            category="security",
        )
    )
    doors.append(
        Door(
            door_id=next_door(),
            location=IndoorPoint(centre_x, hall_depth, 0),
            partition_ids=(hall_pid, security_pid),
        )
    )

    # Airside spine: one segment per concourse, chained left to right.
    spine_ids: List[int] = []
    for segment in range(concourses):
        min_x = segment * spine_segment_length
        pid = next_partition()
        partitions.append(
            Partition(
                partition_id=pid,
                geometry=Rectangle(
                    min_x, spine_min_y, min_x + spine_segment_length, spine_max_y
                ),
                floor=0,
                kind="hallway",
            )
        )
        spine_ids.append(pid)
        if segment > 0:
            doors.append(
                Door(
                    door_id=next_door(),
                    location=IndoorPoint(min_x, (spine_min_y + spine_max_y) / 2.0, 0),
                    partition_ids=(spine_ids[segment - 1], pid),
                )
            )
    security_segment = min(concourses - 1, int(centre_x // spine_segment_length))
    doors.append(
        Door(
            door_id=next_door(),
            location=IndoorPoint(centre_x, spine_min_y, 0),
            partition_ids=(security_pid, spine_ids[security_segment]),
        )
    )

    # Piers with gates, plus one retail bay per spine segment.
    pier_length = gates_per_side * gate_depth
    for concourse in range(concourses):
        segment_min_x = concourse * spine_segment_length
        pier_centre = segment_min_x + spine_segment_length / 2.0
        pier_min_x = pier_centre - pier_width / 2.0
        pier_max_x = pier_centre + pier_width / 2.0

        pier_pid = next_partition()
        partitions.append(
            Partition(
                partition_id=pier_pid,
                geometry=Rectangle(pier_min_x, spine_max_y, pier_max_x, spine_max_y + pier_length),
                floor=0,
                kind="pier",
            )
        )
        doors.append(
            Door(
                door_id=next_door(),
                location=IndoorPoint(pier_centre, spine_max_y, 0),
                partition_ids=(spine_ids[concourse], pier_pid),
            )
        )
        for row in range(gates_per_side):
            row_min_y = spine_max_y + row * gate_depth
            for side, (gate_min_x, gate_max_x, door_x) in enumerate(
                (
                    (pier_min_x - gate_width, pier_min_x, pier_min_x),
                    (pier_max_x, pier_max_x + gate_width, pier_max_x),
                )
            ):
                gate_pid = next_partition()
                partitions.append(
                    Partition(
                        partition_id=gate_pid,
                        geometry=Rectangle(gate_min_x, row_min_y, gate_max_x, row_min_y + gate_depth),
                        floor=0,
                        kind="gate",
                    )
                )
                doors.append(
                    Door(
                        door_id=next_door(),
                        location=IndoorPoint(door_x, row_min_y + gate_depth / 2.0, 0),
                        partition_ids=(gate_pid, pier_pid),
                    )
                )
                regions.append(
                    SemanticRegion(
                        region_id=next_region(),
                        name=f"C{concourse}-G{row:02d}{'WE'[side]}",
                        partition_ids=(gate_pid,),
                        floor=0,
                        category="gate",
                    )
                )

        retail_pid = next_partition()
        partitions.append(
            Partition(
                partition_id=retail_pid,
                geometry=Rectangle(
                    segment_min_x,
                    spine_max_y,
                    segment_min_x + retail_width,
                    spine_max_y + gate_depth,
                ),
                floor=0,
                kind="retail",
            )
        )
        doors.append(
            Door(
                door_id=next_door(),
                location=IndoorPoint(segment_min_x + retail_width / 2.0, spine_max_y, 0),
                partition_ids=(retail_pid, spine_ids[concourse]),
            )
        )
        regions.append(
            SemanticRegion(
                region_id=next_region(),
                name=f"C{concourse}-retail",
                partition_ids=(retail_pid,),
                floor=0,
                category="retail",
            )
        )

    return IndoorSpace(partitions, doors, regions, (), name=name)


def build_hospital(
    *,
    floors: int = 1,
    wards_per_side: int = 5,
    ward_width: float = 7.0,
    ward_depth: float = 9.0,
    corridor_width: float = 4.0,
    lobby_width: float = 12.0,
    interlinked: bool = True,
    name: str = "general-hospital",
) -> IndoorSpace:
    """Build a hospital: lobby + ward corridor with interlinked south wards.

    Layout per floor (plan view)::

        +-------+------+------+------+------+--------+
        |       | trt  | trt  | trt  | trt  | imaging|   north side
        | lobby +------+------+------+------+--------+
        |       |            corridor               |
        |       +------+------+------+------+-------+
        |       | ward = ward = ward = ward = ward  |   south side
        +-------+------+------+------+------+-------+

    The lobby spans the full building depth and opens onto the corridor.
    South-side wards are *interlinked* (``=``): adjacent wards share an
    internal door, so the accessibility graph has cycles — an object can
    reach a neighbouring ward either through the corridor or straight
    through the shared door, and shortest paths must pick.  The north side
    holds treatment rooms with the far column promoted to an imaging suite.
    Multi-floor hospitals get staircases in the lobby and at the corridor's
    far end.
    """
    if floors < 1:
        raise ValueError("a hospital needs at least one floor")
    if wards_per_side < 2:
        raise ValueError("need at least two wards per side")

    partitions: List[Partition] = []
    doors: List[Door] = []
    regions: List[SemanticRegion] = []
    staircases: List[Staircase] = []

    next_partition = _IdAllocator()
    next_door = _IdAllocator()
    next_region = _IdAllocator()
    next_staircase = _IdAllocator()

    depth = 2.0 * ward_depth + corridor_width
    corridor_min_y = ward_depth
    corridor_max_y = ward_depth + corridor_width
    lobby_and_corridor_end: List[Tuple[int, int]] = []

    for floor in range(floors):
        lobby_pid = next_partition()
        partitions.append(
            Partition(
                partition_id=lobby_pid,
                geometry=Rectangle(0.0, 0.0, lobby_width, depth),
                floor=floor,
                kind="lobby",
            )
        )
        regions.append(
            SemanticRegion(
                region_id=next_region(),
                name=f"F{floor}-lobby",
                partition_ids=(lobby_pid,),
                floor=floor,
                category="reception" if floor == 0 else "lounge",
            )
        )

        corridor_ids: List[int] = []
        for column in range(wards_per_side):
            min_x = lobby_width + column * ward_width
            pid = next_partition()
            partitions.append(
                Partition(
                    partition_id=pid,
                    geometry=Rectangle(
                        min_x, corridor_min_y, min_x + ward_width, corridor_max_y
                    ),
                    floor=floor,
                    kind="hallway",
                )
            )
            corridor_ids.append(pid)
            if column == 0:
                doors.append(
                    Door(
                        door_id=next_door(),
                        location=IndoorPoint(
                            lobby_width, (corridor_min_y + corridor_max_y) / 2.0, floor
                        ),
                        partition_ids=(lobby_pid, pid),
                    )
                )
            else:
                doors.append(
                    Door(
                        door_id=next_door(),
                        location=IndoorPoint(
                            min_x, (corridor_min_y + corridor_max_y) / 2.0, floor
                        ),
                        partition_ids=(corridor_ids[column - 1], pid),
                    )
                )

        south_ids: List[int] = []
        for column in range(wards_per_side):
            min_x = lobby_width + column * ward_width
            door_x = min_x + ward_width / 2.0

            south_pid = next_partition()
            partitions.append(
                Partition(
                    partition_id=south_pid,
                    geometry=Rectangle(min_x, 0.0, min_x + ward_width, ward_depth),
                    floor=floor,
                    kind="ward",
                )
            )
            doors.append(
                Door(
                    door_id=next_door(),
                    location=IndoorPoint(door_x, corridor_min_y, floor),
                    partition_ids=(south_pid, corridor_ids[column]),
                )
            )
            if interlinked and south_ids:
                # The cycle-maker: adjacent wards share an internal door.
                doors.append(
                    Door(
                        door_id=next_door(),
                        location=IndoorPoint(min_x, ward_depth / 2.0, floor),
                        partition_ids=(south_ids[-1], south_pid),
                    )
                )
            south_ids.append(south_pid)
            regions.append(
                SemanticRegion(
                    region_id=next_region(),
                    name=f"F{floor}-W{column:02d}",
                    partition_ids=(south_pid,),
                    floor=floor,
                    category="ward",
                )
            )

            north_pid = next_partition()
            partitions.append(
                Partition(
                    partition_id=north_pid,
                    geometry=Rectangle(
                        min_x, corridor_max_y, min_x + ward_width, corridor_max_y + ward_depth
                    ),
                    floor=floor,
                    kind="room",
                )
            )
            doors.append(
                Door(
                    door_id=next_door(),
                    location=IndoorPoint(door_x, corridor_max_y, floor),
                    partition_ids=(north_pid, corridor_ids[column]),
                )
            )
            imaging = column == wards_per_side - 1
            regions.append(
                SemanticRegion(
                    region_id=next_region(),
                    name=f"F{floor}-{'imaging' if imaging else f'T{column:02d}'}",
                    partition_ids=(north_pid,),
                    floor=floor,
                    category="imaging" if imaging else "treatment",
                )
            )

        lobby_and_corridor_end.append((lobby_pid, corridor_ids[-1]))

    corridor_y = (corridor_min_y + corridor_max_y) / 2.0
    far_x = lobby_width + wards_per_side * ward_width - ward_width / 2.0
    for floor in range(floors - 1):
        lower_lobby, lower_end = lobby_and_corridor_end[floor]
        upper_lobby, upper_end = lobby_and_corridor_end[floor + 1]
        staircases.append(
            Staircase(
                staircase_id=next_staircase(),
                location_lower=IndoorPoint(lobby_width / 2.0, depth / 2.0, floor),
                location_upper=IndoorPoint(lobby_width / 2.0, depth / 2.0, floor + 1),
                partition_lower=lower_lobby,
                partition_upper=upper_lobby,
                travel_distance=10.0,
            )
        )
        staircases.append(
            Staircase(
                staircase_id=next_staircase(),
                location_lower=IndoorPoint(far_x, corridor_y, floor),
                location_upper=IndoorPoint(far_x, corridor_y, floor + 1),
                partition_lower=lower_end,
                partition_upper=upper_end,
                travel_distance=10.0,
            )
        )

    return IndoorSpace(partitions, doors, regions, staircases, name=name)


def build_stadium(
    *,
    floors: int = 1,
    sections_per_side: int = 2,
    section_length: float = 16.0,
    ring_width: float = 8.0,
    stand_depth: float = 10.0,
    name: str = "city-arena",
) -> IndoorSpace:
    """Build a stadium: a closed concourse ring with stands and concessions.

    Layout (plan view)::

           +------+--------+--------+------+
           |      | stand  | stand  |      |
        +--+------+--------+--------+------+--+
        |  | TL   |  top0  |  top1  |  TR  |  |
        +--+------+--------+--------+------+--+
        |st| left1|                 |right0|st|
        +--+------+      (pitch)    +------+--+
        |st| left0|                 |right1|st|
        +--+------+--------+--------+------+--+
        |  | BL   |  bot1  |  bot0  |  BR  |  |
        +--+------+--------+--------+------+--+
           |      | stand  | stand  |      |
           +------+--------+--------+------+

    The concourse is the *only cyclic hallway* among all archetypes: four
    corner plazas (concession regions) and ``4 * sections_per_side`` ring
    segments chained into a closed loop, so walking distance between two
    stands is directional — clockwise vs. counter-clockwise genuinely
    differ, and shortest-path routing has to pick a side.  Every ring
    segment carries one outward seating stand (every fourth is a VIP box).
    Multi-tier stadiums connect floors with staircases at two opposite
    corners.
    """
    if floors < 1:
        raise ValueError("a stadium needs at least one floor (tier)")
    if sections_per_side < 1:
        raise ValueError("need at least one section per side")
    if section_length <= 0 or ring_width <= 0 or stand_depth <= 0:
        raise ValueError("stadium dimensions must be positive")

    partitions: List[Partition] = []
    doors: List[Door] = []
    regions: List[SemanticRegion] = []
    staircases: List[Staircase] = []

    next_partition = _IdAllocator()
    next_door = _IdAllocator()
    next_region = _IdAllocator()
    next_staircase = _IdAllocator()

    n = sections_per_side
    length = section_length
    width = ring_width
    outer = 2.0 * width + n * length  # outer square side

    stair_corners: List[Tuple[int, int]] = []

    for floor in range(floors):
        # Ring partitions in chain order: TL, top…, TR, right…, BR,
        # bottom…, BL, left…, closing back onto TL.  Each entry carries the
        # rectangle plus the door location shared with its successor.
        corner_boxes = {
            "TL": Rectangle(0.0, outer - width, width, outer),
            "TR": Rectangle(outer - width, outer - width, outer, outer),
            "BR": Rectangle(outer - width, 0.0, outer, width),
            "BL": Rectangle(0.0, 0.0, width, width),
        }
        chain: List[Tuple[str, Rectangle, Tuple[float, float]]] = []
        chain.append(("TL", corner_boxes["TL"], (width, outer - width / 2.0)))
        for i in range(n):
            min_x = width + i * length
            chain.append(
                (
                    f"top{i}",
                    Rectangle(min_x, outer - width, min_x + length, outer),
                    (min_x + length, outer - width / 2.0),
                )
            )
        chain.append(("TR", corner_boxes["TR"], (outer - width / 2.0, outer - width)))
        for i in range(n):
            max_y = outer - width - i * length
            chain.append(
                (
                    f"right{i}",
                    Rectangle(outer - width, max_y - length, outer, max_y),
                    (outer - width / 2.0, max_y - length),
                )
            )
        chain.append(("BR", corner_boxes["BR"], (outer - width, width / 2.0)))
        for i in range(n):
            max_x = outer - width - i * length
            chain.append(
                (
                    f"bottom{i}",
                    Rectangle(max_x - length, 0.0, max_x, width),
                    (max_x - length, width / 2.0),
                )
            )
        chain.append(("BL", corner_boxes["BL"], (width / 2.0, width)))
        for i in range(n):
            min_y = width + i * length
            chain.append(
                (
                    f"left{i}",
                    Rectangle(0.0, min_y, width, min_y + length),
                    (width / 2.0, min_y + length),
                )
            )

        ring_pids: List[int] = []
        for label, box, _ in chain:
            pid = next_partition()
            is_corner = label in corner_boxes
            partitions.append(
                Partition(
                    partition_id=pid,
                    geometry=box,
                    floor=floor,
                    kind="plaza" if is_corner else "concourse",
                )
            )
            ring_pids.append(pid)
            if is_corner:
                regions.append(
                    SemanticRegion(
                        region_id=next_region(),
                        name=f"F{floor}-{label}",
                        partition_ids=(pid,),
                        floor=floor,
                        category="concessions",
                    )
                )
        # Chain doors, including the loop-closing one (last → first).
        for index, (_, _, door_xy) in enumerate(chain):
            succ = ring_pids[(index + 1) % len(ring_pids)]
            doors.append(
                Door(
                    door_id=next_door(),
                    location=IndoorPoint(door_xy[0], door_xy[1], floor),
                    partition_ids=(ring_pids[index], succ),
                )
            )

        # Outward stands: one per ring segment (corners stay stand-free).
        stand_index = 0
        for index, (label, box, _) in enumerate(chain):
            if label in corner_boxes:
                continue
            if label.startswith("top"):
                stand_box = Rectangle(box.min_x, outer, box.max_x, outer + stand_depth)
                door_xy = ((box.min_x + box.max_x) / 2.0, outer)
            elif label.startswith("right"):
                stand_box = Rectangle(outer, box.min_y, outer + stand_depth, box.max_y)
                door_xy = (outer, (box.min_y + box.max_y) / 2.0)
            elif label.startswith("bottom"):
                stand_box = Rectangle(box.min_x, -stand_depth, box.max_x, 0.0)
                door_xy = ((box.min_x + box.max_x) / 2.0, 0.0)
            else:
                stand_box = Rectangle(-stand_depth, box.min_y, 0.0, box.max_y)
                door_xy = (0.0, (box.min_y + box.max_y) / 2.0)
            stand_pid = next_partition()
            partitions.append(
                Partition(
                    partition_id=stand_pid,
                    geometry=stand_box,
                    floor=floor,
                    kind="stand",
                )
            )
            doors.append(
                Door(
                    door_id=next_door(),
                    location=IndoorPoint(door_xy[0], door_xy[1], floor),
                    partition_ids=(stand_pid, ring_pids[index]),
                )
            )
            regions.append(
                SemanticRegion(
                    region_id=next_region(),
                    name=f"F{floor}-S{stand_index:02d}",
                    partition_ids=(stand_pid,),
                    floor=floor,
                    category="vip" if stand_index % 4 == 3 else "seating",
                )
            )
            stand_index += 1

        stair_corners.append((ring_pids[0], ring_pids[chain_index_of(chain, "BR")]))

    for floor in range(floors - 1):
        lower_tl, lower_br = stair_corners[floor]
        upper_tl, upper_br = stair_corners[floor + 1]
        staircases.append(
            Staircase(
                staircase_id=next_staircase(),
                location_lower=IndoorPoint(width / 2.0, outer - width / 2.0, floor),
                location_upper=IndoorPoint(width / 2.0, outer - width / 2.0, floor + 1),
                partition_lower=lower_tl,
                partition_upper=upper_tl,
                travel_distance=16.0,
            )
        )
        staircases.append(
            Staircase(
                staircase_id=next_staircase(),
                location_lower=IndoorPoint(outer - width / 2.0, width / 2.0, floor),
                location_upper=IndoorPoint(outer - width / 2.0, width / 2.0, floor + 1),
                partition_lower=lower_br,
                partition_upper=upper_br,
                travel_distance=16.0,
            )
        )

    return IndoorSpace(partitions, doors, regions, staircases, name=name)


def chain_index_of(chain, label: str) -> int:
    """Index of ``label`` in a stadium ring chain (helper for staircases)."""
    for index, (entry_label, _, _) in enumerate(chain):
        if entry_label == label:
            return index
    raise KeyError(label)


def build_office_tower(
    *,
    floors: int = 6,
    suites_per_side: int = 2,
    suite_depth: float = 8.0,
    core_size: float = 10.0,
    sky_lobby_every: int = 3,
    name: str = "meridian-tower",
) -> IndoorSpace:
    """Build a multi-floor office tower around a central core.

    Every floor is a ring of suites around one core partition (the elevator
    lobby): ``suites_per_side`` suites along the north and south edges plus
    one suite each on the east and west edges, every suite opening directly
    onto the core.  *Local* staircases connect consecutive floors; *express*
    staircases additionally jump straight between sky-lobby floors (every
    ``sky_lobby_every``-th floor, whose core is itself a semantic region),
    so the venue's inter-floor shortest paths are non-trivial: a trip from
    floor 0 to floor 6 is faster via the express jumps than by climbing
    every local flight.  This is the vertical-mobility regime none of the
    slab-shaped archetypes exercise.
    """
    if floors < 2:
        raise ValueError("a tower needs at least two floors")
    if suites_per_side < 1:
        raise ValueError("need at least one suite per side")
    if sky_lobby_every < 1:
        raise ValueError("sky_lobby_every must be at least 1")
    width = core_size + 2.0 * suite_depth
    if width / suites_per_side <= suite_depth:
        raise ValueError(
            "suites do not reach the core: reduce suites_per_side or grow core_size"
        )

    partitions: List[Partition] = []
    doors: List[Door] = []
    regions: List[SemanticRegion] = []
    staircases: List[Staircase] = []

    next_partition = _IdAllocator()
    next_door = _IdAllocator()
    next_region = _IdAllocator()
    next_staircase = _IdAllocator()

    core_min = suite_depth
    core_max = suite_depth + core_size
    core_centre = (core_min + core_max) / 2.0
    suite_width = width / suites_per_side

    core_pids: List[int] = []
    for floor in range(floors):
        core_pid = next_partition()
        partitions.append(
            Partition(
                partition_id=core_pid,
                geometry=Rectangle(core_min, core_min, core_max, core_max),
                floor=floor,
                kind="core",
            )
        )
        core_pids.append(core_pid)
        if floor % sky_lobby_every == 0:
            regions.append(
                SemanticRegion(
                    region_id=next_region(),
                    name=f"F{floor}-sky-lobby",
                    partition_ids=(core_pid,),
                    floor=floor,
                    category="sky-lobby",
                )
            )

        suite_index = 0
        # North and south suite bands, split into suites_per_side columns.
        for band, (low_y, high_y, door_y) in enumerate(
            ((core_max, width, core_max), (0.0, core_min, core_min))
        ):
            for column in range(suites_per_side):
                min_x = column * suite_width
                max_x = min_x + suite_width
                pid = next_partition()
                partitions.append(
                    Partition(
                        partition_id=pid,
                        geometry=Rectangle(min_x, low_y, max_x, high_y),
                        floor=floor,
                        kind="suite",
                    )
                )
                # Door on the overlap of the suite's span with the core wall.
                door_x = (max(min_x, core_min) + min(max_x, core_max)) / 2.0
                doors.append(
                    Door(
                        door_id=next_door(),
                        location=IndoorPoint(door_x, door_y, floor),
                        partition_ids=(pid, core_pid),
                    )
                )
                regions.append(
                    SemanticRegion(
                        region_id=next_region(),
                        name=f"F{floor}-U{suite_index:02d}",
                        partition_ids=(pid,),
                        floor=floor,
                        category="office",
                    )
                )
                suite_index += 1
        # East and west single suites beside the core.
        for min_x, max_x, door_x in (
            (core_max, width, core_max),
            (0.0, core_min, core_min),
        ):
            pid = next_partition()
            partitions.append(
                Partition(
                    partition_id=pid,
                    geometry=Rectangle(min_x, core_min, max_x, core_max),
                    floor=floor,
                    kind="suite",
                )
            )
            doors.append(
                Door(
                    door_id=next_door(),
                    location=IndoorPoint(door_x, core_centre, floor),
                    partition_ids=(pid, core_pid),
                )
            )
            regions.append(
                SemanticRegion(
                    region_id=next_region(),
                    name=f"F{floor}-U{suite_index:02d}",
                    partition_ids=(pid,),
                    floor=floor,
                    category="office",
                )
            )
            suite_index += 1

    # Local staircases between consecutive floors, at the core.
    for floor in range(floors - 1):
        staircases.append(
            Staircase(
                staircase_id=next_staircase(),
                location_lower=IndoorPoint(core_centre, core_centre, floor),
                location_upper=IndoorPoint(core_centre, core_centre, floor + 1),
                partition_lower=core_pids[floor],
                partition_upper=core_pids[floor + 1],
                travel_distance=8.0,
            )
        )
    # Express staircases between consecutive sky lobbies: direct multi-floor
    # jumps priced below the equivalent chain of local flights.
    sky_floors = [floor for floor in range(floors) if floor % sky_lobby_every == 0]
    for lower, upper in zip(sky_floors, sky_floors[1:]):
        staircases.append(
            Staircase(
                staircase_id=next_staircase(),
                location_lower=IndoorPoint(core_centre, core_centre, lower),
                location_upper=IndoorPoint(core_centre, core_centre, upper),
                partition_lower=core_pids[lower],
                partition_upper=core_pids[upper],
                travel_distance=5.0 * (upper - lower),
            )
        )

    return IndoorSpace(partitions, doors, regions, staircases, name=name)


_SHOP_CATEGORIES = (
    "fashion",
    "food",
    "electronics",
    "sports",
    "books",
    "beauty",
    "toys",
    "home",
)


def _shop_category(index: int) -> str:
    return _SHOP_CATEGORIES[index % len(_SHOP_CATEGORIES)]


class _IdAllocator:
    """A tiny monotonically increasing id generator."""

    def __init__(self, start: int = 0):
        self._next = start

    def __call__(self) -> int:
        value = self._next
        self._next += 1
        return value
