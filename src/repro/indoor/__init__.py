"""Indoor space substrate: partitions, doors, semantic regions and topology.

This subpackage implements the indoor-space model the paper relies on:

* :mod:`repro.indoor.entities` — partitions (rooms/hallways), doors,
  staircases and semantic regions.
* :mod:`repro.indoor.floorplan` — the :class:`IndoorSpace` container with
  per-floor spatial indexes and point/region lookups.
* :mod:`repro.indoor.topology` — the accessibility base graph over doors
  (Lu et al., ICDE 2012 [17]) with precomputed door-to-door shortest paths.
* :mod:`repro.indoor.distance` — the minimum indoor walking distance (MIWD)
  and cached expected region-to-region distances used by the ``fst`` and
  ``fsc`` feature functions.
* :mod:`repro.indoor.builders` — deterministic floorplan generators: a
  multi-floor shopping mall (stand-in for the Hangzhou mall of Section V-B),
  a Vita-like office building (Section V-C) and a transit-hub/hospital-style
  concourse venue (scenario catalogue).
"""

from repro.indoor.entities import Door, Partition, SemanticRegion, Staircase
from repro.indoor.floorplan import IndoorSpace
from repro.indoor.topology import AccessibilityGraph
from repro.indoor.distance import IndoorDistanceOracle
from repro.indoor.builders import (
    build_concourse_hub,
    build_mall_space,
    build_office_building,
)

__all__ = [
    "Door",
    "Partition",
    "SemanticRegion",
    "Staircase",
    "IndoorSpace",
    "AccessibilityGraph",
    "IndoorDistanceOracle",
    "build_concourse_hub",
    "build_mall_space",
    "build_office_building",
]
