"""Indoor space substrate: partitions, doors, semantic regions and topology.

This subpackage implements the indoor-space model the paper relies on:

* :mod:`repro.indoor.entities` — partitions (rooms/hallways), doors,
  staircases and semantic regions.
* :mod:`repro.indoor.floorplan` — the :class:`IndoorSpace` container with
  per-floor spatial indexes and point/region lookups.
* :mod:`repro.indoor.topology` — the accessibility base graph over doors
  (Lu et al., ICDE 2012 [17]) with precomputed door-to-door shortest paths.
* :mod:`repro.indoor.distance` — the minimum indoor walking distance (MIWD)
  and cached expected region-to-region distances used by the ``fst`` and
  ``fsc`` feature functions.
* :mod:`repro.indoor.builders` — deterministic floorplan generators: a
  multi-floor shopping mall (stand-in for the Hangzhou mall of Section V-B),
  a Vita-like office building (Section V-C), a transit-hub/hospital-style
  concourse venue (scenario catalogue), and four adversarial-topology
  archetypes — airport terminal (single security choke), hospital
  (interlinked wards, cyclic access graph), stadium (closed concourse
  ring) and a multi-floor office tower (sky lobbies + express staircases).
"""

from repro.indoor.entities import Door, Partition, SemanticRegion, Staircase
from repro.indoor.floorplan import IndoorSpace
from repro.indoor.topology import AccessibilityGraph
from repro.indoor.distance import IndoorDistanceOracle
from repro.indoor.builders import (
    build_airport_terminal,
    build_concourse_hub,
    build_hospital,
    build_mall_space,
    build_office_building,
    build_office_tower,
    build_stadium,
)

__all__ = [
    "Door",
    "Partition",
    "SemanticRegion",
    "Staircase",
    "IndoorSpace",
    "AccessibilityGraph",
    "IndoorDistanceOracle",
    "build_airport_terminal",
    "build_concourse_hub",
    "build_hospital",
    "build_mall_space",
    "build_office_building",
    "build_office_tower",
    "build_stadium",
]
