"""The :class:`IndoorSpace` container.

``IndoorSpace`` glues together partitions, doors, staircases and semantic
regions and exposes the lookups the rest of the library needs:

* which partition / semantic region contains a point;
* the candidate semantic regions around an uncertain location estimate
  (spatial-index query used to restrict the CRF label space);
* the doors of a partition (used by the MIWD computation).

Per-floor R-trees index partitions and regions so lookups stay fast even for
floorplans with thousands of partitions.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.geometry.point import IndoorPoint
from repro.geometry.polygon import BoundingBox
from repro.geometry.rtree import RTree
from repro.indoor.entities import Door, Partition, SemanticRegion, Staircase


class IndoorSpace:
    """An indoor venue: partitions, doors, staircases and semantic regions."""

    def __init__(
        self,
        partitions: Iterable[Partition],
        doors: Iterable[Door],
        regions: Iterable[SemanticRegion],
        staircases: Iterable[Staircase] = (),
        name: str = "indoor-space",
    ):
        self.name = name
        self._partitions: Dict[int, Partition] = {}
        for partition in partitions:
            if partition.partition_id in self._partitions:
                raise ValueError(f"duplicate partition id {partition.partition_id}")
            self._partitions[partition.partition_id] = partition

        self._doors: Dict[int, Door] = {}
        self._doors_by_partition: Dict[int, List[Door]] = {}
        for door in doors:
            if door.door_id in self._doors:
                raise ValueError(f"duplicate door id {door.door_id}")
            for pid in door.partition_ids:
                if pid not in self._partitions:
                    raise ValueError(
                        f"door {door.door_id} references unknown partition {pid}"
                    )
                self._doors_by_partition.setdefault(pid, []).append(door)
            self._doors[door.door_id] = door

        self._staircases: List[Staircase] = list(staircases)
        for staircase in self._staircases:
            for pid in (staircase.partition_lower, staircase.partition_upper):
                if pid not in self._partitions:
                    raise ValueError(
                        f"staircase {staircase.staircase_id} references unknown partition {pid}"
                    )

        self._regions: Dict[int, SemanticRegion] = {}
        self._region_of_partition: Dict[int, int] = {}
        for region in regions:
            if region.region_id in self._regions:
                raise ValueError(f"duplicate region id {region.region_id}")
            resolved_geometries = []
            for pid in region.partition_ids:
                if pid not in self._partitions:
                    raise ValueError(
                        f"region {region.name!r} references unknown partition {pid}"
                    )
                if pid in self._region_of_partition:
                    raise ValueError(
                        f"partition {pid} belongs to two semantic regions; regions must not overlap"
                    )
                self._region_of_partition[pid] = region.region_id
                resolved_geometries.append(self._partitions[pid].geometry)
            if not region.geometries:
                region.geometries = resolved_geometries
            self._regions[region.region_id] = region

        self._partition_index: Dict[int, RTree] = {}
        self._region_index: Dict[int, RTree] = {}
        self._build_indexes()

    # ----------------------------------------------------------------- basics
    @property
    def partitions(self) -> List[Partition]:
        return list(self._partitions.values())

    @property
    def doors(self) -> List[Door]:
        return list(self._doors.values())

    @property
    def staircases(self) -> List[Staircase]:
        return list(self._staircases)

    @property
    def regions(self) -> List[SemanticRegion]:
        return list(self._regions.values())

    @property
    def region_ids(self) -> List[int]:
        return list(self._regions.keys())

    @property
    def floors(self) -> List[int]:
        return sorted({partition.floor for partition in self._partitions.values()})

    def partition(self, partition_id: int) -> Partition:
        return self._partitions[partition_id]

    def door(self, door_id: int) -> Door:
        return self._doors[door_id]

    def region(self, region_id: int) -> SemanticRegion:
        return self._regions[region_id]

    def has_region(self, region_id: int) -> bool:
        return region_id in self._regions

    def doors_of_partition(self, partition_id: int) -> List[Door]:
        """Return all doors touching the given partition."""
        return list(self._doors_by_partition.get(partition_id, []))

    def region_of_partition(self, partition_id: int) -> Optional[SemanticRegion]:
        """Return the semantic region the partition belongs to, if any."""
        region_id = self._region_of_partition.get(partition_id)
        return self._regions[region_id] if region_id is not None else None

    # ---------------------------------------------------------------- lookups
    def partition_at(self, point: IndoorPoint) -> Optional[Partition]:
        """Return the partition containing ``point``, or None if outside all."""
        index = self._partition_index.get(point.floor)
        if index is None:
            return None
        for partition in index.query_point(point.planar):
            if partition.contains(point):
                return partition
        return None

    def nearest_partition(self, point: IndoorPoint) -> Optional[Partition]:
        """Return the containing partition, or the nearest one on the same floor."""
        containing = self.partition_at(point)
        if containing is not None:
            return containing
        index = self._partition_index.get(point.floor)
        if index is None:
            return None
        nearest = index.nearest(point.planar, k=1)
        return nearest[0] if nearest else None

    def region_at(self, point: IndoorPoint) -> Optional[SemanticRegion]:
        """Return the semantic region containing ``point``, if any."""
        index = self._region_index.get(point.floor)
        if index is None:
            return None
        for region in index.query_point(point.planar):
            if region.contains(point):
                return region
        return None

    def nearest_region(self, point: IndoorPoint) -> Optional[SemanticRegion]:
        """Return the containing region, or the nearest region on the same floor.

        Falls back to the globally nearest region (any floor, by centroid
        distance with a per-floor penalty) when the point's floor has no
        regions at all — this can happen for corrupted records with a false
        floor value.
        """
        containing = self.region_at(point)
        if containing is not None:
            return containing
        index = self._region_index.get(point.floor)
        if index is not None:
            nearest = index.nearest(point.planar, k=1)
            if nearest:
                return nearest[0]
        return self._nearest_region_any_floor(point)

    def candidate_regions(
        self, point: IndoorPoint, *, radius: float = 20.0, max_candidates: int = 8
    ) -> List[SemanticRegion]:
        """Return semantic regions near an uncertain location estimate.

        The candidates are drawn from the point's reported floor first (box
        query expanded by ``radius``, topped up with nearest-neighbour search).
        When the reported floor has no regions — e.g. a false floor value in a
        corrupted record — regions from adjacent floors are considered so the
        label space is never empty.
        """
        results: List[SemanticRegion] = []
        seen: set[int] = set()
        index = self._region_index.get(point.floor)
        if index is not None:
            box = BoundingBox(point.x, point.y, point.x, point.y).expanded(radius)
            for region in index.query_bbox(box):
                if region.region_id not in seen:
                    seen.add(region.region_id)
                    results.append(region)
            if len(results) < max_candidates:
                for region in index.nearest(point.planar, k=max_candidates):
                    if region.region_id not in seen:
                        seen.add(region.region_id)
                        results.append(region)
        if not results:
            fallback = self._nearest_region_any_floor(point)
            if fallback is not None:
                results.append(fallback)
        results.sort(key=lambda region: region.distance_to(point) if region.floor == point.floor else float("inf"))
        return results[:max_candidates]

    def _nearest_region_any_floor(self, point: IndoorPoint) -> Optional[SemanticRegion]:
        best: Optional[SemanticRegion] = None
        best_score = float("inf")
        for region in self._regions.values():
            centroid = region.centroid
            planar = centroid.planar.distance_to(point.planar)
            floor_penalty = abs(region.floor - point.floor) * 50.0
            score = planar + floor_penalty
            if score < best_score:
                best_score = score
                best = region
        return best

    # -------------------------------------------------------------- internals
    def _build_indexes(self) -> None:
        for partition in self._partitions.values():
            index = self._partition_index.setdefault(partition.floor, RTree())
            index.insert(partition.geometry.bounding_box, partition)
        for region in self._regions.values():
            index = self._region_index.setdefault(region.floor, RTree())
            for geometry in region.geometries:
                index.insert(geometry.bounding_box, region)

    # -------------------------------------------------------------- reporting
    def summary(self) -> Dict[str, float]:
        """Return basic statistics of the venue (used by Table III/V reports)."""
        return {
            "partitions": len(self._partitions),
            "doors": len(self._doors),
            "staircases": len(self._staircases),
            "regions": len(self._regions),
            "floors": len(self.floors),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        stats = self.summary()
        return (
            f"IndoorSpace({self.name!r}, floors={stats['floors']}, "
            f"partitions={stats['partitions']}, doors={stats['doors']}, "
            f"regions={stats['regions']})"
        )
