"""Indoor entities: partitions, doors, staircases and semantic regions.

Following Section II-A of the paper, an indoor space is divided into
*partitions* (rooms and hallway segments) connected by *doors*.  A *semantic
region* (a shop, a cashier, a gate, ...) consists of one or more partitions
and carries application-level semantics.  Regions never overlap.  Staircases
connect partitions on adjacent floors and are modelled as special doors with a
vertical travel cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.geometry.point import IndoorPoint
from repro.geometry.polygon import Polygon


@dataclass(frozen=True)
class Partition:
    """An indoor partition: a room or a hallway segment on one floor.

    Attributes
    ----------
    partition_id:
        Unique identifier within the indoor space.
    geometry:
        Planar footprint of the partition.
    floor:
        Floor index the partition lies on.
    kind:
        Free-form category, e.g. ``"room"``, ``"hallway"`` or ``"staircase"``.
        Only used by the floorplan builders and reporting; the model itself
        does not depend on it.
    """

    partition_id: int
    geometry: Polygon
    floor: int = 0
    kind: str = "room"

    @property
    def area(self) -> float:
        return self.geometry.area

    @property
    def centroid(self) -> IndoorPoint:
        c = self.geometry.centroid
        return IndoorPoint(c.x, c.y, self.floor)

    def contains(self, point: IndoorPoint) -> bool:
        """Return True if ``point`` is on this floor and inside the footprint."""
        return point.floor == self.floor and self.geometry.contains_point(point.planar)


@dataclass(frozen=True)
class Door:
    """A door connecting exactly two partitions (or a partition and outdoors).

    Doors are the nodes of the accessibility base graph; indoor walking paths
    are sequences of doors.  A door has a point location on a floor.
    """

    door_id: int
    location: IndoorPoint
    partition_ids: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not 1 <= len(self.partition_ids) <= 2:
            raise ValueError(
                f"door {self.door_id} must connect one or two partitions, "
                f"got {self.partition_ids}"
            )

    @property
    def floor(self) -> int:
        return self.location.floor

    def connects(self, partition_id: int) -> bool:
        return partition_id in self.partition_ids

    def other_partition(self, partition_id: int) -> Optional[int]:
        """Return the partition on the other side, or None for exterior doors."""
        if partition_id not in self.partition_ids:
            raise ValueError(f"door {self.door_id} does not touch partition {partition_id}")
        for pid in self.partition_ids:
            if pid != partition_id:
                return pid
        return None


@dataclass(frozen=True)
class Staircase:
    """A staircase (or elevator) connecting two partitions on adjacent floors.

    The ``travel_distance`` is the walking-distance cost charged by the
    topology layer for moving between the two connected floors.
    """

    staircase_id: int
    location_lower: IndoorPoint
    location_upper: IndoorPoint
    partition_lower: int
    partition_upper: int
    travel_distance: float = 15.0

    def __post_init__(self) -> None:
        if self.location_upper.floor <= self.location_lower.floor:
            raise ValueError("upper end of a staircase must be on a higher floor")
        if self.travel_distance <= 0:
            raise ValueError("staircase travel distance must be positive")


@dataclass
class SemanticRegion:
    """A semantic region: one or more partitions with a name and semantics.

    The paper's examples are shops, food courts and service desks in a mall.
    Regions are the *where* part of an m-semantics triplet and the label space
    of the region variable R.
    """

    region_id: int
    name: str
    partition_ids: Tuple[int, ...]
    floor: int = 0
    category: str = "generic"
    geometries: List[Polygon] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.partition_ids:
            raise ValueError(f"semantic region {self.name!r} has no partitions")

    @property
    def area(self) -> float:
        return sum(geometry.area for geometry in self.geometries)

    @property
    def centroid(self) -> IndoorPoint:
        """Area-weighted centroid across the region's partition geometries."""
        if not self.geometries:
            raise ValueError(f"region {self.name!r} has no geometry attached")
        total_area = 0.0
        cx = 0.0
        cy = 0.0
        for geometry in self.geometries:
            area = geometry.area
            centroid = geometry.centroid
            total_area += area
            cx += centroid.x * area
            cy += centroid.y * area
        if total_area <= 0:
            first = self.geometries[0].centroid
            return IndoorPoint(first.x, first.y, self.floor)
        return IndoorPoint(cx / total_area, cy / total_area, self.floor)

    def contains(self, point: IndoorPoint) -> bool:
        """Return True if the point lies on the region's floor and inside it."""
        if point.floor != self.floor:
            return False
        planar = point.planar
        return any(geometry.contains_point(planar) for geometry in self.geometries)

    def distance_to(self, point: IndoorPoint) -> float:
        """Planar distance from a same-floor point to the region (inf otherwise)."""
        if point.floor != self.floor:
            return float("inf")
        planar = point.planar
        return min(geometry.distance_to_point(planar) for geometry in self.geometries)

    def sample_points(self, per_side: int = 2) -> List[IndoorPoint]:
        """Return representative interior points used for expected-distance estimates."""
        points: List[IndoorPoint] = []
        for geometry in self.geometries:
            for sample in geometry.sample_grid_points(per_side):
                points.append(IndoorPoint(sample.x, sample.y, self.floor))
        if not points:
            points.append(self.centroid)
        return points

    def __hash__(self) -> int:
        return hash(self.region_id)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SemanticRegion):
            return NotImplemented
        return self.region_id == other.region_id

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"SemanticRegion({self.region_id}, {self.name!r}, floor={self.floor})"
