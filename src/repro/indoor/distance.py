"""Minimum indoor walking distance (MIWD) and expected region distances.

The space transition feature ``fst`` and spatial consistency feature ``fsc``
both depend on the *minimum indoor walking distance* between points and its
expectation over points drawn from two semantic regions (Equations 4 and 5 of
the paper).  :class:`IndoorDistanceOracle` provides:

* ``point_distance(p, q)`` — MIWD between two indoor points.  Within one
  partition this is the planar Euclidean distance; across partitions the walk
  must pass through doors and is computed via the accessibility base graph.
* ``region_distance(r_a, r_b)`` — the expected MIWD between points sampled
  from two semantic regions, cached per region pair.
* ``region_point_distance(r, p)`` — expected MIWD from a region to a point,
  used when a quick region-to-observation distance is needed.

All results are memoised; experiments touch the same region pairs over and
over so caching dominates the cost profile exactly as the paper's precomputed
door-to-door matrix does.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.geometry.point import IndoorPoint
from repro.indoor.floorplan import IndoorSpace
from repro.indoor.topology import AccessibilityGraph


class IndoorDistanceOracle:
    """Cached MIWD computations over an :class:`IndoorSpace`."""

    def __init__(
        self,
        space: IndoorSpace,
        graph: Optional[AccessibilityGraph] = None,
        *,
        region_samples_per_side: int = 2,
    ):
        self._space = space
        self._graph = graph if graph is not None else AccessibilityGraph(space)
        self._samples_per_side = region_samples_per_side
        self._region_pair_cache: Dict[Tuple[int, int], float] = {}
        self._region_samples: Dict[int, List[IndoorPoint]] = {}

    @property
    def space(self) -> IndoorSpace:
        return self._space

    @property
    def graph(self) -> AccessibilityGraph:
        return self._graph

    # ------------------------------------------------------------ point level
    def point_distance(self, p: IndoorPoint, q: IndoorPoint) -> float:
        """Minimum indoor walking distance between two points.

        Falls back to the planar Euclidean distance (plus a floor-change
        penalty) when either point lies outside every partition or the door
        graph does not connect the two partitions — this keeps the oracle
        total, which matters because positioning noise regularly pushes
        estimates slightly outside walls.
        """
        part_p = self._space.nearest_partition(p)
        part_q = self._space.nearest_partition(q)
        fallback = self._euclidean_fallback(p, q)
        if part_p is None or part_q is None:
            return fallback
        if part_p.partition_id == part_q.partition_id:
            return p.planar.distance_to(q.planar)
        best = float("inf")
        doors_p = self._space.doors_of_partition(part_p.partition_id)
        doors_q = self._space.doors_of_partition(part_q.partition_id)
        for door_p in doors_p:
            enter = p.planar.distance_to(door_p.location.planar)
            for door_q in doors_q:
                middle = self._graph.door_distance(door_p.door_id, door_q.door_id)
                if middle == float("inf"):
                    continue
                leave = q.planar.distance_to(door_q.location.planar)
                total = enter + middle + leave
                if total < best:
                    best = total
        if best == float("inf"):
            return fallback
        # A wall-hugging door path can never be shorter than the straight line.
        return max(best, p.planar.distance_to(q.planar) if p.floor == q.floor else best)

    def _euclidean_fallback(self, p: IndoorPoint, q: IndoorPoint) -> float:
        planar = p.planar.distance_to(q.planar)
        floor_penalty = abs(p.floor - q.floor) * self._default_floor_penalty()
        return planar + floor_penalty

    def _default_floor_penalty(self) -> float:
        staircases = self._space.staircases
        if not staircases:
            return 30.0
        return sum(s.travel_distance for s in staircases) / len(staircases)

    # ----------------------------------------------------------- region level
    def region_distance(self, region_a: int, region_b: int) -> float:
        """Expected MIWD between two semantic regions, ``E_{p∈ra,q∈rb}[d_I(p,q)]``.

        Symmetric and zero for identical regions (the paper's ``fst`` evaluates
        to ``exp(0) = 1`` in that case).  Cached per unordered pair.
        """
        if region_a == region_b:
            return 0.0
        key = (region_a, region_b) if region_a <= region_b else (region_b, region_a)
        cached = self._region_pair_cache.get(key)
        if cached is not None:
            return cached
        # Sum in canonical (key) order: floating-point addition is not
        # associative, so summing a×b versus b×a pairs differs in the last
        # ulp — and the first request's order would otherwise decide what
        # the unordered cache keeps.  Canonicalising makes the value
        # independent of which caller (or inference engine) asks first.
        samples_a = self._samples_of(key[0])
        samples_b = self._samples_of(key[1])
        total = 0.0
        count = 0
        for p in samples_a:
            for q in samples_b:
                total += self.point_distance(p, q)
                count += 1
        value = total / count if count else float("inf")
        self._region_pair_cache[key] = value
        return value

    def region_point_distance(self, region_id: int, point: IndoorPoint) -> float:
        """Expected MIWD from a region to a point (mean over region samples)."""
        samples = self._samples_of(region_id)
        if not samples:
            return float("inf")
        return sum(self.point_distance(p, point) for p in samples) / len(samples)

    def cache_size(self) -> int:
        """Number of cached region-pair distances."""
        return len(self._region_pair_cache)

    # -------------------------------------------------------------- internals
    def _samples_of(self, region_id: int) -> List[IndoorPoint]:
        samples = self._region_samples.get(region_id)
        if samples is None:
            region = self._space.region(region_id)
            samples = region.sample_points(self._samples_per_side)
            self._region_samples[region_id] = samples
        return samples
