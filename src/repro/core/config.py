"""Configuration of the C2MN model, features and learning algorithm.

All hyper-parameters of the paper are collected in one frozen dataclass so
experiments can be described declaratively and reproduced exactly.  The
defaults follow Section V-B1 (real-data experiments); :meth:`C2MNConfig.fast`
returns a scaled-down configuration for unit tests and laptop-scale
benchmarks, and :meth:`C2MNConfig.synthetic` follows Section V-C.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

#: Valid values of :attr:`C2MNConfig.engine`; re-exported by
#: :mod:`repro.crf.engine`, whose :func:`make_engine` maps each name to an
#: implementation.  Defined here because the config layer cannot import the
#: engine layer.
ENGINE_NAMES: Tuple[str, str] = ("reference", "vectorized")


@dataclass(frozen=True)
class C2MNConfig:
    """Hyper-parameters of the C2MN model and its learning algorithm.

    Feature parameters (Section III-B)
    ----------------------------------
    uncertainty_radius:
        Radius ``v`` of the circular uncertainty region in ``fsm`` (paper: 15 m
        on the real data, 10 m on synthetic data).
    alpha, beta:
        Constants of the event matching function ``fem`` for border points
        (paper: α = 0.8, β = 0.6, with 0 < β < α < 1).
    gamma_st:
        Scale of the space transition function ``fst`` (paper: 0.1).
    gamma_ec:
        Scale of the moving speed in the event consistency function ``fec``
        (paper: 0.2).
    gamma_sc:
        Scale applied to the distance difference inside the spatial
        consistency function ``fsc``.  The paper uses an unscaled exponent;
        with metre-scale distances that makes the feature vanish numerically,
        so a scale is exposed here (documented substitution, see DESIGN.md).

    ST-DBSCAN parameters (event initialisation and ``fem``)
    --------------------------------------------------------
    eps_spatial, eps_temporal, min_points:
        εs, εt and ptm of the paper (8 m, 60 s, 4).

    Learning parameters (Section IV)
    --------------------------------
    sigma2:
        Variance of the zero-mean Gaussian prior (paper: 0.5 real / 0.2 synthetic).
    delta:
        Convergence threshold δ on the Chebyshev distance between consecutive
        weight vectors (paper: 1e-3).
    max_iterations:
        Maximum number of alternate-learning steps ``max_iter`` (paper: 90).
    mcmc_samples:
        Number M of Gibbs samples per step used to re-configure the companion
        variable (paper: 800 real / 500 synthetic).
    lbfgs_iterations:
        Maximum L-BFGS iterations of the inner weight optimisation per step.
    first_configured:
        Which variable is configured before the first step: ``"event"``
        (paper's default, via ST-DBSCAN) or ``"region"`` (the C2MN@R variant,
        via nearest-neighbour matching).

    Inference / decoding parameters
    -------------------------------
    candidate_radius, max_candidates:
        Spatial-index query radius and cap for the per-record candidate
        region set (keeps the region label space tractable).
    icm_sweeps:
        Maximum number of ICM sweeps when decoding a sequence.
    engine:
        Inference engine used for ICM decoding and Gibbs sampling:
        ``"vectorized"`` (default) scores nodes against potential tables
        precomputed per sequence, ``"reference"`` recomputes features at
        every node visit.  Both produce identical labelings for the same
        seed (the vectorized assembly is bit-exact); the reference engine
        remains available as the executable specification and for
        debugging new feature functions.

    Structure flags (model variants of Section V-A)
    ------------------------------------------------
    use_transition, use_synchronization, use_event_segmentation,
    use_space_segmentation:
        Disable individual clique categories to obtain C2MN/Tran, C2MN/Syn,
        C2MN/ES and C2MN/SS.  Disabling both segmentation categories yields
        CMN (regions and events become decoupled).
    """

    # Feature parameters
    uncertainty_radius: float = 15.0
    alpha: float = 0.8
    beta: float = 0.6
    gamma_st: float = 0.1
    gamma_ec: float = 0.2
    gamma_sc: float = 0.1

    # ST-DBSCAN parameters
    eps_spatial: float = 8.0
    eps_temporal: float = 60.0
    min_points: int = 4

    # Learning parameters
    sigma2: float = 0.5
    delta: float = 1e-3
    max_iterations: int = 20
    mcmc_samples: int = 50
    lbfgs_iterations: int = 8
    first_configured: str = "event"

    # Optional feature extensions described alongside Equations 3–5
    use_time_decay: bool = False
    gamma_time: float = 0.01

    # Inference parameters
    candidate_radius: float = 20.0
    max_candidates: int = 6
    icm_sweeps: int = 4
    engine: str = "vectorized"

    # Structure flags
    use_transition: bool = True
    use_synchronization: bool = True
    use_event_segmentation: bool = True
    use_space_segmentation: bool = True

    # Reproducibility
    seed: int = 97

    def __post_init__(self) -> None:
        if not 0.0 < self.beta < self.alpha < 1.0:
            raise ValueError("fem constants must satisfy 0 < beta < alpha < 1")
        if self.uncertainty_radius <= 0:
            raise ValueError("uncertainty_radius must be positive")
        if not 0.0 < self.gamma_st < 1.0:
            raise ValueError("gamma_st must be in (0, 1)")
        if not 0.0 < self.gamma_ec < 1.0:
            raise ValueError("gamma_ec must be in (0, 1)")
        if self.gamma_sc <= 0:
            raise ValueError("gamma_sc must be positive")
        if not 0.0 < self.gamma_time < 1.0:
            raise ValueError("gamma_time must be in (0, 1)")
        if self.sigma2 <= 0:
            raise ValueError("sigma2 must be positive")
        if self.delta <= 0:
            raise ValueError("delta must be positive")
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be at least 1")
        if self.mcmc_samples < 1:
            raise ValueError("mcmc_samples must be at least 1")
        if self.lbfgs_iterations < 1:
            raise ValueError("lbfgs_iterations must be at least 1")
        if self.first_configured not in ("event", "region"):
            raise ValueError("first_configured must be 'event' or 'region'")
        if self.max_candidates < 1:
            raise ValueError("max_candidates must be at least 1")
        if self.icm_sweeps < 1:
            raise ValueError("icm_sweeps must be at least 1")
        if self.engine not in ENGINE_NAMES:
            raise ValueError(f"engine must be one of {ENGINE_NAMES}")

    # ------------------------------------------------------------- factories
    @classmethod
    def paper_real(cls) -> "C2MNConfig":
        """Parameters of the real-data experiments (Section V-B1)."""
        return cls(
            uncertainty_radius=15.0,
            sigma2=0.5,
            max_iterations=90,
            mcmc_samples=800,
            eps_spatial=8.0,
            eps_temporal=60.0,
            min_points=4,
        )

    @classmethod
    def paper_synthetic(cls) -> "C2MNConfig":
        """Parameters of the synthetic-data experiments (Section V-C)."""
        return cls(
            uncertainty_radius=10.0,
            sigma2=0.2,
            max_iterations=50,
            mcmc_samples=500,
        )

    @classmethod
    def fast(cls, **overrides) -> "C2MNConfig":
        """A laptop-scale configuration for tests, examples and CI benchmarks."""
        base = cls(
            uncertainty_radius=10.0,
            max_iterations=4,
            mcmc_samples=8,
            lbfgs_iterations=5,
            icm_sweeps=3,
            max_candidates=5,
            eps_spatial=6.0,
            eps_temporal=90.0,
            min_points=3,
        )
        return replace(base, **overrides) if overrides else base

    # ----------------------------------------------------------------- views
    def with_structure(
        self,
        *,
        use_transition: Optional[bool] = None,
        use_synchronization: Optional[bool] = None,
        use_event_segmentation: Optional[bool] = None,
        use_space_segmentation: Optional[bool] = None,
    ) -> "C2MNConfig":
        """Return a copy with some clique categories switched on or off."""
        return replace(
            self,
            use_transition=self.use_transition if use_transition is None else use_transition,
            use_synchronization=(
                self.use_synchronization
                if use_synchronization is None
                else use_synchronization
            ),
            use_event_segmentation=(
                self.use_event_segmentation
                if use_event_segmentation is None
                else use_event_segmentation
            ),
            use_space_segmentation=(
                self.use_space_segmentation
                if use_space_segmentation is None
                else use_space_segmentation
            ),
        )

    def with_first_configured(self, variable: str) -> "C2MNConfig":
        """Return a copy that configures ``variable`` ('event' or 'region') first."""
        return replace(self, first_configured=variable)

    def with_engine(self, engine: str) -> "C2MNConfig":
        """Return a copy using ``engine`` ('vectorized' or 'reference')."""
        return replace(self, engine=engine)

    @property
    def is_coupled(self) -> bool:
        """True when at least one segmentation clique category is active."""
        return self.use_event_segmentation or self.use_space_segmentation
