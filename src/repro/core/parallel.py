"""Thin compatibility shim over :mod:`repro.runtime`.

Historically this module owned the thread-pool mapping used by the batch
annotation and evaluation APIs.  That role moved to the process-capable
:class:`repro.runtime.Executor`; ``map_with_workers`` remains as a stable
alias so existing callers (and downstream code written against the old
seed) keep working unchanged — including the original validation contract,
which is now enforced uniformly for every batch size.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, TypeVar

from repro.runtime import Executor

ItemT = TypeVar("ItemT")
ResultT = TypeVar("ResultT")


def map_with_workers(
    func: Callable[[ItemT], ResultT],
    items: Sequence[ItemT],
    workers: Optional[int],
    *,
    backend: str = "thread",
) -> List[ResultT]:
    """Map ``func`` over ``items`` through a :class:`repro.runtime.Executor`.

    ``workers`` of ``None`` or 1 runs serially; larger counts fan out over
    the selected ``backend`` (``"thread"`` by default, matching the
    historical behaviour; ``"serial"`` and ``"process"`` are also
    accepted).  Results always come back in input order.  Invalid
    ``workers`` values (< 1) raise :class:`ValueError` regardless of the
    batch size.  ``func`` must be thread-safe for the thread backend and
    picklable for the process backend.
    """
    return Executor(backend=backend, workers=workers).map(func, items)
