"""Thread-pool mapping shared by the batch annotation and evaluation APIs."""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, TypeVar

ItemT = TypeVar("ItemT")
ResultT = TypeVar("ResultT")


def map_with_workers(
    func: Callable[[ItemT], ResultT],
    items: Sequence[ItemT],
    workers: Optional[int],
) -> List[ResultT]:
    """Map ``func`` over ``items``, optionally through a thread pool.

    ``workers`` of ``None`` or 1 (or a batch of at most one item) runs
    serially; larger counts fan out over a :class:`ThreadPoolExecutor`.
    Results always come back in input order regardless of completion order.
    ``func`` must be thread-safe when ``workers`` exceeds 1.
    """
    if workers is not None and workers < 1:
        raise ValueError("workers must be at least 1")
    if workers is None or workers == 1 or len(items) <= 1:
        return [func(item) for item in items]
    with ThreadPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(func, items))
