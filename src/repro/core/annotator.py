"""The public annotator API: train a C2MN and annotate p-sequences.

:class:`C2MNAnnotator` wires together the substrate pieces — the indoor space,
the distance oracle, the feature extractor, the C2MN model, the alternate
learner and the label-and-merge step — behind the unified
:class:`repro.core.protocol.Annotator` contract:

* :meth:`C2MNAnnotator.fit` learns the template weights from labeled
  sequences (Section IV).
* :meth:`C2MNAnnotator.predict_labels` returns record-level region and event
  labels for an unseen p-sequence (the *labeling* step of Figure 2).
* :meth:`C2MNAnnotator.annotate` additionally merges the labels into
  m-semantics (the *annotation* step).
* :meth:`C2MNAnnotator.annotate_many` / :meth:`C2MNAnnotator.predict_labels_many`
  batch over many p-sequences under a
  :class:`~repro.runtime.ExecutionPolicy` (length-bucketed lockstep
  decoding, optional thread/process fan-out).
* :meth:`C2MNAnnotator.save` / :meth:`C2MNAnnotator.load` persist the trained
  weights and config as JSON so a model ships without retraining.

Decoding and sampling run on the inference engine selected by
``config.engine`` — ``"vectorized"`` (potential tables, the default) or
``"reference"`` (per-visit feature recomputation); see
:mod:`repro.crf.engine`.  Both decode identically given the same seed.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.config import C2MNConfig
from repro.core.protocol import AnnotatorBase
from repro.crf.engine import InferenceEngine, make_engine
from repro.crf.features import FeatureExtractor, SequenceData
from repro.crf.batch import decode_icm_many
from repro.crf.inference import decode_icm, initial_events, initial_regions
from repro.crf.learning import AlternateLearner, TrainingReport
from repro.crf.model import C2MNModel
from repro.indoor.distance import IndoorDistanceOracle
from repro.indoor.floorplan import IndoorSpace
from repro.mobility.records import LabeledSequence, PositioningSequence
from repro.runtime import (
    DerivedStateCache,
    config_fingerprint,
    sequence_fingerprint,
    space_fingerprint,
)


class C2MNAnnotator(AnnotatorBase):
    """End-to-end m-semantics annotation with a coupled conditional Markov network."""

    def __init__(
        self,
        space: IndoorSpace,
        *,
        config: Optional[C2MNConfig] = None,
        oracle: Optional[IndoorDistanceOracle] = None,
        cache: Optional[DerivedStateCache] = None,
        name: str = "C2MN",
    ):
        super().__init__(space, config=config, name=name)
        self._oracle = oracle if oracle is not None else IndoorDistanceOracle(space)
        self._extractor = FeatureExtractor(space, self._config, oracle=self._oracle)
        self._model = C2MNModel(self._extractor)
        self._engine = make_engine(self._model, self._config.engine)
        self._report: Optional[TrainingReport] = None
        self._cache = cache
        # Prepared state depends on the config AND the venue, so both go
        # into the key — a cache shared across annotators on different
        # spaces must never serve one venue's state to another.
        self._config_key = (
            f"{config_fingerprint(self._config)}:{space_fingerprint(space)}"
        )

    # ------------------------------------------------------------ properties
    @property
    def model(self) -> C2MNModel:
        return self._model

    @property
    def engine(self) -> InferenceEngine:
        """The inference engine decoding runs on (selected by ``config.engine``)."""
        return self._engine

    @property
    def training_report(self) -> Optional[TrainingReport]:
        return self._report

    @property
    def cache(self) -> Optional[DerivedStateCache]:
        """The derived-state cache, or ``None`` when caching is disabled."""
        return self._cache

    def enable_cache(self, max_entries: int = 256) -> DerivedStateCache:
        """Attach (or return the existing) derived-state cache.

        The cache memoises per-sequence preparation — density labels,
        candidate queries, distances and the lazily built potential tables —
        keyed by the config fingerprint and the raw sequence content, so
        repeated decodes of the same sequences skip all label-independent
        rebuild work.  The prepared state is weight-independent: refitting
        the model does not invalidate it, while any config change changes
        the key.  Worth enabling for streaming re-decodes and repeated
        evaluation passes; pointless for one-shot batch decoding.
        """
        if self._cache is None:
            self._cache = DerivedStateCache(max_entries=max_entries)
        return self._cache

    @property
    def weights(self) -> np.ndarray:
        return self._model.weights

    # -------------------------------------------------------------- training
    def _fit(self, training_sequences: Sequence[LabeledSequence]) -> TrainingReport:
        """Learn the template weights from fully labeled sequences."""
        if not training_sequences:
            raise ValueError("fit requires at least one labeled training sequence")
        prepared = [
            self._extractor.prepare(
                labeled.sequence,
                true_regions=labeled.region_labels,
                true_events=labeled.event_labels,
            )
            for labeled in training_sequences
        ]
        learner = AlternateLearner(self._model)
        self._report = learner.fit(prepared)
        return self._report

    # ------------------------------------------------------------- inference
    def _prepared(self, sequence: PositioningSequence) -> SequenceData:
        """Prepare ``sequence``, consulting the derived-state cache if attached."""
        if self._cache is None:
            return self._extractor.prepare(sequence)
        key = f"prep:{self._config_key}:{sequence_fingerprint(sequence)}"
        return self._cache.get_or_build(
            key, lambda: self._extractor.prepare(sequence)
        )

    def predict_labels(
        self, sequence: PositioningSequence
    ) -> Tuple[List[int], List[str]]:
        """Return the decoded region and event labels of one p-sequence."""
        data = self._prepared(sequence)
        return decode_icm(self._engine, data)

    def _decode_bucket(
        self, sequences: Sequence[PositioningSequence]
    ) -> List[Tuple[List[int], List[str]]]:
        """Decode one bucket of distinct sequences with lockstep ICM.

        Routes through :func:`repro.crf.batch.decode_icm_many`, whose
        lockstep sweeps are bitwise identical per sequence to the
        standalone :func:`repro.crf.inference.decode_icm` call in
        :meth:`predict_labels` (the conformance suite asserts it).
        """
        datas = [self._prepared(sequence) for sequence in sequences]
        return decode_icm_many(self._engine, datas)

    # ----------------------------------------------------------- persistence
    def save(self, path: Union[str, Path]) -> None:
        """Write the trained weights, config and name to a JSON file.

        The file is readable with :meth:`load` (and, weights/config-wise,
        with :func:`repro.persistence.load_model_weights`).
        """
        from repro.persistence.serializers import save_annotator

        if not self.is_fitted:
            raise ValueError("cannot save an unfitted annotator; call fit() first")
        save_annotator(self, path)

    @classmethod
    def load(
        cls,
        path: Union[str, Path],
        space: IndoorSpace,
        *,
        oracle: Optional[IndoorDistanceOracle] = None,
    ) -> "C2MNAnnotator":
        """Rebuild a trained annotator from :meth:`save` output.

        The indoor space is code, not data, so the caller supplies it (and
        optionally a shared distance oracle).  The loaded annotator decodes
        bitwise-identically to the one that was saved: same weights, same
        config, same engine.
        """
        from repro.persistence.serializers import load_annotator

        return load_annotator(path, space, oracle=oracle, annotator_cls=cls)

    def _restore_weights(self, weights: np.ndarray) -> None:
        """Install persisted weights and mark the annotator fitted (no report)."""
        self._model.weights = np.asarray(weights, dtype=float)
        self._fitted = True

    # ------------------------------------------------------------- utilities
    def baseline_labels(
        self, sequence: PositioningSequence
    ) -> Tuple[List[int], List[str]]:
        """Return the cheap initialisations (nearest region + ST-DBSCAN events).

        Useful as a sanity baseline and as the starting point the decoder
        refines; exposed for diagnostics and tests.
        """
        data = self._prepared(sequence)
        return initial_regions(data), initial_events(data)

    def prepare(self, sequence: PositioningSequence) -> SequenceData:
        """Expose the prepared (label-independent) view of a sequence."""
        return self._extractor.prepare(sequence)
