"""The public annotator API: train a C2MN and annotate p-sequences.

:class:`C2MNAnnotator` wires together the substrate pieces — the indoor space,
the distance oracle, the feature extractor, the C2MN model, the alternate
learner and the label-and-merge step — behind a scikit-learn-like
``fit`` / ``predict`` interface:

* :meth:`C2MNAnnotator.fit` learns the template weights from labeled
  sequences (Section IV).
* :meth:`C2MNAnnotator.predict_labels` returns record-level region and event
  labels for an unseen p-sequence (the *labeling* step of Figure 2).
* :meth:`C2MNAnnotator.annotate` additionally merges the labels into
  m-semantics (the *annotation* step).
* :meth:`C2MNAnnotator.annotate_many` / :meth:`C2MNAnnotator.predict_labels_many`
  batch over many p-sequences, optionally in parallel (``workers=N``).

Decoding and sampling run on the inference engine selected by
``config.engine`` — ``"vectorized"`` (potential tables, the default) or
``"reference"`` (per-visit feature recomputation); see
:mod:`repro.crf.engine`.  Both decode identically given the same seed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import C2MNConfig
from repro.core.merge import merge_record_labels
from repro.core.parallel import map_with_workers
from repro.crf.engine import InferenceEngine, make_engine
from repro.crf.features import FeatureExtractor, SequenceData
from repro.crf.inference import decode_icm, initial_events, initial_regions
from repro.crf.learning import AlternateLearner, TrainingReport
from repro.crf.model import C2MNModel
from repro.indoor.distance import IndoorDistanceOracle
from repro.indoor.floorplan import IndoorSpace
from repro.mobility.records import LabeledSequence, MSemantics, PositioningSequence


class C2MNAnnotator:
    """End-to-end m-semantics annotation with a coupled conditional Markov network."""

    def __init__(
        self,
        space: IndoorSpace,
        *,
        config: Optional[C2MNConfig] = None,
        oracle: Optional[IndoorDistanceOracle] = None,
        name: str = "C2MN",
    ):
        self.name = name
        self._space = space
        self._config = config if config is not None else C2MNConfig()
        self._oracle = oracle if oracle is not None else IndoorDistanceOracle(space)
        self._extractor = FeatureExtractor(space, self._config, oracle=self._oracle)
        self._model = C2MNModel(self._extractor)
        self._engine = make_engine(self._model, self._config.engine)
        self._report: Optional[TrainingReport] = None

    # ------------------------------------------------------------ properties
    @property
    def space(self) -> IndoorSpace:
        return self._space

    @property
    def config(self) -> C2MNConfig:
        return self._config

    @property
    def model(self) -> C2MNModel:
        return self._model

    @property
    def engine(self) -> InferenceEngine:
        """The inference engine decoding runs on (selected by ``config.engine``)."""
        return self._engine

    @property
    def is_fitted(self) -> bool:
        return self._report is not None

    @property
    def training_report(self) -> Optional[TrainingReport]:
        return self._report

    @property
    def weights(self) -> np.ndarray:
        return self._model.weights

    # -------------------------------------------------------------- training
    def fit(self, training_sequences: Sequence[LabeledSequence]) -> TrainingReport:
        """Learn the template weights from fully labeled sequences."""
        if not training_sequences:
            raise ValueError("fit requires at least one labeled training sequence")
        prepared = [
            self._extractor.prepare(
                labeled.sequence,
                true_regions=labeled.region_labels,
                true_events=labeled.event_labels,
            )
            for labeled in training_sequences
        ]
        learner = AlternateLearner(self._model)
        self._report = learner.fit(prepared)
        return self._report

    # ------------------------------------------------------------- inference
    def predict_labels(
        self, sequence: PositioningSequence
    ) -> Tuple[List[int], List[str]]:
        """Return the decoded region and event labels of one p-sequence."""
        data = self._extractor.prepare(sequence)
        return decode_icm(self._engine, data)

    def predict_labeled_sequence(self, sequence: PositioningSequence) -> LabeledSequence:
        """Return the decoded labels wrapped in a :class:`LabeledSequence`."""
        regions, events = self.predict_labels(sequence)
        return LabeledSequence(
            sequence=sequence,
            region_labels=regions,
            event_labels=events,
            object_id=sequence.object_id,
        )

    def annotate(
        self,
        sequence: PositioningSequence,
        *,
        region_grouping: Optional[Dict[int, int]] = None,
    ) -> List[MSemantics]:
        """Label the sequence and merge the labels into m-semantics (Figure 2)."""
        regions, events = self.predict_labels(sequence)
        return merge_record_labels(
            sequence, regions, events, region_grouping=region_grouping
        )

    def predict_labels_many(
        self,
        sequences: Sequence[PositioningSequence],
        *,
        workers: Optional[int] = None,
    ) -> List[Tuple[List[int], List[str]]]:
        """Decode a collection of p-sequences, optionally in parallel.

        ``workers`` > 1 decodes with a thread pool (sequences are independent
        and each carries its own prepared data, so decoding is thread-safe;
        the shared feature caches only ever gain entries).  Results are
        returned in input order regardless of completion order.
        """
        return map_with_workers(self.predict_labels, sequences, workers)

    def annotate_many(
        self,
        sequences: Sequence[PositioningSequence],
        *,
        workers: Optional[int] = None,
        region_grouping: Optional[Dict[int, int]] = None,
    ) -> List[List[MSemantics]]:
        """Annotate a collection of p-sequences, optionally in parallel.

        Same threading model and ordering guarantee as
        :meth:`predict_labels_many`.
        """
        def annotate_one(sequence: PositioningSequence) -> List[MSemantics]:
            return self.annotate(sequence, region_grouping=region_grouping)

        return map_with_workers(annotate_one, sequences, workers)

    # ------------------------------------------------------------- utilities
    def baseline_labels(
        self, sequence: PositioningSequence
    ) -> Tuple[List[int], List[str]]:
        """Return the cheap initialisations (nearest region + ST-DBSCAN events).

        Useful as a sanity baseline and as the starting point the decoder
        refines; exposed for diagnostics and tests.
        """
        data = self._extractor.prepare(sequence)
        return initial_regions(data), initial_events(data)

    def prepare(self, sequence: PositioningSequence) -> SequenceData:
        """Expose the prepared (label-independent) view of a sequence."""
        return self._extractor.prepare(sequence)
