"""Public API of the reproduction: configuration, annotator and variants.

Typical usage::

    from repro.core import C2MNAnnotator, C2MNConfig
    from repro.indoor import build_mall_space
    from repro.mobility.dataset import generate_dataset, train_test_split

    space = build_mall_space(floors=2, shops_per_side=6)
    dataset = generate_dataset(space, objects=12, duration=1800.0)
    train, test = train_test_split(dataset)

    annotator = C2MNAnnotator(space, config=C2MNConfig.fast())
    annotator.fit(train.sequences)
    semantics = annotator.annotate(test.sequences[0].sequence)
"""

from repro.core.config import C2MNConfig
from repro.core.protocol import Annotator, AnnotatorBase
from repro.core.annotator import C2MNAnnotator
from repro.core.merge import merge_labeled_sequence
from repro.core.variants import (
    VARIANT_NAMES,
    make_annotator,
    make_c2mn,
    make_cmn,
    make_variant,
)

__all__ = [
    "Annotator",
    "AnnotatorBase",
    "C2MNConfig",
    "C2MNAnnotator",
    "merge_labeled_sequence",
    "VARIANT_NAMES",
    "make_annotator",
    "make_c2mn",
    "make_cmn",
    "make_variant",
]
