"""Label-and-merge: turning record-level labels into m-semantics.

Figure 2 of the paper: once every positioning record carries a region label
and an event label, consecutive records with identical region *and* event
labels are merged into one m-semantics whose time period spans the run.

The merge can also be performed at a coarser region granularity ("in a large
mall we can construct m-semantics according to different shops or different
business areas"): :func:`merge_labeled_sequence` accepts an optional
``region_grouping`` mapping that projects region ids onto group ids before
merging.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.mobility.records import (
    LabeledSequence,
    MSemantics,
    PositioningSequence,
    merge_labels_to_semantics,
)


def merge_labeled_sequence(
    labeled: LabeledSequence,
    *,
    region_grouping: Optional[Dict[int, int]] = None,
) -> List[MSemantics]:
    """Merge a labeled sequence into its m-semantics sequence.

    Parameters
    ----------
    labeled:
        The record-level labels produced by a model (or the ground truth).
    region_grouping:
        Optional mapping ``region_id → group_id``.  When given, records are
        merged at the group granularity (e.g. business areas instead of
        shops); the resulting m-semantics carry the group id as their region.

    Returns
    -------
    list of MSemantics
        Time-ordered and non-overlapping (Definition 3).
    """
    if region_grouping is None:
        return merge_labels_to_semantics(labeled)
    projected = LabeledSequence(
        sequence=labeled.sequence,
        region_labels=[
            region_grouping.get(region, region) for region in labeled.region_labels
        ],
        event_labels=list(labeled.event_labels),
        object_id=labeled.object_id,
    )
    return merge_labels_to_semantics(projected)


def merge_record_labels(
    sequence: PositioningSequence,
    region_labels: Sequence[int],
    event_labels: Sequence[str],
    *,
    region_grouping: Optional[Dict[int, int]] = None,
) -> List[MSemantics]:
    """Convenience wrapper building the :class:`LabeledSequence` inline."""
    labeled = LabeledSequence(
        sequence=sequence,
        region_labels=list(region_labels),
        event_labels=list(event_labels),
    )
    return merge_labeled_sequence(labeled, region_grouping=region_grouping)
