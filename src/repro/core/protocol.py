"""The unified :class:`Annotator` contract every annotation method implements.

Two pieces live here:

* :class:`Annotator` — a runtime-checkable :class:`typing.Protocol` describing
  the surface shared by every compared method: ``fit`` / ``predict_labels`` /
  ``predict_labeled_sequence`` / ``annotate`` plus the ``*_many`` batch
  variants and the ``is_fitted`` / ``name`` introspection attributes.  The
  evaluation harness, the experiment runners, the streaming
  :class:`repro.service.AnnotationService` and the examples are all written
  against this protocol, so C2MN-family annotators and baselines are
  interchangeable everywhere.
* :class:`AnnotatorBase` — the shared implementation.  Concrete methods
  implement two hooks — :meth:`AnnotatorBase._fit` and
  :meth:`AnnotatorBase.predict_labels` — and inherit the label wrapping,
  label-and-merge and (optionally parallel) batch machinery that used to be
  duplicated between ``core/annotator.py`` and ``baselines/base.py``.

The protocol is structural: any object with the right attributes satisfies
``isinstance(obj, Annotator)`` whether or not it derives from
:class:`AnnotatorBase`.
"""

from __future__ import annotations

import copy
from abc import ABC, abstractmethod
from typing import (
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

from repro.core.config import C2MNConfig
from repro.core.merge import merge_record_labels
from repro.crf.batch import bucket_indices
from repro.indoor.floorplan import IndoorSpace
from repro.runtime import (
    ExecutionPolicy,
    Executor,
    UNSET,
    resolve_policy,
    sequence_fingerprint,
)
from repro.mobility.records import LabeledSequence, MSemantics, PositioningSequence


@runtime_checkable
class Annotator(Protocol):
    """Structural contract of every annotation method (C2MN family and baselines).

    ``fit`` learns from labeled sequences; ``predict_labels`` returns
    record-level ``(regions, events)`` for one p-sequence; ``annotate`` merges
    the labels into m-semantics; the ``*_many`` variants batch over many
    sequences with an optional thread pool.  ``is_fitted`` and ``name``
    support introspection by harnesses and services.
    """

    name: str

    @property
    def is_fitted(self) -> bool: ...

    def fit(self, training_sequences: Sequence[LabeledSequence]): ...

    def predict_labels(
        self, sequence: PositioningSequence
    ) -> Tuple[List[int], List[str]]: ...

    def predict_labeled_sequence(
        self, sequence: PositioningSequence
    ) -> LabeledSequence: ...

    def annotate(
        self,
        sequence: PositioningSequence,
        *,
        region_grouping: Optional[Dict[int, int]] = None,
    ) -> List[MSemantics]: ...

    def predict_labels_many(
        self,
        sequences: Sequence[PositioningSequence],
        *,
        policy: Optional[ExecutionPolicy] = None,
    ) -> List[Tuple[List[int], List[str]]]: ...

    def annotate_many(
        self,
        sequences: Sequence[PositioningSequence],
        *,
        policy: Optional[ExecutionPolicy] = None,
        region_grouping: Optional[Dict[int, int]] = None,
    ) -> List[List[MSemantics]]: ...


class AnnotatorBase(ABC):
    """Shared implementation of the :class:`Annotator` protocol.

    Subclasses implement :meth:`_fit` (may be empty for parameter-free
    methods) and :meth:`predict_labels`; everything else — label wrapping,
    label-and-merge, batch mapping with optional workers, fitted-state
    bookkeeping — is provided here once.

    ``predict_labels`` implementations must be thread-safe for prediction
    when the ``*_many`` methods are used with ``workers > 1``.
    """

    def __init__(
        self,
        space: IndoorSpace,
        *,
        config: Optional[C2MNConfig] = None,
        name: str = "annotator",
    ):
        self._space = space
        self._config = config if config is not None else C2MNConfig()
        self._fitted = False
        self.name = name

    # ------------------------------------------------------------ properties
    @property
    def space(self) -> IndoorSpace:
        return self._space

    @property
    def config(self) -> C2MNConfig:
        return self._config

    @property
    def is_fitted(self) -> bool:
        return self._fitted

    # --------------------------------------------------------------- training
    def fit(self, training_sequences: Sequence[LabeledSequence]):
        """Learn from labeled sequences.

        Returns whatever the subclass hook returns (e.g. a training report),
        or the annotator itself when the hook returns nothing.
        """
        result = self._fit(list(training_sequences))
        self._fitted = True
        return self if result is None else result

    def _fit(self, training_sequences: Sequence[LabeledSequence]):
        """Hook for subclasses; parameter-free methods can leave it empty."""

    # -------------------------------------------------------------- inference
    @abstractmethod
    def predict_labels(
        self, sequence: PositioningSequence
    ) -> Tuple[List[int], List[str]]:
        """Return per-record region ids and event labels for one p-sequence."""

    def predict_labeled_sequence(self, sequence: PositioningSequence) -> LabeledSequence:
        """Return the decoded labels wrapped in a :class:`LabeledSequence`."""
        regions, events = self.predict_labels(sequence)
        return LabeledSequence(
            sequence=sequence,
            region_labels=regions,
            event_labels=events,
            object_id=sequence.object_id,
        )

    def annotate(
        self,
        sequence: PositioningSequence,
        *,
        region_grouping: Optional[Dict[int, int]] = None,
    ) -> List[MSemantics]:
        """Label the sequence and merge the labels into m-semantics (Figure 2)."""
        regions, events = self.predict_labels(sequence)
        return merge_record_labels(
            sequence, regions, events, region_grouping=region_grouping
        )

    # ------------------------------------------------------------------ batch
    def _decode_bucket(
        self, sequences: Sequence[PositioningSequence]
    ) -> List[Tuple[List[int], List[str]]]:
        """Decode one bucket of *distinct* sequences; override to batch.

        The default is the per-sequence loop, which is trivially bitwise
        identical to serial decoding — baselines inherit it unchanged.
        :class:`repro.core.annotator.C2MNAnnotator` overrides it with the
        lockstep bucket decoder (:func:`repro.crf.batch.decode_icm_many`).
        """
        return [self.predict_labels(sequence) for sequence in sequences]

    def predict_labels_batch(
        self, sequences: Sequence[PositioningSequence]
    ) -> List[Tuple[List[int], List[str]]]:
        """Decode one bucket of sequences, coalescing exact duplicates.

        Sequences with identical content fingerprints decode **once**;
        every duplicate receives its own copy of the labels (equal bytes in
        produce equal labels out, so coalescing is bitwise-exact by
        construction).  This is the unit of work the ``*_many`` methods
        dispatch to workers.
        """
        sequences = list(sequences)
        keys = [sequence_fingerprint(sequence) for sequence in sequences]
        unique_of: Dict[str, int] = {}
        unique_positions: List[int] = []
        for position, key in enumerate(keys):
            if key not in unique_of:
                unique_of[key] = len(unique_positions)
                unique_positions.append(position)
        unique_results = self._decode_bucket(
            [sequences[position] for position in unique_positions]
        )
        results: List[Tuple[List[int], List[str]]] = []
        for position, key in enumerate(keys):
            slot = unique_of[key]
            if position == unique_positions[slot]:
                results.append(unique_results[slot])
            else:  # a coalesced duplicate gets its own mutable copy
                regions, events = unique_results[slot]
                results.append((list(regions), list(events)))
        return results

    def annotate_bucket(
        self,
        sequences: Sequence[PositioningSequence],
        *,
        region_grouping: Optional[Dict[int, int]] = None,
    ) -> List[List[MSemantics]]:
        """Annotate one bucket: batched decode, then per-sequence merging.

        Merging runs per original sequence even when labels were coalesced,
        so every batch member owns fresh :class:`MSemantics` objects.
        """
        sequences = list(sequences)
        labels = self.predict_labels_batch(sequences)
        return [
            merge_record_labels(
                sequence, regions, events, region_grouping=region_grouping
            )
            for sequence, (regions, events) in zip(sequences, labels)
        ]

    def _map_buckets(
        self,
        method: str,
        fallback_method: str,
        sequences: Sequence[PositioningSequence],
        policy: ExecutionPolicy,
        **kwargs,
    ) -> List:
        """Fan a batch out according to ``policy`` and gather in input order.

        With ``policy.batch`` the batch is first coalesced — sequences with
        identical content fingerprints are represented once — then the
        distinct sequences are grouped into length buckets
        (:func:`repro.crf.batch.bucket_indices`, capped by
        :meth:`ExecutionPolicy.effective_bucket_size` so parallel runs get
        enough buckets to balance) and each bucket dispatches as one
        ``method`` call.  Every coalesced duplicate receives a deep copy of
        its representative's result, so batch members never share result
        objects.  Without ``policy.batch``, ``fallback_method`` runs per
        sequence (the pre-batching layout).
        """
        sequences = list(sequences)
        executor = Executor(policy=policy)
        if not policy.batch:
            return executor.map_broadcast(self, fallback_method, sequences, **kwargs)
        keys = [sequence_fingerprint(sequence) for sequence in sequences]
        slot_of: Dict[str, int] = {}
        unique_positions: List[int] = []
        for position, key in enumerate(keys):
            if key not in slot_of:
                slot_of[key] = len(unique_positions)
                unique_positions.append(position)
        uniques = [sequences[position] for position in unique_positions]
        buckets = bucket_indices(
            [len(unique) for unique in uniques],
            policy.effective_bucket_size(len(uniques)),
        )
        bucket_results = executor.map_broadcast(
            self,
            method,
            [[uniques[slot] for slot in bucket] for bucket in buckets],
            **kwargs,
        )
        unique_results: List = [None] * len(uniques)
        for bucket, bucket_result in zip(buckets, bucket_results):
            for slot, result in zip(bucket, bucket_result):
                unique_results[slot] = result
        results: List = []
        for position, key in enumerate(keys):
            slot = slot_of[key]
            if position == unique_positions[slot]:
                results.append(unique_results[slot])
            else:  # equal bytes in, equal labels out: copy the representative
                results.append(copy.deepcopy(unique_results[slot]))
        return results

    def predict_labels_many(
        self,
        sequences: Sequence[PositioningSequence],
        *,
        policy: Optional[ExecutionPolicy] = None,
        workers: Optional[int] = UNSET,
        backend: str = UNSET,
    ) -> List[Tuple[List[int], List[str]]]:
        """Decode a collection of p-sequences under an execution policy.

        ``policy`` selects the backend (``"serial"``, ``"thread"``,
        ``"process"``), the worker fan-out, length-bucketed batching with
        duplicate coalescing, and process-pool reuse; the default policy
        batches serially.  The process backend shards buckets across a
        persistent worker pool and broadcasts this annotator through
        shared memory — the only way GIL-bound decoding scales with cores.
        Results are returned in input order regardless of completion order
        and are bitwise identical across backends and batching modes.

        The legacy ``workers=``/``backend=`` keywords still work but emit
        a :class:`DeprecationWarning`.
        """
        policy = resolve_policy(
            policy,
            workers=workers,
            backend=backend,
            owner="predict_labels_many()",
        )
        return self._map_buckets(
            "predict_labels_batch", "predict_labels", sequences, policy
        )

    def annotate_many(
        self,
        sequences: Sequence[PositioningSequence],
        *,
        policy: Optional[ExecutionPolicy] = None,
        workers: Optional[int] = UNSET,
        backend: str = UNSET,
        region_grouping: Optional[Dict[int, int]] = None,
    ) -> List[List[MSemantics]]:
        """Annotate a collection of p-sequences under an execution policy.

        Same execution model and ordering guarantee as
        :meth:`predict_labels_many`; merging always runs per sequence, so
        result objects are never shared between batch members.
        """
        policy = resolve_policy(
            policy,
            workers=workers,
            backend=backend,
            owner="annotate_many()",
        )
        return self._map_buckets(
            "annotate_bucket",
            "annotate",
            sequences,
            policy,
            region_grouping=region_grouping,
        )
