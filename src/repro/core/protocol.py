"""The unified :class:`Annotator` contract every annotation method implements.

Two pieces live here:

* :class:`Annotator` — a runtime-checkable :class:`typing.Protocol` describing
  the surface shared by every compared method: ``fit`` / ``predict_labels`` /
  ``predict_labeled_sequence`` / ``annotate`` plus the ``*_many`` batch
  variants and the ``is_fitted`` / ``name`` introspection attributes.  The
  evaluation harness, the experiment runners, the streaming
  :class:`repro.service.AnnotationService` and the examples are all written
  against this protocol, so C2MN-family annotators and baselines are
  interchangeable everywhere.
* :class:`AnnotatorBase` — the shared implementation.  Concrete methods
  implement two hooks — :meth:`AnnotatorBase._fit` and
  :meth:`AnnotatorBase.predict_labels` — and inherit the label wrapping,
  label-and-merge and (optionally parallel) batch machinery that used to be
  duplicated between ``core/annotator.py`` and ``baselines/base.py``.

The protocol is structural: any object with the right attributes satisfies
``isinstance(obj, Annotator)`` whether or not it derives from
:class:`AnnotatorBase`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import (
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

from repro.core.config import C2MNConfig
from repro.core.merge import merge_record_labels
from repro.indoor.floorplan import IndoorSpace
from repro.runtime import Executor
from repro.mobility.records import LabeledSequence, MSemantics, PositioningSequence


@runtime_checkable
class Annotator(Protocol):
    """Structural contract of every annotation method (C2MN family and baselines).

    ``fit`` learns from labeled sequences; ``predict_labels`` returns
    record-level ``(regions, events)`` for one p-sequence; ``annotate`` merges
    the labels into m-semantics; the ``*_many`` variants batch over many
    sequences with an optional thread pool.  ``is_fitted`` and ``name``
    support introspection by harnesses and services.
    """

    name: str

    @property
    def is_fitted(self) -> bool: ...

    def fit(self, training_sequences: Sequence[LabeledSequence]): ...

    def predict_labels(
        self, sequence: PositioningSequence
    ) -> Tuple[List[int], List[str]]: ...

    def predict_labeled_sequence(
        self, sequence: PositioningSequence
    ) -> LabeledSequence: ...

    def annotate(
        self,
        sequence: PositioningSequence,
        *,
        region_grouping: Optional[Dict[int, int]] = None,
    ) -> List[MSemantics]: ...

    def predict_labels_many(
        self,
        sequences: Sequence[PositioningSequence],
        *,
        workers: Optional[int] = None,
        backend: str = "thread",
    ) -> List[Tuple[List[int], List[str]]]: ...

    def annotate_many(
        self,
        sequences: Sequence[PositioningSequence],
        *,
        workers: Optional[int] = None,
        backend: str = "thread",
        region_grouping: Optional[Dict[int, int]] = None,
    ) -> List[List[MSemantics]]: ...


class AnnotatorBase(ABC):
    """Shared implementation of the :class:`Annotator` protocol.

    Subclasses implement :meth:`_fit` (may be empty for parameter-free
    methods) and :meth:`predict_labels`; everything else — label wrapping,
    label-and-merge, batch mapping with optional workers, fitted-state
    bookkeeping — is provided here once.

    ``predict_labels`` implementations must be thread-safe for prediction
    when the ``*_many`` methods are used with ``workers > 1``.
    """

    def __init__(
        self,
        space: IndoorSpace,
        *,
        config: Optional[C2MNConfig] = None,
        name: str = "annotator",
    ):
        self._space = space
        self._config = config if config is not None else C2MNConfig()
        self._fitted = False
        self.name = name

    # ------------------------------------------------------------ properties
    @property
    def space(self) -> IndoorSpace:
        return self._space

    @property
    def config(self) -> C2MNConfig:
        return self._config

    @property
    def is_fitted(self) -> bool:
        return self._fitted

    # --------------------------------------------------------------- training
    def fit(self, training_sequences: Sequence[LabeledSequence]):
        """Learn from labeled sequences.

        Returns whatever the subclass hook returns (e.g. a training report),
        or the annotator itself when the hook returns nothing.
        """
        result = self._fit(list(training_sequences))
        self._fitted = True
        return self if result is None else result

    def _fit(self, training_sequences: Sequence[LabeledSequence]):
        """Hook for subclasses; parameter-free methods can leave it empty."""

    # -------------------------------------------------------------- inference
    @abstractmethod
    def predict_labels(
        self, sequence: PositioningSequence
    ) -> Tuple[List[int], List[str]]:
        """Return per-record region ids and event labels for one p-sequence."""

    def predict_labeled_sequence(self, sequence: PositioningSequence) -> LabeledSequence:
        """Return the decoded labels wrapped in a :class:`LabeledSequence`."""
        regions, events = self.predict_labels(sequence)
        return LabeledSequence(
            sequence=sequence,
            region_labels=regions,
            event_labels=events,
            object_id=sequence.object_id,
        )

    def annotate(
        self,
        sequence: PositioningSequence,
        *,
        region_grouping: Optional[Dict[int, int]] = None,
    ) -> List[MSemantics]:
        """Label the sequence and merge the labels into m-semantics (Figure 2)."""
        regions, events = self.predict_labels(sequence)
        return merge_record_labels(
            sequence, regions, events, region_grouping=region_grouping
        )

    # ------------------------------------------------------------------ batch
    def predict_labels_many(
        self,
        sequences: Sequence[PositioningSequence],
        *,
        workers: Optional[int] = None,
        backend: str = "thread",
    ) -> List[Tuple[List[int], List[str]]]:
        """Decode a collection of p-sequences, optionally in parallel.

        ``workers`` > 1 fans out over ``backend``: ``"thread"`` (the
        default, matching the historical behaviour), ``"serial"`` or
        ``"process"``.  The process backend shards the sequences across
        worker processes and broadcasts this annotator to each worker once
        per pool — the only way GIL-bound decoding scales with cores.
        Results are returned in input order regardless of completion order
        and are identical across backends.
        """
        executor = Executor(backend=backend, workers=workers)
        return executor.map_broadcast(self, "predict_labels", sequences)

    def annotate_many(
        self,
        sequences: Sequence[PositioningSequence],
        *,
        workers: Optional[int] = None,
        backend: str = "thread",
        region_grouping: Optional[Dict[int, int]] = None,
    ) -> List[List[MSemantics]]:
        """Annotate a collection of p-sequences, optionally in parallel.

        Same execution model and ordering guarantee as
        :meth:`predict_labels_many`.
        """
        executor = Executor(backend=backend, workers=workers)
        return executor.map_broadcast(
            self, "annotate", sequences, region_grouping=region_grouping
        )
