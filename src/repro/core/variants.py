"""Factories for the C2MN structural variants compared in Section V-A.

The paper evaluates, besides the full model:

* **CMN** — both segmentation clique categories removed; regions and events
  become decoupled and are inferred independently.
* **C2MN/Tran** — transition cliques removed.
* **C2MN/Syn** — synchronization cliques removed.
* **C2MN/ES** — event-based segmentation cliques removed.
* **C2MN/SS** — space-based segmentation cliques removed.
* **C2MN@R** — the full model but with the *region* variable configured first
  (nearest-neighbour matching) instead of the event variable.

Every factory returns a ready-to-train :class:`~repro.core.annotator.C2MNAnnotator`
sharing the same indoor space and (optionally) the same distance oracle so the
expensive region-distance cache is reused across variants.
"""

from __future__ import annotations

from typing import Optional

from repro.core.annotator import C2MNAnnotator
from repro.core.config import C2MNConfig
from repro.indoor.distance import IndoorDistanceOracle
from repro.indoor.floorplan import IndoorSpace

#: Names of all C2MN-family variants, in the order used by the paper's tables.
VARIANT_NAMES = (
    "CMN",
    "C2MN/Tran",
    "C2MN/Syn",
    "C2MN/ES",
    "C2MN/SS",
    "C2MN",
)


def make_c2mn(
    space: IndoorSpace,
    *,
    config: Optional[C2MNConfig] = None,
    oracle: Optional[IndoorDistanceOracle] = None,
) -> C2MNAnnotator:
    """The full coupled model."""
    base = config if config is not None else C2MNConfig()
    return C2MNAnnotator(space, config=base, oracle=oracle, name="C2MN")


def make_cmn(
    space: IndoorSpace,
    *,
    config: Optional[C2MNConfig] = None,
    oracle: Optional[IndoorDistanceOracle] = None,
) -> C2MNAnnotator:
    """CMN: no segmentation cliques, regions and events decoupled."""
    base = config if config is not None else C2MNConfig()
    decoupled = base.with_structure(
        use_event_segmentation=False, use_space_segmentation=False
    )
    return C2MNAnnotator(space, config=decoupled, oracle=oracle, name="CMN")


def make_variant(
    name: str,
    space: IndoorSpace,
    *,
    config: Optional[C2MNConfig] = None,
    oracle: Optional[IndoorDistanceOracle] = None,
) -> C2MNAnnotator:
    """Build a C2MN-family variant by its paper name.

    Accepted names: ``"C2MN"``, ``"CMN"``, ``"C2MN/Tran"``, ``"C2MN/Syn"``,
    ``"C2MN/ES"``, ``"C2MN/SS"``, ``"C2MN@R"``.
    """
    base = config if config is not None else C2MNConfig()
    if name == "C2MN":
        return make_c2mn(space, config=base, oracle=oracle)
    if name == "CMN":
        return make_cmn(space, config=base, oracle=oracle)
    if name == "C2MN/Tran":
        variant = base.with_structure(use_transition=False)
    elif name == "C2MN/Syn":
        variant = base.with_structure(use_synchronization=False)
    elif name == "C2MN/ES":
        variant = base.with_structure(use_event_segmentation=False)
    elif name == "C2MN/SS":
        variant = base.with_structure(use_space_segmentation=False)
    elif name == "C2MN@R":
        variant = base.with_first_configured("region")
    else:
        raise ValueError(f"unknown C2MN variant {name!r}")
    return C2MNAnnotator(space, config=variant, oracle=oracle, name=name)


def make_annotator(
    name: str,
    space: IndoorSpace,
    *,
    config: Optional[C2MNConfig] = None,
    oracle: Optional[IndoorDistanceOracle] = None,
):
    """Build any compared method (C2MN family *or* baseline) by its paper name.

    The baseline names are ``"SMoT"``, ``"HMM+DC"``, ``"SAPDV"`` and
    ``"SAPDA"``; everything else is delegated to :func:`make_variant`.  The
    import of the baselines is local to avoid a circular dependency at module
    import time.
    """
    from repro.baselines import HMMDCAnnotator, SAPAnnotator, SMoTAnnotator

    base = config if config is not None else C2MNConfig()
    if name == "SMoT":
        return SMoTAnnotator(space, config=base)
    if name == "HMM+DC":
        return HMMDCAnnotator(space, config=base)
    if name == "SAPDV":
        return SAPAnnotator(space, config=base, segmentation="velocity")
    if name == "SAPDA":
        return SAPAnnotator(space, config=base, segmentation="density")
    return make_variant(name, space, config=base, oracle=oracle)
