"""The query planner: route a query to the index or to the linear scan.

The rule is deliberately small and explicit:

1. If the query input is sharded (anything exposing a ``shard_stores``
   callable — a :class:`repro.store.ShardedSemanticsStore`), the query
   scatters to the shards and the merge in :mod:`repro.store.gather`
   gathers the global answer (per-shard indexes drive a threshold merge
   when attached; per-shard scans otherwise).
2. If the query input *is* a :class:`~repro.index.engine.SemanticsIndex`,
   or is a store with a live attached index (anything exposing a
   ``live_index`` attribute holding one), the index answers the query.
3. A degenerate interval (``start > end``) falls back to the scan when the
   input can be scanned: the index's fast disjoint-exclusion counting only
   holds for well-formed intervals, and the scan defines the semantics.
   A *bare* index has nothing to scan, so it answers degenerate intervals
   itself through the slow-but-equivalent direct filter.  (The gather
   merge applies the same rule per shard.)
4. Everything else — plain lists, mappings, stores without an index — is
   scanned.

Both routes return bit-identical answers (asserted across the whole
scenario catalogue in the test suite); the planner only chooses the faster
physical plan, never a different logical one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.index.engine import SemanticsIndex


@dataclass(frozen=True)
class QueryPlan:
    """The route one query evaluation will take, and why."""

    use_index: bool
    reason: str
    index: Optional[SemanticsIndex] = None
    #: Per-shard stores for a scatter-gather plan (None for single-input
    #: plans).  Queries lazy-import :mod:`repro.store.gather` to merge.
    shards: Optional[Tuple] = None


def resolve_shards(semantics_per_object) -> Optional[Tuple]:
    """The input's shard stores, when it is sharded (else ``None``).

    Duck-typed on a ``shard_stores`` callable — the planner must not import
    :mod:`repro.store` (which imports the service store, which queries
    import through this module).
    """
    getter = getattr(semantics_per_object, "shard_stores", None)
    if callable(getter):
        return tuple(getter())
    return None


def resolve_index(semantics_per_object) -> Optional[SemanticsIndex]:
    """Find a usable index behind any query input shape (or ``None``).

    Accepts a bare :class:`SemanticsIndex` or any object carrying one in a
    ``live_index`` attribute (a :class:`repro.service.store.SemanticsStore`
    with an attached index).
    """
    if isinstance(semantics_per_object, SemanticsIndex):
        return semantics_per_object
    live = getattr(semantics_per_object, "live_index", None)
    if isinstance(live, SemanticsIndex):
        return live
    return None


def plan_query(
    semantics_per_object,
    start: Optional[float] = None,
    end: Optional[float] = None,
) -> QueryPlan:
    """Choose between scatter-gather, the index engine and the scan."""
    shards = resolve_shards(semantics_per_object)
    if shards is not None:
        return QueryPlan(
            use_index=False,
            reason=f"scatter-gather across {len(shards)} shard(s)",
            shards=shards,
        )
    index = resolve_index(semantics_per_object)
    if index is None:
        return QueryPlan(use_index=False, reason="no index attached to the input")
    if start is not None and end is not None and start > end:
        if isinstance(semantics_per_object, SemanticsIndex):
            return QueryPlan(
                use_index=True,
                reason="degenerate interval on a bare index (nothing to scan; "
                "the index filters directly)",
                index=index,
            )
        return QueryPlan(
            use_index=False,
            reason="degenerate interval (start > end) is defined by the scan",
        )
    return QueryPlan(use_index=True, reason="live semantic-region index", index=index)
