"""Incremental semantic-region index and top-k query engine.

* :mod:`repro.index.engine` — :class:`SemanticsIndex`: region → time-sorted
  visit postings (inverted + interval index over stay m-semantics),
  per-object region sets for pair queries, and exact per-region counters
  for analytics; incrementally maintained on every
  ``SemanticsStore.publish`` or bulk-built from batch output.
* :mod:`repro.index.planner` — the planner that routes each TkPRQ/TkFRPQ
  evaluation to the index when one is attached and to the linear scan
  otherwise, with bit-identical results either way.

``docs/ARCHITECTURE.md`` (section "The index layer") documents the postings
layout and the planner's fallback rule.
"""

from repro.index.engine import SemanticsIndex, iter_object_semantics
from repro.index.planner import QueryPlan, plan_query, resolve_index

__all__ = [
    "SemanticsIndex",
    "iter_object_semantics",
    "QueryPlan",
    "plan_query",
    "resolve_index",
]
