"""The incremental semantic-region index: inverted postings over m-semantics.

:class:`SemanticsIndex` maintains, for every region, a time-sorted list of
*visit postings* — one ``(start_time, end_time, object_id)`` triple per stay
m-semantics — plus per-object region sets for pair queries and exact integer
counters (stay/pass totals, collapsed stay transitions) for the analytics
fast paths.  It is built either incrementally (``add`` on every
``SemanticsStore.publish``) or in bulk from batch ``annotate_many`` output or
a materialised scenario (:meth:`SemanticsIndex.from_semantics`).

Queries answered from the index are *bit-identical* to the linear scan in
:mod:`repro.queries`: the same visits are counted (a stay contributes when
its time period intersects the closed query interval), ranked with the same
``(-count, key)`` order, and ties at rank k resolve identically.  TkPRQ adds
threshold-style early termination: regions are visited in descending order
of their total posting count (an upper bound on any interval-restricted
count), so once the running top-k cannot be displaced the remaining regions
are never touched.

All public methods take the index's internal lock, so a query always sees a
consistent snapshot even while streaming sessions keep publishing; see
:mod:`repro.service.store` for the store-side locking discipline.
"""

from __future__ import annotations

import threading
from bisect import bisect_left, bisect_right
from collections import Counter, defaultdict
from heapq import heappush, heapreplace
from itertools import combinations
from typing import (
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.mobility.records import EVENT_STAY, MSemantics

#: A visit posting: the stay's time period plus the object that stayed.
Posting = Tuple[float, float, str]

RegionPair = Tuple[int, int]


class _RegionBucket:
    """Postings of one region, kept sorted by start time (lazily).

    Appends are O(1); the first query after a mutation sorts the postings
    and rebuilds the derived arrays (`starts` aligned with the postings,
    `ends` independently sorted, the distinct-object set), which bounded
    interval counting needs for its bisects.
    """

    __slots__ = ("postings", "_starts", "_ends", "_objects")

    def __init__(self) -> None:
        self.postings: List[Posting] = []
        self._starts: Optional[List[float]] = None
        self._ends: Optional[List[float]] = None
        self._objects: Optional[Set[str]] = None

    def add(self, posting: Posting) -> None:
        self.postings.append(posting)
        self._starts = None
        self._ends = None
        self._objects = None

    def remove_object(self, object_id: str) -> int:
        """Drop every posting of one object; return how many were removed.

        O(bucket) — only the buckets of regions the object actually visited
        are touched, which is what makes :meth:`SemanticsIndex.remove`
        incremental instead of a full rebuild.
        """
        kept = [posting for posting in self.postings if posting[2] != object_id]
        removed = len(self.postings) - len(kept)
        if removed:
            self.postings = kept
            self._starts = None
            self._ends = None
            self._objects = None
        return removed

    def _ensure(self) -> None:
        if self._starts is None:
            self.postings.sort()
            self._starts = [posting[0] for posting in self.postings]
            self._ends = sorted(posting[1] for posting in self.postings)
            self._objects = {posting[2] for posting in self.postings}

    @property
    def total(self) -> int:
        """Total visit count — the upper bound for any interval restriction."""
        return len(self.postings)

    def count_in(self, start: Optional[float], end: Optional[float]) -> int:
        """Visits whose period intersects the closed interval ``[start, end]``.

        A posting is excluded when it ends before ``start`` or begins after
        ``end``; for ``start <= end`` the two exclusion sets are disjoint
        (a posting cannot do both), so the count is one subtraction per
        bound over the sorted endpoint arrays.  An inverted interval
        (``start > end``) would double-subtract, so that rare case counts
        by direct iteration — same answer as the scan's filter.
        """
        if start is None and end is None:
            return len(self.postings)
        self._ensure()
        if start is not None and end is not None and start > end:
            return sum(
                1
                for posting in self.postings
                if posting[0] <= end and posting[1] >= start
            )
        count = len(self.postings)
        if end is not None:
            count -= len(self.postings) - bisect_right(self._starts, end)
        if start is not None:
            count -= bisect_left(self._ends, start)
        return count

    def objects_in(self, start: Optional[float], end: Optional[float]) -> Set[str]:
        """Distinct objects with at least one visit intersecting the interval."""
        self._ensure()
        if start is None and end is None:
            return self._objects
        if end is not None:
            candidates = self.postings[: bisect_right(self._starts, end)]
        else:
            candidates = self.postings
        if start is None:
            return {posting[2] for posting in candidates}
        return {posting[2] for posting in candidates if posting[1] >= start}


class SemanticsIndex:
    """Inverted + interval index over stay m-semantics, incrementally maintained.

    Feed it *all* m-semantics (stays and passes): stays become visit
    postings and drive the top-k query engines; both event kinds feed the
    exact per-region counters behind the analytics fast paths.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._regions: Dict[int, _RegionBucket] = {}
        self._object_regions: Dict[str, Set[int]] = {}
        self._stay_counts: Counter = Counter()
        self._pass_counts: Counter = Counter()
        self._transitions: Counter = Counter()
        self._last_stay: Dict[str, int] = {}
        self._entries = 0
        # Per-object contribution ledgers: what :meth:`remove` must undo.
        # The stay chain is the collapsed sequence of stayed-at regions
        # (consecutive duplicates merged), so consecutive chain pairs are
        # exactly the transitions the object contributed.
        self._object_stays: Dict[str, Counter] = {}
        self._object_passes: Dict[str, Counter] = {}
        self._object_chain: Dict[str, List[int]] = {}
        # Pair counters memoised per (start, end, filter) between mutations:
        # the expensive per-object set expansion runs once per distinct
        # interval, and every publish invalidates the lot.
        self._pair_cache: Dict[Tuple, Counter] = {}

    _PAIR_CACHE_LIMIT = 256

    # -------------------------------------------------------------- building
    def add(self, object_id: str, semantics: Iterable[MSemantics]) -> None:
        """Ingest one object's m-semantics (must arrive in time order per object)."""
        with self._lock:
            for ms in semantics:
                self._entries += 1
                if ms.event != EVENT_STAY:
                    self._pass_counts[ms.region_id] += 1
                    self._object_passes.setdefault(object_id, Counter())[
                        ms.region_id
                    ] += 1
                    continue
                region = ms.region_id
                self._stay_counts[region] += 1
                bucket = self._regions.get(region)
                if bucket is None:
                    bucket = self._regions[region] = _RegionBucket()
                bucket.add((ms.start_time, ms.end_time, object_id))
                self._object_regions.setdefault(object_id, set()).add(region)
                self._object_stays.setdefault(object_id, Counter())[region] += 1
                last = self._last_stay.get(object_id)
                if last is None or last != region:
                    self._object_chain.setdefault(object_id, []).append(region)
                if last is not None and last != region:
                    self._transitions[(last, region)] += 1
                self._last_stay[object_id] = region
            self._pair_cache.clear()

    def add_many(
        self, items: Iterable[Tuple[str, Sequence[MSemantics]]]
    ) -> None:
        """Bulk-ingest ``(object_id, semantics)`` pairs."""
        with self._lock:
            for object_id, semantics in items:
                self.add(object_id, semantics)

    def rebuild(self, items: Iterable[Tuple[str, Sequence[MSemantics]]]) -> None:
        """Drop everything and re-ingest (used after ``SemanticsStore.clear``)."""
        with self._lock:
            self._regions.clear()
            self._object_regions.clear()
            self._stay_counts.clear()
            self._pass_counts.clear()
            self._transitions.clear()
            self._last_stay.clear()
            self._entries = 0
            self._object_stays.clear()
            self._object_passes.clear()
            self._object_chain.clear()
            self._pair_cache.clear()
            self.add_many(items)

    def remove(self, object_id: str) -> bool:
        """Incrementally drop one object's contribution — O(object), not O(total).

        Every structure the object touched is unwound from the per-object
        ledgers recorded at :meth:`add` time: its postings leave only the
        buckets of regions it visited, the stay/pass/transition counters are
        decremented (and deleted at zero, so counter equality with a fresh
        rebuild holds bitwise), and the memoised pair counters are
        invalidated.  Returns ``True`` when the object was present.
        ``SemanticsStore.clear(object_id)`` calls this instead of rebuilding
        the whole index.
        """
        with self._lock:
            stays = self._object_stays.pop(object_id, None)
            passes = self._object_passes.pop(object_id, None)
            chain = self._object_chain.pop(object_id, ())
            if stays is None and passes is None:
                return False
            for region, count in (passes or {}).items():
                self._entries -= count
                remaining = self._pass_counts[region] - count
                if remaining:
                    self._pass_counts[region] = remaining
                else:
                    del self._pass_counts[region]
            for region, count in (stays or {}).items():
                self._entries -= count
                remaining = self._stay_counts[region] - count
                if remaining:
                    self._stay_counts[region] = remaining
                else:
                    del self._stay_counts[region]
                bucket = self._regions.get(region)
                if bucket is not None:
                    bucket.remove_object(object_id)
                    if not bucket.postings:
                        del self._regions[region]
            for pair in zip(chain, chain[1:]):
                remaining = self._transitions[pair] - 1
                if remaining:
                    self._transitions[pair] = remaining
                else:
                    del self._transitions[pair]
            self._object_regions.pop(object_id, None)
            self._last_stay.pop(object_id, None)
            self._pair_cache.clear()
            return True

    @classmethod
    def from_semantics(cls, semantics_per_object) -> "SemanticsIndex":
        """Bulk-build from any query input shape.

        Mappings keep their object ids; plain iterables (batch
        ``annotate_many`` output, ground-truth lists) get positional ids.
        """
        index = cls()
        index.add_many(iter_object_semantics(semantics_per_object))
        return index

    # ------------------------------------------------------------ statistics
    @property
    def total_entries(self) -> int:
        """All ingested m-semantics, stays and passes."""
        with self._lock:
            return self._entries

    @property
    def total_postings(self) -> int:
        """All stay visit postings across regions."""
        with self._lock:
            return sum(bucket.total for bucket in self._regions.values())

    def stats(self) -> Dict[str, int]:
        """Sizing summary: regions, objects, postings, entries."""
        with self._lock:
            return {
                "regions": len(self._regions),
                "objects": len(self._object_regions),
                "postings": sum(b.total for b in self._regions.values()),
                "entries": self._entries,
            }

    # ------------------------------------------------------------- counting
    def count_visits(
        self,
        *,
        start: Optional[float] = None,
        end: Optional[float] = None,
        query_regions: Optional[Set[int]] = None,
    ) -> Counter:
        """Per-region stay visit counts — the indexed mirror of
        :func:`repro.queries.tkprq.count_region_visits`."""
        with self._lock:
            counts: Counter = Counter()
            for region in self._candidate_regions(query_regions):
                visits = self._regions[region].count_in(start, end)
                if visits:
                    counts[region] = visits
            return counts

    def count_region(
        self,
        region: int,
        *,
        start: Optional[float] = None,
        end: Optional[float] = None,
    ) -> int:
        """Exact visit count of one region within the interval (0 if absent).

        The random-access half of the scatter-gather threshold merge
        (:mod:`repro.store.gather`): once a region surfaces in any shard's
        bound stream, every other shard answers this point lookup in
        O(log postings).
        """
        with self._lock:
            bucket = self._regions.get(region)
            if bucket is None:
                return 0
            return bucket.count_in(start, end)

    def region_bounds(
        self, query_regions: Optional[Set[int]] = None
    ) -> List[Tuple[int, int]]:
        """``(total_postings, region)`` pairs, descending total then ascending id.

        A region's total posting count upper-bounds its count under any
        interval restriction, so this ordered list is the shard-local bound
        stream that drives threshold-style early termination — both in
        :meth:`top_k_regions` (single index) and in the per-shard merge of
        :mod:`repro.store.gather`.
        """
        with self._lock:
            candidates = self._candidate_regions(query_regions)
            candidates.sort(key=lambda region: (-self._regions[region].total, region))
            return [(self._regions[region].total, region) for region in candidates]

    def count_pairs(
        self,
        *,
        start: Optional[float] = None,
        end: Optional[float] = None,
        query_regions: Optional[Set[int]] = None,
    ) -> Counter:
        """Per unordered region pair, the objects that stayed at both — the
        indexed mirror of :func:`repro.queries.tkfrpq.count_region_pairs`.

        Objects with identical visited-region sets are collapsed first and
        each distinct set contributes its multiplicity per pair, so the
        quadratic pair expansion runs once per distinct visit pattern
        rather than once per object.  Returns a copy; the counter itself is
        memoised per interval/filter until the next mutation.
        """
        with self._lock:
            return Counter(self._pair_counts(start, end, query_regions))

    def _pair_counts(
        self,
        start: Optional[float],
        end: Optional[float],
        query_regions: Optional[Set[int]],
    ) -> Counter:
        key = (
            start,
            end,
            None if query_regions is None else frozenset(query_regions),
        )
        cached = self._pair_cache.get(key)
        if cached is not None:
            return cached
        set_counts: Counter = Counter(
            frozenset(visited)
            for visited in self._visited_region_sets(start, end, query_regions)
        )
        counts: Counter = Counter()
        for visited, multiplicity in set_counts.items():
            for pair in combinations(sorted(visited), 2):
                counts[pair] += multiplicity
        if len(self._pair_cache) >= self._PAIR_CACHE_LIMIT:
            self._pair_cache.clear()
        self._pair_cache[key] = counts
        return counts

    def _candidate_regions(self, query_regions: Optional[Set[int]]) -> List[int]:
        if query_regions is None:
            return list(self._regions)
        return [region for region in query_regions if region in self._regions]

    def _visited_region_sets(
        self,
        start: Optional[float],
        end: Optional[float],
        query_regions: Optional[Set[int]],
    ) -> Iterable[Set[int]]:
        """Per-object sets of regions visited within the interval."""
        if start is None and end is None:
            # Full range: the per-object region sets are maintained directly.
            if query_regions is None:
                return list(self._object_regions.values())
            return [
                regions & query_regions
                for regions in self._object_regions.values()
            ]
        # Bounded: region-major — each bucket's bisect prunes by start time,
        # so only postings near the interval are touched.
        visited: Dict[str, Set[int]] = defaultdict(set)
        for region in self._candidate_regions(query_regions):
            for object_id in self._regions[region].objects_in(start, end):
                visited[object_id].add(region)
        return list(visited.values())

    # ---------------------------------------------------------------- top-k
    def top_k_regions(
        self,
        k: int,
        *,
        start: Optional[float] = None,
        end: Optional[float] = None,
        query_regions: Optional[Set[int]] = None,
    ) -> List[Tuple[int, int]]:
        """TkPRQ with threshold-style early termination.

        Regions are examined in descending order of total posting count,
        which upper-bounds any interval-restricted count; once k answers are
        held and the next bound is strictly below the weakest of them, no
        remaining region can enter the top-k (equal bounds continue, because
        a tie is broken by the smaller region id).  Returns the exact
        ``sorted(counts.items(), key=(-count, region))[:k]`` of the scan.
        """
        if k < 1:
            raise ValueError("k must be at least 1")
        with self._lock:
            candidates = self._candidate_regions(query_regions)
            candidates.sort(key=lambda region: (-self._regions[region].total, region))
            # Min-heap of the running top-k; the root is the weakest member
            # ((count, -region): lowest count first, largest id among ties).
            heap: List[Tuple[int, int]] = []
            for region in candidates:
                bucket = self._regions[region]
                if len(heap) == k and bucket.total < heap[0][0]:
                    break
                count = bucket.count_in(start, end)
                if count == 0:
                    continue
                entry = (count, -region)
                if len(heap) < k:
                    heappush(heap, entry)
                elif entry > heap[0]:
                    heapreplace(heap, entry)
            ranked = sorted(heap, key=lambda entry: (-entry[0], -entry[1]))
            return [(-negated, count) for count, negated in ranked]

    def top_k_pairs(
        self,
        k: int,
        *,
        start: Optional[float] = None,
        end: Optional[float] = None,
        query_regions: Optional[Set[int]] = None,
    ) -> List[Tuple[RegionPair, int]]:
        """TkFRPQ from the per-object region sets (bit-identical to the scan)."""
        if k < 1:
            raise ValueError("k must be at least 1")
        with self._lock:
            counts = self._pair_counts(start, end, query_regions)
            ranked = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
            return ranked[:k]

    # ------------------------------------------------------------- analytics
    def conversion_counters(self) -> Tuple[Counter, Counter]:
        """Copies of the per-region (stay, pass) counters."""
        with self._lock:
            return Counter(self._stay_counts), Counter(self._pass_counts)

    def transition_counts(self) -> Counter:
        """Copy of the collapsed stay-to-stay transition counter."""
        with self._lock:
            return Counter(self._transitions)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        stats = self.stats()
        return (
            f"SemanticsIndex(regions={stats['regions']}, "
            f"objects={stats['objects']}, postings={stats['postings']})"
        )


def iter_object_semantics(
    semantics_per_object,
) -> Iterable[Tuple[str, Sequence[MSemantics]]]:
    """Normalise any query input shape into ``(object_id, semantics)`` pairs.

    Mappings contribute their items; store-like objects (anything with an
    ``as_dict`` snapshot method) contribute theirs; plain iterables — batch
    ``annotate_many`` output, ground-truth lists — get positional ids.
    """
    if isinstance(semantics_per_object, Mapping):
        return semantics_per_object.items()
    as_dict = getattr(semantics_per_object, "as_dict", None)
    if callable(as_dict):
        return as_dict().items()
    return (
        (f"object-{position}", semantics)
        for position, semantics in enumerate(semantics_per_object)
    )
