"""The network layer: HTTP front door + open-loop load-testing harness.

Everything before this package speaks Python; this package puts the
:class:`repro.service.AnnotationService` behind a real TCP socket and
measures it the way production capacity planning would:

* :mod:`repro.net.server` — a stdlib-only asyncio HTTP/1.1 server exposing
  batch annotation, the streaming session lifecycle, the TkPRQ/TkFRPQ query
  endpoints, ``/healthz`` and ``/metrics``, with request-size limits,
  structured JSON errors and graceful session-draining shutdown;
* :mod:`repro.net.wire` — the JSON wire format, byte-compatible with the
  persistence serialisers so HTTP answers compare bitwise against
  in-process calls;
* :mod:`repro.net.loadgen` — an open-loop load generator (Poisson arrivals
  at a configured rate, catalogue-scenario traffic, mixed
  stream/annotate/query workloads) emitting one-row-per-(run, repetition)
  ``run_table.csv`` artifacts with throughput, latency percentiles,
  failure rate and RSS;
* ``python -m repro.net --serve`` / ``--loadtest`` — the CLI entry points;
  ``python -m repro.bench --service`` wraps both into the regression-gated
  ``BENCH_service.json`` suite.

See the "The network layer" section of ``docs/ARCHITECTURE.md`` for the
endpoint table and the open-loop methodology.
"""

from repro.net.loadgen import (
    DEFAULT_MIX,
    LoadRunReport,
    WorkloadPlan,
    build_plan,
    parse_mix,
    run_loadtest,
    write_run_table,
)
from repro.net.server import AnnotationHTTPServer, HttpError, Metrics, ServerThread
from repro.net.wire import WireError

__all__ = [
    "AnnotationHTTPServer",
    "DEFAULT_MIX",
    "HttpError",
    "LoadRunReport",
    "Metrics",
    "ServerThread",
    "WireError",
    "WorkloadPlan",
    "build_plan",
    "parse_mix",
    "run_loadtest",
    "write_run_table",
]
