"""The HTTP front door: an asyncio server over :class:`AnnotationService`.

Pure stdlib (``asyncio`` + hand-rolled HTTP/1.1 framing — no new runtime
dependencies): :class:`AnnotationHTTPServer` listens on a TCP socket and
exposes the full service surface as JSON endpoints:

========  =============================== ======================================
Method    Path                            Meaning
========  =============================== ======================================
POST      ``/v1/annotate``                batch-annotate p-sequences and publish
POST      ``/v1/sessions``                open a streaming session
POST      ``/v1/sessions/{id}/records``   push records into a session
POST      ``/v1/sessions/{id}/finish``    close a session, flush its semantics
GET       ``/v1/queries/popular-regions`` TkPRQ over everything published
GET       ``/v1/queries/frequent-pairs``  TkFRPQ over everything published
GET       ``/healthz``                    liveness, sessions, shard + WAL lag
GET       ``/metrics``                    request counts, latency histograms
========  =============================== ======================================

Design notes:

* the event loop only frames HTTP; every service call (decode, query,
  publish) runs on the loop's thread pool via ``run_in_executor`` so one
  slow decode never blocks health checks — which is exactly why
  :class:`AnnotationService` carries a service-level lock;
* record ingestion into one session is serialised by a per-session lock
  (stream order is a protocol invariant, Definition 1), while different
  sessions proceed in parallel;
* requests are size-limited (``max_body``, default 8 MiB → 413) and every
  failure is a structured JSON error ``{"error": {"code", "message",
  "status"}}`` — malformed traffic never kills the server;
* :meth:`AnnotationHTTPServer.stop` drains gracefully: stop accepting,
  let in-flight requests complete, then ``service.finish_all()`` so every
  open session's pending m-semantics are published before exit.

:class:`ServerThread` hosts a server on a background event loop for tests,
examples and the self-hosting load generator.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, unquote, urlsplit

from repro.mobility.records import MSemantics
from repro.net.wire import (
    WireError,
    pairs_to_wire,
    parse_query_params,
    record_from_wire,
    regions_to_wire,
    semantics_to_wire,
    sequence_from_wire,
)
from repro.service.service import AnnotationService

__all__ = ["AnnotationHTTPServer", "ServerThread", "HttpError", "Metrics"]

#: Default request-body ceiling (bytes); larger requests get a 413.
DEFAULT_MAX_BODY = 8 * 1024 * 1024

#: Upper bound on header count per request (431 beyond it).
_MAX_HEADERS = 100

_REASONS = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """A structured HTTP failure; rendered as the JSON error envelope."""

    def __init__(self, status: int, code: str, message: str):
        super().__init__(message)
        self.status = status
        self.code = code

    def envelope(self) -> Dict[str, Any]:
        return {
            "error": {"code": self.code, "message": str(self), "status": self.status}
        }


class Metrics:
    """Per-endpoint request counters and fixed-bucket latency histograms.

    Thread-safe (handlers observe from pool threads).  Buckets are
    cumulative-friendly upper bounds in milliseconds with a final overflow
    bucket, the conventional histogram shape of serving metrics.
    """

    BUCKETS_MS = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0, 5000.0)

    def __init__(self):
        self._lock = threading.Lock()
        self._requests: Dict[str, Dict[str, int]] = {}
        self._histograms: Dict[str, List[int]] = {}
        self._latency_sums: Dict[str, float] = {}

    def observe(self, endpoint: str, status: int, seconds: float) -> None:
        """Record one finished request of ``endpoint``."""
        millis = seconds * 1000.0
        bucket = len(self.BUCKETS_MS)
        for position, bound in enumerate(self.BUCKETS_MS):
            if millis <= bound:
                bucket = position
                break
        with self._lock:
            counters = self._requests.setdefault(endpoint, {"count": 0, "errors": 0})
            counters["count"] += 1
            if status >= 400:
                counters["errors"] += 1
            histogram = self._histograms.setdefault(
                endpoint, [0] * (len(self.BUCKETS_MS) + 1)
            )
            histogram[bucket] += 1
            self._latency_sums[endpoint] = self._latency_sums.get(endpoint, 0.0) + millis

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-ready copy of every counter and histogram."""
        with self._lock:
            return {
                "buckets_ms": list(self.BUCKETS_MS),
                "requests": {
                    endpoint: dict(counters)
                    for endpoint, counters in self._requests.items()
                },
                "latency_ms": {
                    endpoint: {
                        "counts": list(histogram),
                        "sum": round(self._latency_sums.get(endpoint, 0.0), 3),
                    }
                    for endpoint, histogram in self._histograms.items()
                },
            }

    @property
    def total_requests(self) -> int:
        with self._lock:
            return sum(counters["count"] for counters in self._requests.values())


class AnnotationHTTPServer:
    """Serve one :class:`AnnotationService` over HTTP/1.1 with keep-alive."""

    def __init__(
        self,
        service: AnnotationService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_body: int = DEFAULT_MAX_BODY,
    ):
        if max_body < 1024:
            raise ValueError("max_body must be at least 1 KiB")
        self.service = service
        self.host = host
        self.requested_port = port
        self.max_body = max_body
        self.metrics = Metrics()
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: set = set()
        self._writers: set = set()
        self._inflight = 0
        self._draining = False
        self._started_monotonic = 0.0
        self._started_at = 0.0
        self._session_locks: Dict[str, threading.Lock] = {}
        self._session_locks_guard = threading.Lock()

    # ------------------------------------------------------------- lifecycle
    async def start(self) -> None:
        """Bind and start accepting connections (port 0 picks an ephemeral one)."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.requested_port, limit=65536
        )
        self._started_monotonic = time.monotonic()
        self._started_at = time.time()

    @property
    def port(self) -> int:
        """The bound port (resolves ephemeral requests after :meth:`start`)."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not running")
        return self._server.sockets[0].getsockname()[1]

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def stop(self, *, drain_timeout: float = 5.0) -> List[MSemantics]:
        """Graceful shutdown: stop accepting, drain, flush open sessions.

        In-flight requests get up to ``drain_timeout`` seconds to complete;
        afterwards every connection is closed and ``service.finish_all()``
        publishes the pending m-semantics of all open sessions.  Returns
        everything that flushed.
        """
        if self._server is None:
            return []
        self._draining = True
        self._server.close()
        await self._server.wait_closed()
        deadline = time.monotonic() + drain_timeout
        while self._inflight and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
        for writer in list(self._writers):
            writer.close()
        if self._connections:
            await asyncio.wait(list(self._connections), timeout=drain_timeout)
        loop = asyncio.get_running_loop()
        flushed = await loop.run_in_executor(None, self.service.finish_all)
        self._server = None
        return flushed

    # ----------------------------------------------------------- connections
    def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.ensure_future(self._serve_connection(reader, writer))
        self._connections.add(task)
        task.add_done_callback(self._connections.discard)

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except HttpError as error:
                    # Framing failed — answer if possible, then drop the
                    # connection (the stream position is unrecoverable).
                    self._write_response(
                        writer, error.status, error.envelope(), keep_alive=False
                    )
                    break
                if request is None:
                    break
                method, path, params, headers, body = request
                keep_alive = headers.get("connection", "keep-alive") != "close"
                status, payload = await self._dispatch(method, path, params, body)
                self._write_response(writer, status, payload, keep_alive=keep_alive)
                try:
                    await writer.drain()
                except (ConnectionError, OSError):
                    break
                if not keep_alive:
                    break
        except (ConnectionError, OSError, asyncio.IncompleteReadError):
            pass
        finally:
            self._writers.discard(writer)
            writer.close()

    async def _read_request(self, reader: asyncio.StreamReader):
        """Read one framed request; None at EOF; HttpError on bad framing."""
        try:
            line = await reader.readline()
        except ValueError as error:  # line exceeded the stream limit
            raise HttpError(431, "line_too_long", "request line too long") from error
        if not line:
            return None
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise HttpError(400, "bad_request_line", "malformed HTTP request line")
        method, target = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            try:
                raw = await reader.readline()
            except ValueError as error:
                raise HttpError(431, "header_too_long", "header line too long") from error
            if raw in (b"\r\n", b"\n", b""):
                break
            if len(headers) >= _MAX_HEADERS:
                raise HttpError(431, "too_many_headers", "too many request headers")
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length_header = headers.get("content-length", "0")
        try:
            length = int(length_header)
        except ValueError as error:
            raise HttpError(
                400, "bad_content_length", "content-length must be an integer"
            ) from error
        if length < 0:
            raise HttpError(400, "bad_content_length", "negative content-length")
        if length > self.max_body:
            raise HttpError(
                413,
                "payload_too_large",
                f"request body of {length} bytes exceeds the "
                f"{self.max_body}-byte limit",
            )
        body = b""
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                return None
        split = urlsplit(target)
        # keep_blank_values: "regions=" must reach validation, not vanish.
        params = parse_qs(split.query, keep_blank_values=True)
        return method, split.path, params, headers, body

    def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Any,
        *,
        keep_alive: bool,
    ) -> None:
        if writer.is_closing():
            return
        body = json.dumps(payload).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            "\r\n"
        )
        writer.write(head.encode("latin-1") + body)

    # -------------------------------------------------------------- dispatch
    async def _dispatch(
        self,
        method: str,
        path: str,
        params: Dict[str, List[str]],
        body: bytes,
    ) -> Tuple[int, Any]:
        endpoint, handler, allowed = self._route(method, path)
        started = time.perf_counter()
        try:
            if handler is None:
                if allowed:
                    raise HttpError(
                        405, "method_not_allowed", f"{path} only allows {allowed}"
                    )
                raise HttpError(404, "not_found", f"no such endpoint: {path}")
            if self._draining:
                raise HttpError(503, "draining", "server is shutting down")
            self._inflight += 1
            try:
                status, payload = await handler(params, body)
            finally:
                self._inflight -= 1
        except HttpError as error:
            status, payload = error.status, error.envelope()
        except WireError as error:
            status = 400
            payload = HttpError(400, error.code, str(error)).envelope()
        except Exception as error:  # noqa: BLE001 — the 5xx safety net
            status = 500
            payload = HttpError(500, "internal", repr(error)).envelope()
        self.metrics.observe(endpoint, status, time.perf_counter() - started)
        return status, payload

    def _route(
        self, method: str, path: str
    ) -> Tuple[str, Optional[Callable], Optional[str]]:
        """Resolve ``(endpoint-name, handler, allowed-methods)`` for a target."""
        flat = {
            "/healthz": ("healthz", "GET", self._handle_healthz),
            "/metrics": ("metrics", "GET", self._handle_metrics),
            "/v1/annotate": ("annotate", "POST", self._handle_annotate),
            "/v1/sessions": ("sessions.create", "POST", self._handle_create_session),
            "/v1/queries/popular-regions": (
                "queries.popular-regions",
                "GET",
                self._handle_popular_regions,
            ),
            "/v1/queries/frequent-pairs": (
                "queries.frequent-pairs",
                "GET",
                self._handle_frequent_pairs,
            ),
        }
        if path in flat:
            endpoint, allowed, handler = flat[path]
            if method != allowed:
                return endpoint, None, allowed
            return endpoint, handler, allowed
        segments = path.strip("/").split("/")
        if len(segments) == 4 and segments[:2] == ["v1", "sessions"]:
            # Object ids are URL-encoded on the wire (they may contain "/").
            object_id, action = unquote(segments[2]), segments[3]
            if action == "records":
                endpoint = "sessions.records"
                handler = self._session_handler(object_id, self._session_records)
            elif action == "finish":
                endpoint = "sessions.finish"
                handler = self._session_handler(object_id, self._session_finish)
            else:
                return "unknown", None, None
            if method != "POST":
                return endpoint, None, "POST"
            return endpoint, handler, "POST"
        return "unknown", None, None

    # -------------------------------------------------------------- handlers
    @staticmethod
    def _json_body(body: bytes) -> Any:
        if not body:
            return {}
        try:
            return json.loads(body)
        except json.JSONDecodeError as error:
            raise HttpError(400, "bad_json", f"request body is not JSON: {error}")

    async def _in_executor(self, func, *args):
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, func, *args)

    def _session_lock(self, object_id: str) -> threading.Lock:
        with self._session_locks_guard:
            return self._session_locks.setdefault(object_id, threading.Lock())

    async def _handle_healthz(self, params, body) -> Tuple[int, Any]:
        payload = {
            "status": "ok",
            "live_sessions": len(self.service.live_sessions()),
            "published_objects": len(self.service.store),
            "uptime_seconds": round(time.monotonic() - self._started_monotonic, 3),
        }
        # Sharded stores report their layout and WAL lag (the async-mode
        # crash window) so operators can alarm on a stalled shard writer.
        health_stats = getattr(self.service.store, "health_stats", None)
        if callable(health_stats):
            payload["store"] = health_stats()
        return 200, payload

    async def _handle_metrics(self, params, body) -> Tuple[int, Any]:
        snapshot = self.metrics.snapshot()
        snapshot["live_sessions"] = len(self.service.live_sessions())
        snapshot["published_objects"] = len(self.service.store)
        snapshot["started_at"] = self._started_at
        snapshot["uptime_seconds"] = round(
            time.monotonic() - self._started_monotonic, 3
        )
        return 200, snapshot

    async def _handle_annotate(self, params, body) -> Tuple[int, Any]:
        payload = self._json_body(body)
        sequences_payload = payload.get("sequences")
        if not isinstance(sequences_payload, list) or not sequences_payload:
            raise HttpError(
                400, "bad_annotate", "annotate requires a non-empty 'sequences' list"
            )
        sequences = [sequence_from_wire(entry) for entry in sequences_payload]

        def run():
            # Backend and worker count are server configuration, not client
            # input — the request only carries the traffic.
            return self.service.annotate_batch(sequences)

        semantics = await self._in_executor(run)
        return 200, {"semantics": [semantics_to_wire(entries) for entries in semantics]}

    async def _handle_create_session(self, params, body) -> Tuple[int, Any]:
        payload = self._json_body(body)
        object_id = payload.get("object_id")
        if not isinstance(object_id, str) or not object_id:
            raise HttpError(
                400, "bad_session", "session create requires a non-empty 'object_id'"
            )
        window = payload.get("window")
        guard = payload.get("guard")
        exact = payload.get("exact", False)
        for name, value in (("window", window), ("guard", guard)):
            if value is not None and (not isinstance(value, int) or isinstance(value, bool)):
                raise HttpError(400, "bad_session", f"'{name}' must be an integer")
        if not isinstance(exact, bool):
            raise HttpError(400, "bad_session", "'exact' must be a boolean")

        def run():
            try:
                return self.service.session(
                    object_id, window=window, guard=guard, exact=exact
                )
            except ValueError as error:
                message = str(error)
                if "already has a live session" in message:
                    raise HttpError(409, "session_exists", message) from error
                raise HttpError(400, "bad_session", message) from error

        session = await self._in_executor(run)
        return 201, {
            "object_id": session.object_id,
            "window": session.window,
            "guard": session.guard,
            "exact": session.exact,
        }

    def _session_handler(self, object_id: str, bound) -> Callable:
        async def handler(params, body) -> Tuple[int, Any]:
            return await bound(object_id, params, body)

        return handler

    async def _session_records(self, object_id, params, body) -> Tuple[int, Any]:
        payload = self._json_body(body)
        records_payload = payload.get("records")
        if not isinstance(records_payload, list) or not records_payload:
            raise HttpError(
                400, "bad_records", "records push requires a non-empty 'records' list"
            )
        records = [record_from_wire(entry) for entry in records_payload]

        def run():
            # The per-session lock serialises ingestion so concurrent pushes
            # to one session cannot interleave records out of stream order.
            with self._session_lock(object_id):
                session = self.service.get_session(object_id)
                if session is None:
                    raise HttpError(
                        404, "unknown_session", f"no live session for {object_id!r}"
                    )
                try:
                    finalized = session.extend(records)
                except ValueError as error:
                    raise HttpError(409, "bad_stream", str(error)) from error
                return finalized, session.record_count

        finalized, total = await self._in_executor(run)
        return 200, {
            "object_id": object_id,
            "finalized": semantics_to_wire(finalized),
            "record_count": total,
        }

    async def _session_finish(self, object_id, params, body) -> Tuple[int, Any]:
        def run():
            with self._session_lock(object_id):
                session = self.service.get_session(object_id)
                if session is None:
                    raise HttpError(
                        404, "unknown_session", f"no live session for {object_id!r}"
                    )
                flushed = session.finish()
                return flushed, session.record_count

        flushed, total = await self._in_executor(run)
        return 200, {
            "object_id": object_id,
            "flushed": semantics_to_wire(flushed),
            "record_count": total,
        }

    async def _handle_popular_regions(self, params, body) -> Tuple[int, Any]:
        k, start, end, regions = parse_query_params(params)
        answer = await self._in_executor(
            lambda: self.service.query_popular_regions(
                k, query_regions=regions, start=start, end=end
            )
        )
        return 200, {"k": k, "results": regions_to_wire(answer)}

    async def _handle_frequent_pairs(self, params, body) -> Tuple[int, Any]:
        k, start, end, regions = parse_query_params(params)
        answer = await self._in_executor(
            lambda: self.service.query_frequent_pairs(
                k, query_regions=regions, start=start, end=end
            )
        )
        return 200, {"k": k, "results": pairs_to_wire(answer)}


class ServerThread:
    """Host an :class:`AnnotationHTTPServer` on a background event loop.

    Context manager: ``with ServerThread(service) as server:`` yields the
    running server (``server.host``/``server.port``/``server.address``);
    exit performs the graceful drain.  This is how tests, the examples and
    the self-hosting load generator embed the front door in one process.
    """

    def __init__(self, service: AnnotationService, **server_kwargs):
        self.server = AnnotationHTTPServer(service, **server_kwargs)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    # ---------------------------------------------------------------- control
    def start(self) -> "ServerThread":
        if self._thread is not None:
            raise RuntimeError("server thread already started")
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run, name="annotation-http-server", daemon=True
        )
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            raise RuntimeError("server failed to start") from self._startup_error
        return self

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self.server.start())
        except BaseException as error:  # noqa: BLE001 — reported to starter
            self._startup_error = error
            self._ready.set()
            return
        self._ready.set()
        self._loop.run_forever()
        self._loop.close()

    def stop(self, *, drain_timeout: float = 5.0) -> None:
        """Gracefully stop the server and join the background thread."""
        if self._thread is None or self._loop is None:
            return
        future = asyncio.run_coroutine_threadsafe(
            self.server.stop(drain_timeout=drain_timeout), self._loop
        )
        future.result(timeout=drain_timeout + 10.0)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10.0)
        self._thread = None
        self._loop = None

    # ---------------------------------------------------------- conveniences
    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def address(self) -> str:
        return self.server.address

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
