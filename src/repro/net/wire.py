"""The JSON wire format of the HTTP front door.

Requests and responses reuse the repository's persistence shapes
(:mod:`repro.persistence.serializers`) wherever one exists, so an HTTP
``/v1/annotate`` response is byte-compatible with ``semantics_to_dicts`` of
the in-process ``annotate_batch`` — the equivalence the HTTP tests assert
bitwise.  On the wire:

* **Positioning record** — ``{"x": float, "y": float, "floor": int,
  "t": float}`` (same keys as the dataset serialiser).
* **P-sequence** — ``{"object_id": str, "records": [<record>...]}``.
* **M-semantics** — ``{"region", "start", "end", "event", "records"}``
  (exactly ``semantics_to_dicts``).
* **Query answers** — TkPRQ: ``[[region, count], ...]``; TkFRPQ:
  ``[[[region_a, region_b], count], ...]`` (JSON has no tuples; decoding
  restores them).

Decoding is defensive: every helper raises :class:`WireError` with a short
machine-readable code on malformed payloads, which the server maps to a
structured 400 instead of a stack trace.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.geometry.point import IndoorPoint
from repro.mobility.records import MSemantics, PositioningRecord, PositioningSequence
from repro.persistence.serializers import semantics_to_dicts

__all__ = [
    "WireError",
    "record_from_wire",
    "record_to_wire",
    "sequence_from_wire",
    "sequence_to_wire",
    "semantics_to_wire",
    "pairs_to_wire",
    "regions_to_wire",
    "parse_query_params",
]


class WireError(ValueError):
    """A malformed wire payload; ``code`` is a short machine-readable slug."""

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code


def _require(payload, key: str, where: str):
    if not isinstance(payload, dict) or key not in payload:
        raise WireError("missing_field", f"{where} requires field {key!r}")
    return payload[key]


def _number(value, key: str, where: str) -> float:
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise WireError("bad_type", f"{where}.{key} must be a number")
    return float(value)


# ------------------------------------------------------------------- records
def record_to_wire(record: PositioningRecord) -> Dict[str, object]:
    """One positioning record as its wire dict."""
    return {"x": record.x, "y": record.y, "floor": record.floor, "t": record.timestamp}


def record_from_wire(payload) -> PositioningRecord:
    """Decode one positioning record, validating shape and types."""
    x = _number(_require(payload, "x", "record"), "x", "record")
    y = _number(_require(payload, "y", "record"), "y", "record")
    t = _number(_require(payload, "t", "record"), "t", "record")
    floor = payload.get("floor", 0)
    if not isinstance(floor, int) or isinstance(floor, bool):
        raise WireError("bad_type", "record.floor must be an integer")
    return PositioningRecord(location=IndoorPoint(x, y, floor), timestamp=t)


# ----------------------------------------------------------------- sequences
def sequence_to_wire(sequence: PositioningSequence) -> Dict[str, object]:
    """One p-sequence as its wire dict."""
    return {
        "object_id": sequence.object_id,
        "records": [record_to_wire(record) for record in sequence],
    }


def sequence_from_wire(payload) -> PositioningSequence:
    """Decode one p-sequence; records must be non-empty and time-ordered."""
    records_payload = _require(payload, "records", "sequence")
    if not isinstance(records_payload, list) or not records_payload:
        raise WireError("bad_type", "sequence.records must be a non-empty list")
    object_id = payload.get("object_id", "object")
    if not isinstance(object_id, str) or not object_id:
        raise WireError("bad_type", "sequence.object_id must be a non-empty string")
    records = [record_from_wire(entry) for entry in records_payload]
    try:
        return PositioningSequence(records, object_id=object_id, sort=False)
    except ValueError as error:
        raise WireError("bad_sequence", str(error)) from error


# --------------------------------------------------------------- m-semantics
def semantics_to_wire(semantics: Sequence[MSemantics]) -> List[Dict]:
    """M-semantics in the shared persistence shape (``semantics_to_dicts``)."""
    return semantics_to_dicts(semantics)


# ------------------------------------------------------------------- queries
def regions_to_wire(answer: Sequence[Tuple[int, int]]) -> List[List[int]]:
    """TkPRQ output ``[(region, count), ...]`` as JSON-friendly pairs."""
    return [[region, count] for region, count in answer]


def pairs_to_wire(answer) -> List[List[object]]:
    """TkFRPQ output ``[((a, b), count), ...]`` as JSON-friendly triples."""
    return [[[pair[0], pair[1]], count] for pair, count in answer]


def parse_query_params(
    params: Dict[str, List[str]],
) -> Tuple[int, Optional[float], Optional[float], Optional[Set[int]]]:
    """Decode the shared ``k``/``start``/``end``/``regions`` query parameters.

    ``k`` is required and positive; ``start``/``end`` are optional floats;
    ``regions`` is an optional comma-separated region-id set.
    """

    def single(name: str) -> Optional[str]:
        values = params.get(name)
        if not values:
            return None
        if len(values) > 1:
            raise WireError("bad_query", f"query parameter {name!r} given twice")
        return values[0]

    raw_k = single("k")
    if raw_k is None:
        raise WireError("bad_query", "query parameter 'k' is required")
    try:
        k = int(raw_k)
    except ValueError as error:
        raise WireError("bad_query", "query parameter 'k' must be an integer") from error
    if k < 1:
        raise WireError("bad_query", "query parameter 'k' must be positive")

    bounds: List[Optional[float]] = []
    for name in ("start", "end"):
        raw = single(name)
        if raw is None:
            bounds.append(None)
            continue
        try:
            bounds.append(float(raw))
        except ValueError as error:
            raise WireError(
                "bad_query", f"query parameter {name!r} must be a number"
            ) from error

    regions: Optional[Set[int]] = None
    raw_regions = single("regions")
    if raw_regions is not None:
        try:
            regions = {int(part) for part in raw_regions.split(",") if part}
        except ValueError as error:
            raise WireError(
                "bad_query", "query parameter 'regions' must be comma-separated ints"
            ) from error
        if not regions:
            raise WireError("bad_query", "query parameter 'regions' must not be empty")
    return k, bounds[0], bounds[1], regions
