"""Open-loop load generator for the HTTP front door.

Open-loop means the arrival process is independent of the server: request
send times are drawn from a Poisson process at a configured rate *before*
the run and each request fires at its scheduled instant whether or not
earlier ones have completed.  Closed-loop harnesses (fire-when-done) hide
queueing collapse — an overloaded server slows the generator down and the
measured latency flatters the system; the open-loop design is what makes
p95/p99 under a fixed offered rate an honest number.

Traffic is drawn deterministically from a catalogue scenario (seeded RNG,
seeded workload): the scenario's held-out half becomes

* **stream ops** — the globally time-ordered interleaved feed of
  :func:`repro.service.replay.interleaved_records`, chunked per object and
  pushed through the ``/v1/sessions`` lifecycle in order (a per-object lock
  preserves stream order under open-loop concurrency);
* **annotate ops** — whole p-sequences through ``POST /v1/annotate``;
* **query ops** — TkPRQ/TkFRPQ at cycling k against the query endpoints.

The mix is a weighted choice per arrival (``stream=0.5,annotate=0.2,...``).
Each repetition produces one :class:`LoadRunReport`; :func:`write_run_table`
lands them as a one-row-per-(run, repetition) ``run_table.csv`` via the
shared flat-row helper (:mod:`repro.service.reporting`), so replay and
loadgen artifacts share column conventions.
"""

from __future__ import annotations

import asyncio
import json
import random
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple
from urllib.parse import quote

from repro.service.reporting import PathLike, flat_row, write_csv

try:  # resource is POSIX-only; RSS falls back to 0 elsewhere.
    import resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    resource = None

__all__ = [
    "LoadRunReport",
    "WorkloadPlan",
    "build_plan",
    "parse_mix",
    "run_loadtest",
    "write_run_table",
]

#: Default operation mix: streaming-heavy with a read-query tail, the
#: paper's serving shape (continuous ingestion, live TkPRQ/TkFRPQ).
DEFAULT_MIX = "stream=0.5,annotate=0.2,popular=0.15,pairs=0.15"

#: Records pushed per stream op.
STREAM_CHUNK = 8

#: k values cycled by the query ops.
_QUERY_KS = (1, 5, 10)


def parse_mix(mix: str) -> Dict[str, float]:
    """Parse ``"stream=0.5,annotate=0.2,..."`` into normalised weights."""
    weights: Dict[str, float] = {}
    for part in mix.split(","):
        part = part.strip()
        if not part:
            continue
        name, _, raw = part.partition("=")
        name = name.strip()
        if name not in ("stream", "annotate", "popular", "pairs"):
            raise ValueError(f"unknown workload op {name!r} in mix {mix!r}")
        try:
            weight = float(raw)
        except ValueError as error:
            raise ValueError(f"bad weight for {name!r} in mix {mix!r}") from error
        if weight < 0:
            raise ValueError(f"negative weight for {name!r} in mix {mix!r}")
        weights[name] = weight
    total = sum(weights.values())
    if total <= 0:
        raise ValueError(f"mix {mix!r} has no positive weights")
    return {name: weight / total for name, weight in weights.items()}


@dataclass
class LoadRunReport:
    """One (run, repetition) row of the load-testing artifact."""

    run: str
    repetition: int
    scenario: str
    seed: int
    arrival_rate: float
    mix: str
    duration_seconds: float
    elapsed_seconds: float
    requests: int
    failures: int
    throughput_rps: float
    avg_latency_ms: float
    p50_latency_ms: float
    p95_latency_ms: float
    p99_latency_ms: float
    max_latency_ms: float
    rss_mb: float

    @property
    def failure_rate(self) -> float:
        return self.failures / self.requests if self.requests else 0.0

    def row(self) -> Dict[str, object]:
        """The flat CSV/bench row (shared conventions with ``ReplayReport``)."""
        return flat_row(self, derived=("failure_rate",))


def write_run_table(reports: Sequence[LoadRunReport], path: PathLike):
    """Write reports as the one-row-per-(run, repetition) ``run_table.csv``."""
    return write_csv([report.row() for report in reports], path)


# ------------------------------------------------------------------ planning
@dataclass
class _Op:
    """One scheduled operation (possibly several HTTP requests)."""

    kind: str  # stream-open | stream-push | stream-finish | annotate | popular | pairs
    object_id: Optional[str] = None
    body: Optional[dict] = None
    path: Optional[str] = None


@dataclass
class WorkloadPlan:
    """A fully materialised, deterministic open-loop schedule.

    ``groups[i]`` is the op group fired at ``arrivals[i]`` — usually one
    op, but a stream chunk that opens or closes its session bundles the
    open/push/finish into one ordered group.
    """

    scenario: str
    seed: int
    rate: float
    duration: float
    mix: str
    arrivals: List[float]
    groups: List[List[_Op]]
    #: Sessions the plan opens but never finishes (drained after the run).
    unfinished_objects: List[str]


def _chunk_streams(sequences) -> List[Tuple[str, List[dict], bool, bool]]:
    """Per-object record chunks, globally ordered by first-record timestamp.

    Returns ``(object_id, wire_records, opens, finishes)`` tuples: ``opens``
    marks the first chunk of an object (create the session before pushing),
    ``finishes`` the last one (finish after pushing).
    """
    from repro.net.wire import record_to_wire

    chunks: List[Tuple[float, str, List[dict], bool, bool]] = []
    for labeled in sequences:
        records = list(labeled.sequence)
        pieces = [
            records[start:start + STREAM_CHUNK]
            for start in range(0, len(records), STREAM_CHUNK)
        ]
        for position, piece in enumerate(pieces):
            chunks.append(
                (
                    piece[0].timestamp,
                    labeled.object_id,
                    [record_to_wire(record) for record in piece],
                    position == 0,
                    position == len(pieces) - 1,
                )
            )
    chunks.sort(key=lambda chunk: (chunk[0], chunk[1]))
    return [(object_id, piece, opens, finishes)
            for _, object_id, piece, opens, finishes in chunks]


def build_plan(
    scenario_name: str,
    *,
    rate: float,
    duration: float,
    mix: str = DEFAULT_MIX,
    seed: int = 1,
    scenario=None,
) -> WorkloadPlan:
    """Materialise the scenario and lay out one deterministic schedule.

    ``scenario`` short-circuits materialisation when the caller already has
    the materialised object (the bench suite and self-hosted runs share it
    with the server's training step).
    """
    from repro.mobility.dataset import train_test_split
    from repro.net.wire import sequence_to_wire
    from repro.scenarios import materialize

    if rate <= 0:
        raise ValueError(f"arrival rate must be positive, got {rate}")
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration}")
    weights = parse_mix(mix)
    if scenario is None:
        scenario = materialize(scenario_name)
    _, test = train_test_split(scenario.dataset, train_fraction=0.5, seed=5)

    rng = random.Random(seed)
    arrivals: List[float] = []
    clock = 0.0
    while True:
        clock += rng.expovariate(rate)
        if clock >= duration:
            break
        arrivals.append(clock)

    chunks = _chunk_streams(test.sequences)
    annotate_bodies = [
        {"sequences": [sequence_to_wire(labeled.sequence)]}
        for labeled in test.sequences
    ]
    span_start = min(labeled.sequence.start_time for labeled in test.sequences)
    span_end = max(labeled.sequence.end_time for labeled in test.sequences)

    names = list(weights)
    cumulative: List[float] = []
    total = 0.0
    for name in names:
        total += weights[name]
        cumulative.append(total)

    groups: List[List[_Op]] = []
    chunk_cursor = 0
    annotate_cursor = 0
    query_cursor = 0
    opened: List[str] = []
    finished: List[str] = []
    for _ in arrivals:
        roll = rng.random()
        kind = names[-1]
        for name, bound in zip(names, cumulative):
            if roll <= bound:
                kind = name
                break
        if kind == "stream" and chunk_cursor >= len(chunks):
            kind = "popular"  # feed exhausted: degrade to a read
        if kind == "stream":
            object_id, piece, opens, finishes = chunks[chunk_cursor]
            chunk_cursor += 1
            group: List[_Op] = []
            if opens:
                opened.append(object_id)
                group.append(_Op(kind="stream-open", object_id=object_id,
                                 body={"object_id": object_id}))
            group.append(_Op(kind="stream-push", object_id=object_id,
                             body={"records": piece}))
            if finishes:
                finished.append(object_id)
                group.append(_Op(kind="stream-finish", object_id=object_id))
            groups.append(group)
        elif kind == "annotate":
            body = annotate_bodies[annotate_cursor % len(annotate_bodies)]
            # Distinct ids per publish so repeated annotate ops do not
            # violate the store's per-object time-order contract.
            sequence = dict(body["sequences"][0])
            sequence["object_id"] = f"{sequence['object_id']}/batch{annotate_cursor}"
            groups.append([_Op(kind="annotate", body={"sequences": [sequence]})])
            annotate_cursor += 1
        else:
            k = _QUERY_KS[query_cursor % len(_QUERY_KS)]
            query_cursor += 1
            path = (
                "/v1/queries/popular-regions"
                if kind == "popular"
                else "/v1/queries/frequent-pairs"
            )
            query = f"k={k}"
            if query_cursor % 3 == 0:  # every third query is time-bounded
                lo = span_start + 0.25 * (span_end - span_start)
                hi = span_start + 0.75 * (span_end - span_start)
                query += f"&start={lo}&end={hi}"
            groups.append([_Op(kind=kind, path=f"{path}?{query}")])
    return WorkloadPlan(
        scenario=scenario.name,
        seed=seed,
        rate=rate,
        duration=duration,
        mix=mix,
        arrivals=arrivals,
        groups=groups,
        unfinished_objects=[oid for oid in opened if oid not in set(finished)],
    )


# ------------------------------------------------------------------- client
async def _http_request(
    host: str,
    port: int,
    method: str,
    path: str,
    body: Optional[dict] = None,
    *,
    timeout: float = 30.0,
) -> Tuple[int, dict]:
    """One HTTP request over a fresh connection; returns (status, json)."""
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout
    )
    try:
        payload = json.dumps(body).encode("utf-8") if body is not None else b""
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {host}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            "Connection: close\r\n"
            "\r\n"
        )
        writer.write(head.encode("latin-1") + payload)
        await asyncio.wait_for(writer.drain(), timeout)
        status_line = await asyncio.wait_for(reader.readline(), timeout)
        parts = status_line.decode("latin-1").split()
        if len(parts) < 2 or not parts[0].startswith("HTTP/"):
            raise ConnectionError(f"malformed status line: {status_line!r}")
        status = int(parts[1])
        length = 0
        while True:
            line = await asyncio.wait_for(reader.readline(), timeout)
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        raw = await asyncio.wait_for(reader.readexactly(length), timeout) if length else b"{}"
        return status, json.loads(raw)
    finally:
        writer.close()


@dataclass
class _Sample:
    seconds: float
    ok: bool


async def _fire_op(
    op: _Op,
    host: str,
    port: int,
    samples: List[_Sample],
    session_locks: Dict[str, asyncio.Lock],
    *,
    timeout: float,
) -> None:
    """Execute one op, recording one sample per HTTP request it makes."""

    async def timed(method: str, path: str, body=None, *, ok_statuses=(200, 201)):
        started = time.perf_counter()
        try:
            status, _ = await _http_request(
                host, port, method, path, body, timeout=timeout
            )
            ok = status in ok_statuses
        except (ConnectionError, OSError, asyncio.TimeoutError, ValueError):
            ok = False
        samples.append(_Sample(time.perf_counter() - started, ok))

    if op.kind in ("stream-open", "stream-push", "stream-finish"):
        lock = session_locks.setdefault(op.object_id, asyncio.Lock())
        # Object ids may contain "/" (run/repetition suffixes) — encode them.
        target = quote(op.object_id, safe="")
        async with lock:
            if op.kind == "stream-open":
                await timed("POST", "/v1/sessions", op.body)
            elif op.kind == "stream-push":
                await timed("POST", f"/v1/sessions/{target}/records", op.body)
            else:
                await timed("POST", f"/v1/sessions/{target}/finish", {})
    elif op.kind == "annotate":
        await timed("POST", "/v1/annotate", op.body)
    else:
        await timed("GET", op.path)


def _percentile(sorted_values: Sequence[float], quantile: float) -> float:
    """Nearest-rank percentile of an ascending list (empty -> 0)."""
    if not sorted_values:
        return 0.0
    rank = max(1, int(quantile * len(sorted_values) + 0.999999))
    return sorted_values[min(rank, len(sorted_values)) - 1]


def _rss_mb() -> float:
    if resource is None:
        return 0.0
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB, macOS bytes; normalise to MiB heuristically.
    return usage / 1024.0 if usage < 1 << 32 else usage / (1024.0 * 1024.0)


async def _fire_group(
    group: Sequence[_Op],
    host: str,
    port: int,
    samples: List[_Sample],
    session_locks: Dict[str, asyncio.Lock],
    *,
    timeout: float,
) -> None:
    """Ops within one group run in order; groups overlap freely."""
    for op in group:
        await _fire_op(op, host, port, samples, session_locks, timeout=timeout)


async def _run_plan(
    plan: WorkloadPlan, host: str, port: int, *, timeout: float
) -> Tuple[List[_Sample], float]:
    """Fire the plan open-loop; returns (samples, elapsed_seconds)."""
    samples: List[_Sample] = []
    session_locks: Dict[str, asyncio.Lock] = {}
    loop = asyncio.get_running_loop()
    started = loop.time()
    tasks: List[asyncio.Task] = []
    for arrival, group in zip(plan.arrivals, plan.groups):
        delay = started + arrival - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        tasks.append(
            asyncio.ensure_future(
                _fire_group(group, host, port, samples, session_locks,
                            timeout=timeout)
            )
        )
    if tasks:
        await asyncio.gather(*tasks)
    # Drain: finish every session the plan opened but never closed, so the
    # server ends the run with zero live sessions and all semantics flushed.
    drains = [
        asyncio.ensure_future(
            _fire_group(
                [_Op(kind="stream-finish", object_id=object_id)],
                host,
                port,
                samples,
                session_locks,
                timeout=timeout,
            )
        )
        for object_id in plan.unfinished_objects
    ]
    if drains:
        await asyncio.gather(*drains)
    return samples, loop.time() - started


def _summarise(
    plan: WorkloadPlan,
    samples: List[_Sample],
    elapsed: float,
    *,
    run: str,
    repetition: int,
) -> LoadRunReport:
    latencies = sorted(sample.seconds * 1000.0 for sample in samples)
    failures = sum(1 for sample in samples if not sample.ok)
    count = len(samples)
    return LoadRunReport(
        run=run,
        repetition=repetition,
        scenario=plan.scenario,
        seed=plan.seed,
        arrival_rate=plan.rate,
        mix=plan.mix,
        duration_seconds=plan.duration,
        elapsed_seconds=round(elapsed, 6),
        requests=count,
        failures=failures,
        throughput_rps=round(count / elapsed, 3) if elapsed > 0 else 0.0,
        avg_latency_ms=round(sum(latencies) / count, 3) if count else 0.0,
        p50_latency_ms=round(_percentile(latencies, 0.50), 3),
        p95_latency_ms=round(_percentile(latencies, 0.95), 3),
        p99_latency_ms=round(_percentile(latencies, 0.99), 3),
        max_latency_ms=round(latencies[-1], 3) if latencies else 0.0,
        rss_mb=round(_rss_mb(), 3),
    )


def run_loadtest(
    scenario_name: str,
    *,
    host: str,
    port: int,
    rate: float,
    duration: float,
    mix: str = DEFAULT_MIX,
    repetitions: int = 1,
    seed: int = 1,
    timeout: float = 30.0,
    scenario=None,
    run_tag: str = "",
) -> List[LoadRunReport]:
    """Drive a running server open-loop; one report per repetition.

    Each repetition re-derives its schedule from ``seed + repetition`` so
    repetitions are independent draws of the same workload distribution.
    The server keeps its store across repetitions (a soak, not a reset) —
    session object ids are suffixed per repetition (and per ``run_tag``
    when one server is swept with several runs) so re-streamed objects
    never violate the store's per-object time-order contract.
    """
    if repetitions < 1:
        raise ValueError(f"repetitions must be at least 1, got {repetitions}")
    reports: List[LoadRunReport] = []
    run_name = f"{scenario_name}@{rate:g}rps"
    for repetition in range(repetitions):
        plan = build_plan(
            scenario_name,
            rate=rate,
            duration=duration,
            mix=mix,
            seed=seed + repetition,
            scenario=scenario,
        )
        suffix = "/".join(part for part in (run_tag, f"rep{repetition}") if part)
        if suffix:
            _suffix_stream_ids(plan, suffix)
        samples, elapsed = asyncio.run(
            _run_plan(plan, host, port, timeout=timeout)
        )
        reports.append(
            _summarise(plan, samples, elapsed, run=run_name, repetition=repetition)
        )
    return reports


def _suffix_stream_ids(plan: WorkloadPlan, suffix: str) -> None:
    """Re-key the plan's published objects (runs/repetitions must not collide)."""
    for group in plan.groups:
        for op in group:
            if op.object_id is not None:
                op.object_id = f"{op.object_id}/{suffix}"
                if op.body is not None and "object_id" in op.body:
                    op.body["object_id"] = op.object_id
            elif op.kind == "annotate":
                op.body = {
                    "sequences": [
                        {**sequence, "object_id": f"{sequence['object_id']}/{suffix}"}
                        for sequence in op.body["sequences"]
                    ]
                }
    plan.unfinished_objects = [
        f"{object_id}/{suffix}" for object_id in plan.unfinished_objects
    ]
