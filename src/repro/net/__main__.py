"""CLI: ``python -m repro.net --serve`` / ``python -m repro.net --loadtest``.

``--serve`` trains a fast C2MN on the named catalogue scenario's training
half and serves it over HTTP until interrupted (Ctrl-C drains open sessions
before exiting).  ``--loadtest`` drives a server — an external one via
``--url``, otherwise a self-hosted one in a background thread — with the
open-loop generator and writes the ``run_table.csv`` artifact; repeat
``--rate`` to sweep several arrival rates into one table.  Exit status is
non-zero when any run records a failure.
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys
from typing import List, Optional, Sequence, Tuple
from urllib.parse import urlsplit

from repro.net.loadgen import DEFAULT_MIX, LoadRunReport, run_loadtest, write_run_table
from repro.net.server import DEFAULT_MAX_BODY, AnnotationHTTPServer, ServerThread
from repro.scenarios import materialize, scenario_names
from repro.service.service import AnnotationService

#: The scaled-down fit shared with ``replay_scenario`` and the bench suites.
_FIT_CONFIG = dict(max_iterations=3, mcmc_samples=6, lbfgs_iterations=4)


def build_service(
    scenario_name: str,
    *,
    seed: Optional[int] = None,
    window: int = AnnotationService.DEFAULT_WINDOW,
    indexed: bool = False,
) -> Tuple[AnnotationService, object]:
    """Materialise a scenario, fit a fast C2MN on its training half, wrap it.

    Returns ``(service, scenario)``; the held-out half is what the load
    generator replays, so served traffic is never training data.
    """
    from repro.core.annotator import C2MNAnnotator
    from repro.core.config import C2MNConfig
    from repro.mobility.dataset import train_test_split

    scenario = materialize(scenario_name, seed)
    train, _ = train_test_split(scenario.dataset, train_fraction=0.5, seed=5)
    annotator = C2MNAnnotator(
        scenario.space, config=C2MNConfig.fast(**_FIT_CONFIG)
    )
    annotator.fit(train.sequences)
    service = AnnotationService(annotator, window=window, indexed=indexed)
    return service, scenario


async def _serve(server: AnnotationHTTPServer) -> None:
    await server.start()
    print(f"serving on {server.address} (Ctrl-C to drain and exit)", flush=True)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
        except NotImplementedError:  # pragma: no cover - non-unix loops
            pass
    await stop.wait()
    flushed = await server.stop()
    print(f"drained: {len(flushed)} m-semantics flushed from open sessions")


def _summary_lines(reports: Sequence[LoadRunReport]) -> List[str]:
    lines = []
    for report in reports:
        lines.append(
            f"  {report.run:28s} rep{report.repetition}  "
            f"{report.requests:6d} req  {report.throughput_rps:8.1f} rps  "
            f"p50 {report.p50_latency_ms:7.1f}ms  p95 {report.p95_latency_ms:7.1f}ms  "
            f"p99 {report.p99_latency_ms:7.1f}ms  "
            f"failures {report.failures} ({report.failure_rate:.2%})  "
            f"rss {report.rss_mb:.0f}MB"
        )
    return lines


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.net",
        description="HTTP front door for the annotation service, and the "
        "open-loop load-testing harness that measures it.",
    )
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--serve", action="store_true",
                      help="train on the scenario and serve HTTP until Ctrl-C")
    mode.add_argument("--loadtest", action="store_true",
                      help="drive a server open-loop and write run_table.csv")
    parser.add_argument(
        "--scenario",
        default="mall-tiny",
        choices=sorted(scenario_names()),
        help="catalogue scenario supplying the model and traffic "
        "(default: mall-tiny)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=None,
        help="--serve port (default 8073; 0 picks an ephemeral port)",
    )
    parser.add_argument("--seed", type=int, default=None,
                        help="scenario materialisation seed (default: registered)")
    parser.add_argument("--window", type=int,
                        default=AnnotationService.DEFAULT_WINDOW,
                        help="streaming window (default: %(default)s)")
    parser.add_argument("--indexed", action="store_true",
                        help="attach the live semantic-region index")
    parser.add_argument("--max-body", type=int, default=DEFAULT_MAX_BODY,
                        help="request-body byte limit (default: %(default)s)")
    parser.add_argument(
        "--rate", type=float, action="append", default=None, metavar="RPS",
        help="open-loop arrival rate; repeat to sweep several rates "
        "(default: 20)",
    )
    parser.add_argument("--duration", type=float, default=10.0,
                        help="seconds per loadtest run (default: %(default)s)")
    parser.add_argument("--mix", default=DEFAULT_MIX,
                        help="workload mix weights (default: %(default)s)")
    parser.add_argument("--repetitions", type=int, default=1,
                        help="repetitions per rate (default: %(default)s)")
    parser.add_argument("--loadgen-seed", type=int, default=1,
                        help="RNG seed of the arrival/mix draw (default: 1)")
    parser.add_argument(
        "--timeout", type=float, default=30.0,
        help="per-request client timeout in seconds; raise it for "
        "beyond-capacity sweeps where queueing stretches the tail "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--url", default=None,
        help="loadtest target (http://host:port); omitted = self-host the "
        "server in this process",
    )
    parser.add_argument("--out", default="run_table.csv",
                        help="loadtest CSV artifact path (default: %(default)s)")
    args = parser.parse_args(argv)

    if args.serve:
        print(f"materialising {args.scenario} and fitting the annotator ...")
        service, _ = build_service(
            args.scenario, seed=args.seed, window=args.window, indexed=args.indexed
        )
        server = AnnotationHTTPServer(
            service,
            host=args.host,
            port=8073 if args.port is None else args.port,
            max_body=args.max_body,
        )
        asyncio.run(_serve(server))
        return 0

    rates = args.rate or [20.0]
    reports: List[LoadRunReport] = []
    if args.url is not None:
        split = urlsplit(args.url)
        if not split.hostname or not split.port:
            parser.error("--url must look like http://host:port")
        for position, rate in enumerate(rates):
            reports.extend(
                run_loadtest(
                    args.scenario,
                    host=split.hostname,
                    port=split.port,
                    rate=rate,
                    duration=args.duration,
                    mix=args.mix,
                    repetitions=args.repetitions,
                    seed=args.loadgen_seed,
                    timeout=args.timeout,
                    run_tag=f"sweep{position}" if len(rates) > 1 else "",
                )
            )
    else:
        print(f"materialising {args.scenario} and fitting the annotator ...")
        service, scenario = build_service(
            args.scenario, seed=args.seed, window=args.window, indexed=args.indexed
        )
        with ServerThread(service, host=args.host, max_body=args.max_body) as server:
            print(f"self-hosted server on {server.address}")
            for position, rate in enumerate(rates):
                reports.extend(
                    run_loadtest(
                        args.scenario,
                        host=server.host,
                        port=server.port,
                        rate=rate,
                        duration=args.duration,
                        mix=args.mix,
                        repetitions=args.repetitions,
                        seed=args.loadgen_seed,
                        timeout=args.timeout,
                        scenario=scenario,
                        run_tag=f"sweep{position}" if len(rates) > 1 else "",
                    )
                )
    path = write_run_table(reports, args.out)
    print("\n".join(_summary_lines(reports)))
    print(f"wrote {path}")
    if any(report.failures for report in reports):
        print("FAIL: load test recorded request failures", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
