"""Orchestrate the report build: load → normalise → figures → markdown.

``build_report`` is the one entry point both the CLI (``python -m
repro.report``) and the tests call.  Output layout::

    <out>/
      data/*.csv        tidy per-metric tables (always includes results.csv)
      specs/*.vl.json   Vega-Lite specs, data.url -> ../data/<name>.csv
      REPORT.md         prose + links + headline tables

Every write is atomic and every artifact is a pure function of the loaded
inputs and the seed — no wall clock, no environment — which is what lets
CI regenerate the committed ``docs/report/`` and ``git diff`` it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.persistence.atomic import atomic_write_text
from repro.report.figures import (
    loadtest_frontier_spec,
    precision_spec,
    query_latency_spec,
    runtime_speedup_spec,
    store_scatter_spec,
    trends_spec,
)
from repro.report.loader import (
    LoadedReport,
    LoadedRunTable,
    load_bench_reports,
    load_run_tables,
)
from repro.report.render import render_markdown
from repro.report.tables import (
    DEFAULT_SUITE_TOLERANCES,
    DEFAULT_TOLERANCE,
    Table,
    loadtest_table,
    precision_table,
    query_latency_table,
    results_table,
    runtime_speedup_table,
    store_scatter_table,
    trends_table,
    write_table,
)

#: Default bootstrap seed (any fixed value works; this one is the date the
#: pipeline landed, so a regenerated report is attributable at a glance).
DEFAULT_SEED = 20260807


@dataclass
class ReportBuild:
    """What one ``build_report`` call produced."""

    out_dir: Path
    reports: List[LoadedReport]
    run_tables: List[LoadedRunTable]
    tables: Dict[str, Table]
    specs: Dict[str, dict]
    regressions: List[dict] = field(default_factory=list)

    @property
    def written(self) -> List[Path]:
        paths = [self.out_dir / "REPORT.md"]
        paths += [self.out_dir / "data" / f"{name}.csv" for name in sorted(self.tables)]
        paths += [
            self.out_dir / "specs" / f"{name}.vl.json" for name in sorted(self.specs)
        ]
        return paths


def build_tables(
    reports: List[LoadedReport],
    run_tables: List[LoadedRunTable],
    *,
    seed: int = DEFAULT_SEED,
    tolerance: float = DEFAULT_TOLERANCE,
    suite_tolerances: Optional[Dict[str, float]] = None,
) -> Dict[str, Table]:
    """All tidy tables keyed by artifact stem (``<stem>.csv``)."""
    return {
        "results": results_table(reports),
        "runtime_speedup": runtime_speedup_table(reports),
        "query_latency": query_latency_table(reports),
        "store_scatter": store_scatter_table(reports),
        "precision": precision_table(reports, seed=seed),
        "loadtest": loadtest_table(reports, run_tables),
        "trends": trends_table(
            reports, tolerance=tolerance, suite_tolerances=suite_tolerances
        ),
    }


def build_specs(tables: Dict[str, Table]) -> Dict[str, dict]:
    """Every figure whose table has rows, keyed by artifact stem."""
    builders = {
        "runtime_speedup": runtime_speedup_spec,
        "query_latency": query_latency_spec,
        "store_scatter": store_scatter_spec,
        "precision": precision_spec,
        "loadtest": loadtest_frontier_spec,
        "trends": trends_spec,
    }
    specs = {}
    for name, builder in builders.items():
        spec = builder(tables[name])
        if spec is not None:
            specs[name] = spec
    return specs


def build_report(
    *,
    bench_dir: Optional[Path],
    baselines_dir: Optional[Path],
    history_dir: Optional[Path] = None,
    out_dir: Path,
    seed: int = DEFAULT_SEED,
    tolerance: float = DEFAULT_TOLERANCE,
    suite_tolerances: Optional[Dict[str, float]] = None,
) -> ReportBuild:
    """Build the full report under ``out_dir`` and return what was written."""
    reports = load_bench_reports(bench_dir, baselines_dir, history_dir)
    if not reports:
        raise ValueError(
            "no BENCH_*.json reports found — point --bench-dir or "
            "--baselines at a directory holding bench output"
        )
    run_tables = load_run_tables(bench_dir)
    tables = build_tables(
        reports,
        run_tables,
        seed=seed,
        tolerance=tolerance,
        suite_tolerances=suite_tolerances,
    )
    specs = build_specs(tables)

    out_dir.mkdir(parents=True, exist_ok=True)
    written_tables = {}
    for name, table in tables.items():
        if not table[1]:
            continue
        write_table(out_dir / "data" / f"{name}.csv", table)
        written_tables[name] = table
    (out_dir / "specs").mkdir(parents=True, exist_ok=True)
    for name, spec in specs.items():
        atomic_write_text(
            out_dir / "specs" / f"{name}.vl.json",
            json.dumps(spec, indent=2) + "\n",
        )
    atomic_write_text(
        out_dir / "REPORT.md",
        render_markdown(reports, run_tables, tables, seed=seed),
    )
    regressions = [row for row in tables["trends"][1] if row.get("regressed")]
    return ReportBuild(
        out_dir=out_dir,
        reports=reports,
        run_tables=run_tables,
        tables=written_tables,
        specs=specs,
        regressions=regressions,
    )
